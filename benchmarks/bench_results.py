"""Shared BENCH_results.json handling for the benchmark scripts.

Every benchmark merges its records append-style so the file accumulates
one record per workload family regardless of which scripts ran, in
which order (CI runs delta-pipeline, live-runtime, then provenance and
uploads the combined file as an artifact).
"""

import json
from pathlib import Path
from typing import Dict

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


def merge_results(updates: Dict[str, dict]) -> None:
    """Merge ``updates`` into ``BENCH_results.json``, preserving every
    other benchmark's records (a corrupt or missing file starts fresh)."""
    existing = {}
    if RESULTS_PATH.exists():
        try:
            existing = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            existing = {}
    existing.update(updates)
    RESULTS_PATH.write_text(json.dumps(existing, indent=2, sort_keys=True))

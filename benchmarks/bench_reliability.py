"""Reliable-transport overhead and loss-recovery benchmark.

Two questions, one workload (the dynamic shortest-path protocol on an
8-node transit-stub overlay, simulated virtual time):

* **lossless overhead** -- what does the ack/retransmit layer cost when
  the network is perfect?  Sequence stamping, ack bookkeeping, and
  timer churn all sit on the send/receive hot path, so this is the
  price every deployment pays for the FIFO + exactly-once guarantee.
  CI gates it at ``MAX_OVERHEAD`` x the raw transport's wall clock.
* **lossy recovery** -- with a seeded 10% drop schedule, the reliable
  run must still reach the exact fault-free fixpoint (the raw one
  demonstrably cannot); reported alongside the retransmit count so the
  recovery cost is visible, not just the correctness claim.

Run as a script it medians a few rounds and merges a ``reliability``
record into ``BENCH_results.json`` (append semantics: other
benchmarks' records are preserved).
"""

import sys
import time

import repro
from repro.chaos import ChaosMonitor, ChaosSchedule
from repro.ndlog import programs
from repro.topology import build_overlay, transit_stub

N_NODES = 8
#: CI gate: reliable transport on a lossless link may cost at most
#: this factor over the raw path.
MAX_OVERHEAD = 1.15
LOSS_RATE = 0.1


def make_overlay():
    return build_overlay(transit_stub(seed=5), n_nodes=N_NODES,
                         degree=3, seed=5)


def compiled_program():
    return repro.compile(programs.shortest_path_dynamic(),
                         passes=["localize"])


def run_lossless(compiled, reliable: bool) -> float:
    deployment = compiled.deploy(topology=make_overlay(),
                                 reliable=reliable)
    start = time.perf_counter()
    deployment.advance()
    elapsed = time.perf_counter() - start
    assert deployment.query_rows()
    if reliable:
        # A perfect link never needs a retransmission.
        assert deployment.stats.retransmits == 0
    return elapsed


def run_lossy(compiled) -> dict:
    schedule = ChaosSchedule(seed=11).drop(rate=LOSS_RATE)
    monitor = ChaosMonitor(compiled, make_overlay())
    deployment = compiled.deploy(topology=make_overlay(),
                                 chaos=schedule, reliable=True)
    start = time.perf_counter()
    deployment.advance()
    elapsed = time.perf_counter() - start
    verdict = monitor.check(deployment)
    assert verdict.ok, verdict.summary()
    return {
        "seconds": elapsed,
        "retransmits": deployment.stats.retransmits,
        "faults": sum(deployment.stats.faults_injected.values()),
    }


def measure(rounds: int) -> dict:
    compiled = compiled_program()
    run_lossless(compiled, False)  # warm caches
    raw = min(run_lossless(compiled, False) for _ in range(rounds))
    reliable = min(run_lossless(compiled, True) for _ in range(rounds))
    lossy = run_lossy(compiled)
    overhead = reliable / raw
    print(f"lossless: raw {raw:.3f}s, reliable {reliable:.3f}s "
          f"-> {overhead:.2f}x")
    print(f"lossy ({LOSS_RATE:.0%} drop): {lossy['seconds']:.3f}s, "
          f"{lossy['retransmits']} retransmits, exact fixpoint")
    return {
        "raw_seconds": raw,
        "reliable_seconds": reliable,
        "overhead": overhead,
        "lossy": lossy,
    }


def main(argv):
    from bench_results import RESULTS_PATH, merge_results

    rounds = 2 if "--fast" in argv else 4
    results = measure(rounds)
    record = {"rounds": rounds, "nodes": N_NODES,
              "loss_rate": LOSS_RATE,
              "max_overhead_gate": MAX_OVERHEAD, **results}
    merge_results({"reliability": record})
    print(f"\nwrote {RESULTS_PATH}")
    assert results["overhead"] <= MAX_OVERHEAD, (
        f"reliable transport costs {results['overhead']:.2f}x on a "
        f"lossless link (gate {MAX_OVERHEAD:.2f}x)"
    )
    print(f"OK: lossless overhead {results['overhead']:.2f}x within "
          f"the {MAX_OVERHEAD:.2f}x gate")
    return 0


def test_reliable_convergence(benchmark):
    """pytest-benchmark case (collected only when pytest targets
    benchmarks/): one reliable lossless convergence; the overhead gate
    itself lives in main()."""
    compiled = compiled_program()
    elapsed = benchmark.pedantic(
        lambda: run_lossless(compiled, True), rounds=1, iterations=1)
    assert elapsed > 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Overhead benchmark for the observability subsystem.

Runs the same convergence workloads with observability off, with the
metrics registry alone, and fully enabled (metrics + tracing +
profiling), and reports the wall-clock ratios:

* **dv-sim** -- the localized shortest-path program deployed on a
  transit-stub overlay and driven to convergence (the distributed hot
  path: strand firings, netting, shipping, commits);
* **central** -- a centralized PSN fixpoint of the same query with the
  per-strand profiler attached (the pure engine path, no network
  emulation to hide behind; metrics and tracing are deployment-level
  features, so only ``off`` and ``full`` differ here).

The *off* runs ARE the disabled path: every hook is a single ``None``
check that the baseline executes with the branch not taken, so the
measured metrics-only ratio (steady state ~1.00x, network emulation
dominates) upper-bounds the disabled-path overhead -- the ISSUE's
"<=5% disabled" criterion -- and the ``off_seconds`` record in
``BENCH_results.json`` is its regression guard across commits.

Rounds interleave the modes (off, metrics, full, off, metrics, full,
...) rather than batching per mode: shared runners drift over a
multi-second benchmark, and sequential batches would book that drift
to whichever mode ran last.  Gates add headroom over the steady-state
ratios for exactly that noise.

Run as a script it merges an ``obs`` record into
``BENCH_results.json`` (append semantics) and enforces both gates.
"""

import sys
import time

import repro
from repro.ndlog import programs
from repro.topology import build_overlay, transit_stub

N_NODES = 24
#: Metrics-only gate: steady state measures ~1.00x (the push hooks are
#: a handful of dict bumps per firing/commit); the gate leaves room
#: for shared-runner interference.
MAX_METRICS = 1.25
#: Fully-enabled gate: tracing every delta may cost at most 2x.
MAX_FULL = 2.0

MODES = {
    "off": {},
    "metrics": {"metrics": True},
    "full": {"metrics": True, "trace": True, "profile": True},
}


def overlay_links(seed=3, n_nodes=N_NODES):
    overlay = build_overlay(transit_stub(seed=seed), n_nodes=n_nodes,
                            degree=3, seed=seed)
    return overlay, overlay.link_rows("hopcount")


def run_dv_sim(**obs) -> float:
    overlay, _links = overlay_links()
    compiled = repro.compile(programs.shortest_path_safe(),
                             passes=["aggsel", "localize"])
    deployment = compiled.deploy(topology=overlay,
                                 link_loads={"link": "hopcount"}, **obs)
    start = time.perf_counter()
    deployment.advance()
    elapsed = time.perf_counter() - start
    assert deployment.rows("shortestPath")
    if obs.get("metrics"):
        snapshot = deployment.metrics()
        assert snapshot.rule_totals()
    if obs.get("trace"):
        assert deployment.tracer.events
    return elapsed


def run_central(**obs) -> float:
    _overlay, links = overlay_links(seed=7)
    compiled = repro.compile(programs.shortest_path_safe(),
                             passes=["aggsel"])
    profiler = None
    if obs.get("profile"):
        from repro.obs import Profiler

        profiler = Profiler()
    start = time.perf_counter()
    result = compiled.run(engine="psn", facts={"link": links},
                          profiler=profiler)
    elapsed = time.perf_counter() - start
    assert result.rows("shortestPath")
    if profiler is not None:
        assert profiler.total_seconds() > 0
    return elapsed


WORKLOADS = {
    "dv-sim": run_dv_sim,
    "central": run_central,
}


def measure(rounds: int):
    results = {}
    for name, runner in WORKLOADS.items():
        runner()  # warm caches (imports, plan compilation, JIT dicts)
        timings = {mode: [] for mode in MODES}
        for _ in range(rounds):
            for mode, obs in MODES.items():
                timings[mode].append(runner(**obs))
        # min-of-rounds: the standard noise-robust estimator for an
        # overhead ratio (anything above the minimum is interference).
        off = min(timings["off"])
        metrics_s = min(timings["metrics"])
        full_s = min(timings["full"])
        results[name] = {
            "off_seconds": off,
            "metrics_seconds": metrics_s,
            "full_seconds": full_s,
            "metrics_overhead": metrics_s / off,
            "full_overhead": full_s / off,
        }
        print(f"{name}: off {off:.3f}s, "
              f"metrics {metrics_s:.3f}s ({metrics_s / off:.2f}x), "
              f"full {full_s:.3f}s ({full_s / off:.2f}x)")
    return results


def main(argv):
    from bench_results import RESULTS_PATH, merge_results

    rounds = 2 if "--fast" in argv else 4
    results = measure(rounds)
    record = {"rounds": rounds, "nodes": N_NODES,
              "max_metrics_gate": MAX_METRICS,
              "max_full_gate": MAX_FULL, **results}
    merge_results({"obs": record})
    print(f"\nwrote {RESULTS_PATH}")
    worst_metrics = max(r["metrics_overhead"] for r in results.values())
    worst_full = max(r["full_overhead"] for r in results.values())
    assert worst_metrics <= MAX_METRICS, (
        f"metrics registry costs {worst_metrics:.2f}x "
        f"(gate {MAX_METRICS:.2f}x)"
    )
    assert worst_full <= MAX_FULL, (
        f"full observability costs {worst_full:.2f}x "
        f"(gate {MAX_FULL:.1f}x)"
    )
    print(f"OK: metrics {worst_metrics:.2f}x (gate {MAX_METRICS:.2f}x), "
          f"full {worst_full:.2f}x (gate {MAX_FULL:.1f}x)")
    return 0


def test_observed_run(benchmark):
    """pytest-benchmark case (collected only when pytest targets
    benchmarks/): one fully-observed convergence; the gates themselves
    live in main()."""
    elapsed = benchmark.pedantic(
        lambda: run_dv_sim(metrics=True, trace=True, profile=True),
        rounds=1, iterations=1)
    assert elapsed > 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Figures 9/10: periodic aggregate selections -- Section 6.2 (the
17/12/16/29% bandwidth-reduction row)."""

from conftest import run_once

from repro.experiments import fig9_10


def test_fig09_10_periodic_aggregate_selections(benchmark, overlay, scale,
                                                capsys):
    result = run_once(benchmark, fig9_10.run, overlay=overlay, scale=scale)
    with capsys.disabled():
        print()
        print(result.report())
    result.check_shape()

"""Figure 12: opportunistic message sharing across three concurrent
queries (300 ms outbound delay) -- Section 6.4."""

from conftest import run_once

from repro.experiments import fig12


def test_fig12_opportunistic_sharing(benchmark, overlay, scale, capsys):
    result = run_once(benchmark, fig12.run, overlay=overlay, scale=scale)
    with capsys.disabled():
        print()
        print(result.report())
    result.check_shape()

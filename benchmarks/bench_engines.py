"""Engine micro-benchmarks (ablation): naive vs semi-naive (Alg 1) vs
BSN vs PSN (Alg 3) on centralized workloads, plus the localization and
aggregate-selections rewrites."""

import random

import pytest

from repro.engine import Database, bsn, naive, psn, seminaive
from repro.ndlog import programs
from repro.opt import aggsel
from repro.planner.localization import localize


def random_links(n_nodes=12, extra=6, seed=7):
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(n_nodes)]
    pairs = set()
    for i in range(n_nodes):          # a ring keeps it connected
        pairs.add((nodes[i], nodes[(i + 1) % n_nodes]))
    while len(pairs) < n_nodes + extra:
        a, b = rng.sample(nodes, 2)
        pairs.add((a, b))
    rows = []
    for a, b in sorted(pairs):
        cost = rng.randint(1, 10)
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows


LINKS = random_links()


def evaluate_with(module, program):
    db = Database.for_program(program)
    db.load_facts("link", LINKS)
    return module.evaluate(program, db)


@pytest.mark.parametrize("module", [naive, seminaive, bsn, psn],
                         ids=["naive", "seminaive", "bsn", "psn"])
def test_engine_shortest_path(benchmark, module):
    result = benchmark.pedantic(
        evaluate_with, args=(module, programs.shortest_path_safe()),
        rounds=1, iterations=1,
    )
    assert len(result.rows("shortestPath")) > 0


def test_engine_aggsel_rewrite_psn(benchmark):
    program = aggsel.rewrite(programs.shortest_path())
    result = benchmark.pedantic(evaluate_with, args=(psn, program),
                                rounds=1, iterations=1)
    assert len(result.rows("shortestPath")) > 0


def test_engine_localized_program_psn(benchmark):
    program = localize(programs.shortest_path_safe())
    result = benchmark.pedantic(evaluate_with, args=(psn, program),
                                rounds=1, iterations=1)
    assert len(result.rows("shortestPath")) > 0

"""Capture-overhead benchmark for the provenance subsystem.

Runs the same workloads with ``provenance=True`` and with capture off
and reports the wall-clock ratio:

* **shortest-path** -- centralized PSN fixpoint of the aggregate-
  selected shortest-path query over a transit-stub overlay's links
  (the engine hot path: strand firings, view maintenance);
* **dsr** -- the dynamic-source-routing regime: the multi-query magic
  program deployed on a simulated overlay with staggered route
  requests (the distributed path: per-node recorders, wire tags,
  shared-store interning).

Run as a script it medians a few rounds, merges a ``provenance``
record into ``BENCH_results.json`` (append semantics: other
benchmarks' records are preserved) and enforces the CI gate: capture
must cost no more than ``MAX_OVERHEAD`` x the disabled run.  The
disabled runs double as a regression guard for the off path -- the
hooks are single ``None`` checks.
"""

import sys
import time

import repro
from repro.ndlog import programs
from repro.topology import build_overlay, transit_stub

N_NODES = 24
#: CI gate: provenance-on may cost at most this factor over capture-off.
MAX_OVERHEAD = 2.0


def overlay_links(seed=3, n_nodes=N_NODES):
    overlay = build_overlay(transit_stub(seed=seed), n_nodes=n_nodes,
                            degree=3, seed=seed)
    return overlay, overlay.link_rows("hopcount")


def run_shortest_path(provenance: bool) -> float:
    overlay, links = overlay_links()
    compiled = repro.compile(programs.shortest_path_safe(),
                             passes=["aggsel"], provenance=provenance)
    start = time.perf_counter()
    result = compiled.run(engine="psn", facts={"link": links})
    elapsed = time.perf_counter() - start
    assert result.rows("shortestPath")
    assert (result.provenance is not None) == provenance
    return elapsed


def run_dsr(provenance: bool) -> float:
    overlay, _links = overlay_links(seed=9)
    compiled = repro.compile(programs.multi_query_magic(),
                             passes=["aggsel", "localize"],
                             provenance=provenance)
    deployment = compiled.deploy(topology=overlay,
                                 link_loads={"link": "hopcount"})
    destination = overlay.nodes[-1]
    for index, src in enumerate(overlay.nodes[:3]):
        deployment.inject(src, "magicQuery", (src, f"q{index}", destination))
    start = time.perf_counter()
    deployment.advance()
    elapsed = time.perf_counter() - start
    assert deployment.rows("queryResult")
    if provenance:
        assert deployment.audit().ok
    return elapsed


WORKLOADS = {
    "shortest-path": run_shortest_path,
    "dsr": run_dsr,
}


def measure(rounds: int):
    results = {}
    for name, runner in WORKLOADS.items():
        runner(False)  # warm caches (imports, plan compilation, JIT dicts)
        off = [runner(False) for _ in range(rounds)]
        on = [runner(True) for _ in range(rounds)]
        # min-of-rounds: the standard noise-robust estimator for an
        # overhead ratio (anything above the minimum is interference).
        off_s = min(off)
        on_s = min(on)
        results[name] = {
            "off_seconds": off_s,
            "on_seconds": on_s,
            "overhead": on_s / off_s,
        }
        print(f"{name}: off {off_s:.3f}s, on {on_s:.3f}s "
              f"-> {on_s / off_s:.2f}x")
    return results


def main(argv):
    from bench_results import RESULTS_PATH, merge_results

    rounds = 2 if "--fast" in argv else 4
    results = measure(rounds)
    record = {"rounds": rounds, "nodes": N_NODES,
              "max_overhead_gate": MAX_OVERHEAD, **results}
    merge_results({"provenance": record})
    print(f"\nwrote {RESULTS_PATH}")
    worst = max(r["overhead"] for r in results.values())
    assert worst <= MAX_OVERHEAD, (
        f"provenance capture costs {worst:.2f}x "
        f"(gate {MAX_OVERHEAD:.1f}x)"
    )
    print(f"OK: worst overhead {worst:.2f}x within the "
          f"{MAX_OVERHEAD:.1f}x gate")
    return 0


def test_capture_run(benchmark):
    """pytest-benchmark case (collected only when pytest targets
    benchmarks/): one capture-on convergence; the gate itself lives in
    main()."""
    elapsed = benchmark.pedantic(
        lambda: run_shortest_path(True), rounds=1, iterations=1)
    assert elapsed > 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

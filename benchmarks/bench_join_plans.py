"""Compiled join plans vs the seed (interpreted) evaluator.

Two centralized workloads:

* **shortest-path** -- ``shortest_path_safe`` (Figure 1 plus the cycle
  guard) over a random connected link graph, evaluated with PSN;
* **DSR** -- the magic-shortest-path program (SP1-SD..SP4-SD, Section
  5.1.2's dynamic-source-routing analogue) with ``magicSrc``/``magicDst``
  seeds over the same graph.

Under pytest each variant is a pytest-benchmark case.  Run as a script
(``python benchmarks/bench_join_plans.py``) it interleaves planned and
unplanned runs, reports median pairwise speedups, verifies the
fixpoints are identical, and asserts the acceptance bar: planned
evaluation at least 1.5x faster than the seed evaluator on the
shortest-path workload.
"""

import random
import statistics
import time

import pytest

from repro.engine import Database, psn
from repro.ndlog import programs


def random_links(n_nodes=16, extra=10, seed=7):
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(n_nodes)]
    pairs = set()
    for i in range(n_nodes):          # a ring keeps it connected
        pairs.add((nodes[i], nodes[(i + 1) % n_nodes]))
    while len(pairs) < n_nodes + extra:
        a, b = rng.sample(nodes, 2)
        pairs.add((a, b))
    rows = []
    for a, b in sorted(pairs):
        cost = rng.randint(1, 10)
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows


LINKS = random_links()
DSR_LINKS = random_links(n_nodes=26, extra=18, seed=11)


def run_shortest_path(use_plans):
    program = programs.shortest_path_safe()
    db = Database.for_program(program)
    db.load_facts("link", LINKS)
    return psn.evaluate(program, db, use_plans=use_plans)


def run_dsr(use_plans):
    program = programs.magic_src_dst()
    db = Database.for_program(program)
    db.load_facts("link", DSR_LINKS)
    db.load_facts("magicSrc", [("v0",), ("v1",), ("v2",)])
    db.load_facts("magicDst", [("v25",)])
    return psn.evaluate(program, db, use_plans=use_plans)


WORKLOADS = {
    "shortest-path": (run_shortest_path, "shortestPath"),
    "dsr": (run_dsr, "shortestPath"),
}


@pytest.mark.parametrize("use_plans", [True, False],
                         ids=["planned", "unplanned"])
def test_join_plans_shortest_path(benchmark, use_plans):
    result = benchmark.pedantic(run_shortest_path, args=(use_plans,),
                                rounds=1, iterations=1)
    assert len(result.rows("shortestPath")) > 0


@pytest.mark.parametrize("use_plans", [True, False],
                         ids=["planned", "unplanned"])
def test_join_plans_dsr(benchmark, use_plans):
    result = benchmark.pedantic(run_dsr, args=(use_plans,),
                                rounds=1, iterations=1)
    assert len(result.rows("shortestPath")) > 0


def compare(name, rounds=5):
    run, answer_pred = WORKLOADS[name]
    ratios = []
    reference = None
    for _ in range(rounds):
        t0 = time.process_time()
        planned = run(True)
        t_planned = time.process_time() - t0
        t0 = time.process_time()
        unplanned = run(False)
        t_unplanned = time.process_time() - t0
        assert planned.db.snapshot() == unplanned.db.snapshot(), (
            f"{name}: planned and unplanned fixpoints differ"
        )
        if reference is None:
            reference = planned.rows(answer_pred)
            assert reference
        ratios.append(t_unplanned / t_planned)
    median = statistics.median(ratios)
    print(f"{name:15s} planned vs unplanned, {rounds} interleaved rounds: "
          f"ratios {[f'{r:.2f}' for r in ratios]}  median {median:.2f}x")
    return median


if __name__ == "__main__":
    # Shared runners are noisy; a median can dip on a bad scheduling
    # window, so the gate gets up to three attempts (each already a
    # median of 5 interleaved pairs).
    best = 0.0
    for attempt in range(3):
        best = max(best, compare("shortest-path"))
        if best >= 1.5:
            break
    dsr = compare("dsr")
    assert best >= 1.5, (
        f"planned evaluation only {best:.2f}x faster on shortest-path "
        f"(need >= 1.5x)"
    )
    print(f"\nOK: shortest-path {best:.2f}x (>= 1.5x required), dsr {dsr:.2f}x")

"""Shared benchmark fixtures.

Each benchmark regenerates one figure of the paper's evaluation
(Section 6).  Simulations are deterministic, so a single round is
meaningful; pytest-benchmark records the wall-clock cost of the
reproduction itself.

Set ``REPRO_SCALE=full`` for the paper's 100-node scale.
"""

import pytest

from repro.experiments.common import current_scale, default_overlay


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def overlay(scale):
    return default_overlay(scale)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)

"""Section 5.3 ablation (extension; the paper does not evaluate it):
message costs of TD vs BU vs the optimal hybrid radius split, using the
neighborhood function statistic."""

from conftest import run_once

from repro.opt.costbased import hybrid_study


def test_hybrid_search_ablation(benchmark, overlay, capsys):
    study = run_once(benchmark, hybrid_study, overlay, 60)
    with capsys.disabled():
        print()
        print(study.report())
    assert study.hybrid_total <= study.td_total
    assert study.hybrid_total <= study.bu_total
    # On sparse overlays the split should usually strictly help.
    assert study.hybrid_vs_best_pure <= 1.0

"""Weighted Z-set netting vs the PR 2 guard-based netting vs unbatched.

The queue used to net batched deltas with a conservative pass (plus-
before-minus pairing, uniform-pkey groups, stored-row agreement,
force/soft-state exemptions); the weighted core replaces all of it with
per-fact weight addition inside slot-ordered segments.  This benchmark
holds the new representation to the old one's recorded bar:

* **zset-link-flap** -- the link-flap storm of ``bench_delta_pipeline``
  with *weighted* transients: each flap announces and withdraws the
  same link with weight 5 (a burst of identical advertisements), which
  the weighted queue annihilates by addition while the unbatched
  reference pays one derivation wave per unit intent.
* **zset-bursty-update** -- the paper's Section 6.5 workload, reused
  verbatim from ``bench_delta_pipeline`` (primary-key replacements,
  never cancellable): the floor case, where netting must at least not
  slow legitimate recomputation down.
* **wire coalescing** -- a buffered-transport cluster under flap
  bursts: same-fact deltas are summed per message before send, and the
  shipped/coalesced NetDelta counts from ``net/stats.py`` quantify the
  reduction.

The CI gate compares the measured weighted speedups against the PR 2
netting speedups recorded in ``BENCH_results.json`` (the guard-based
pass's own acceptance run): weighted netting must be at least as fast
relative to the unbatched reference as the old pass was.  ``--fast``
trims rounds for CI.
"""

import json
import random
import sys
import time

from repro.engine.facts import Fact
from repro.runtime import Cluster, LinkUpdateDriver, RuntimeConfig
from repro.ndlog import programs
from repro.topology import build_overlay, transit_stub

from bench_delta_pipeline import (
    BATCH,
    RESULTS_PATH,
    compare_engine_workload,
    converged_engine,
    random_links,
    run_bursty_update,
)

#: Headroom on the recorded PR 2 speedups: speedup ratios are mostly
#: machine-independent, but the two runs still live on different host
#: load; the gate tolerates this much shortfall before failing.
GATE_TOLERANCE = 0.85


# ----------------------------------------------------------------------
# Workload: weighted link-flap storm
# ----------------------------------------------------------------------
def run_flap_storm(batch_size, rounds=5, flaps=5, weight=5, seed=3):
    """Weighted transient churn over a converged fixpoint.

    The batched engine receives each flap as one ``+weight`` and one
    ``-weight`` intent (netted to zero by addition before any strand
    fires); the ``batch_size=1`` reference receives the same flap as
    ``2 * weight`` unit intents and replays the insert/retract waves
    one at a time -- the signed one-at-a-time reading of the same
    Z-set."""
    links, nodes = random_links()
    engine = converged_engine(batch_size, links)
    rng = random.Random(seed)
    present = sorted({(a, b) for a, b, _c in links if a < b})
    candidates = [
        (a, b) for a in nodes for b in nodes
        if a < b and (a, b) not in set(present)
    ]
    costs = {(a, b): c for a, b, c in links if a < b}

    def derive(fact, w):
        if batch_size == 1:
            step = 1 if w > 0 else -1
            for _ in range(abs(w)):
                engine.derive(fact, step)
        else:
            engine.derive(fact, w)

    t0 = time.process_time()
    for _ in range(rounds):
        for a, b in rng.sample(candidates, flaps):
            cost = rng.randint(1, 10)
            derive(Fact("link", (a, b, cost)), weight)
            derive(Fact("link", (b, a, cost)), weight)
            derive(Fact("link", (a, b, cost)), -weight)
            derive(Fact("link", (b, a, cost)), -weight)
        for a, b in rng.sample(present, 2):
            new = max(1, min(10, costs[(a, b)] + rng.choice((-1, 1))))
            costs[(a, b)] = new
            engine.update("link", (a, b, new))
            engine.update("link", (b, a, new))
        engine.run()
    elapsed = time.process_time() - t0
    return elapsed, engine


# ----------------------------------------------------------------------
# Wire coalescing under buffered transport
# ----------------------------------------------------------------------
def run_wire_coalescing(bursts=6, cycles=3, seed=5):
    """Flap-burst a buffered cluster and report how many NetDeltas the
    per-message Z-set coalescing pass removed before send."""
    overlay = build_overlay(transit_stub(seed=seed), n_nodes=10, degree=3,
                            seed=seed)
    cluster = Cluster(
        overlay, programs.shortest_path_safe(),
        RuntimeConfig(aggregate_selections=True, buffer_interval=0.05),
        link_loads={"link": "hopcount"},
    )
    cluster.run()
    driver = LinkUpdateDriver(cluster, metric="hopcount", seed=seed)
    for index in range(bursts):
        cluster.clock.at(cluster.clock.now + 0.5 * (index + 1),
                         lambda: driver.flap_burst(cycles=cycles))
        cluster.clock.at(cluster.clock.now + 0.5 * (index + 1) + 0.1,
                         driver.apply_burst)
    cluster.run()
    stats = cluster.stats
    return {
        "netdeltas_shipped": stats.netdeltas_shipped,
        "netdeltas_coalesced": stats.netdeltas_coalesced,
        "coalesced_fraction": (
            stats.netdeltas_coalesced
            / (stats.netdeltas_shipped + stats.netdeltas_coalesced)
            if stats.netdeltas_shipped + stats.netdeltas_coalesced else 0.0
        ),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def recorded_reference():
    """The PR 2 netting speedups recorded by ``bench_delta_pipeline``'s
    acceptance run (absent entries gate against 1.0: never slower than
    unbatched)."""
    try:
        recorded = json.loads(RESULTS_PATH.read_text())
    except (ValueError, OSError):
        recorded = {}
    return {
        "link-flap": recorded.get("link-flap", {}).get("speedup", 1.0),
        "bursty-update": recorded.get("bursty-update", {}).get("speedup",
                                                               1.0),
    }


def main(argv):
    fast = "--fast" in argv
    rounds = 2 if fast else 4
    reference = recorded_reference()
    results = {}
    for name, run, ref_key in (
        ("zset-link-flap", run_flap_storm, "link-flap"),
        ("zset-bursty-update", run_bursty_update, "bursty-update"),
    ):
        record = compare_engine_workload(name, run, rounds)
        record["pr2_reference_speedup"] = reference[ref_key]
        results[name] = record
        print(f"{name:20s} weighted {record['batched_seconds']:.3f}s  "
              f"unbatched {record['unbatched_seconds']:.3f}s  "
              f"speedup {record['speedup']:.2f}x  "
              f"(PR 2 netting: {reference[ref_key]:.2f}x)")

    wire = run_wire_coalescing()
    results["zset-wire-coalescing"] = wire
    print(f"{'wire coalescing':20s} shipped {wire['netdeltas_shipped']}  "
          f"coalesced away {wire['netdeltas_coalesced']}  "
          f"({wire['coalesced_fraction']:.1%} of the stream)")

    from bench_results import merge_results

    merge_results(results)
    print(f"\nwrote {RESULTS_PATH}")

    flap = results["zset-link-flap"]
    assert flap["speedup"] >= GATE_TOLERANCE * flap["pr2_reference_speedup"], (
        f"weighted netting regressed the link-flap bar: "
        f"{flap['speedup']:.2f}x < {GATE_TOLERANCE:.2f} * "
        f"{flap['pr2_reference_speedup']:.2f}x (PR 2 netting)"
    )
    assert wire["netdeltas_coalesced"] > 0, (
        "wire coalescing removed no NetDeltas under buffered flap bursts"
    )
    print("acceptance gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

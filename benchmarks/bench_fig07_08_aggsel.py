"""Figure 7 (per-node bandwidth over time) and Figure 8 (% results over
time) for the four shortest-path metric variants, with aggregate
selections -- Section 6.2."""

from conftest import run_once

from repro.experiments import fig7_8


def test_fig07_08_aggregate_selections(benchmark, overlay, scale, capsys):
    result = run_once(benchmark, fig7_8.run, overlay=overlay, scale=scale)
    with capsys.disabled():
        print()
        print(result.report())
    result.check_shape()

"""Compile-time overhead gate for the ndlint static analyzer.

The contract: turning the default ``lint="warn"`` mode on must add
less than ``MAX_OVERHEAD_FRACTION`` to ``compile()`` on the
shortest-path program, compared to ``lint="off"``.  The default mode
is *lazy* -- the analyses run on first ``.diagnostics`` access, not
inside ``compile()`` -- so the gate holds by construction and this
benchmark keeps it honest (a regression that makes the default eager
would trip it immediately).

For visibility the script also times the analyses themselves (the
cost a caller pays on first ``.diagnostics`` access or under
``lint="error"``), which is NOT gated: it is the price of the check,
paid knowingly.

Run:  PYTHONPATH=src python benchmarks/bench_lint_overhead.py [--fast]
Merges a ``lint_overhead`` record into BENCH_results.json.
"""

import statistics
import sys
import time

import repro
from repro.ndlog import programs

from bench_results import merge_results

#: CI gate: lint="warn" may add at most this fraction to compile().
MAX_OVERHEAD_FRACTION = 0.05


def time_compile(lint: str, rounds: int) -> float:
    """Median seconds per compile() of shortest-path at ``lint``."""
    samples = []
    for _ in range(rounds):
        program = programs.shortest_path()
        start = time.perf_counter()
        repro.compile(program, lint=lint)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def time_analysis(rounds: int) -> float:
    """Median seconds for one full eager analysis (all five passes)."""
    samples = []
    for _ in range(rounds):
        compiled = repro.compile(programs.shortest_path(), lint="warn")
        start = time.perf_counter()
        report = compiled.diagnostics
        samples.append(time.perf_counter() - start)
        assert report is not None and report.ok
    return statistics.median(samples)


def main() -> int:
    fast = "--fast" in sys.argv
    rounds = 20 if fast else 60
    # Warm imports/caches so neither arm pays one-time costs.
    time_compile("off", 3)
    time_analysis(1)

    off = time_compile("off", rounds)
    warn = time_compile("warn", rounds)
    analysis = time_analysis(5 if fast else 15)
    overhead = (warn - off) / off if off else 0.0

    print(f"compile(lint='off'):   {off * 1e3:8.3f} ms")
    print(f"compile(lint='warn'):  {warn * 1e3:8.3f} ms")
    print(f"overhead:              {overhead * 100:8.2f} % "
          f"(gate: < {MAX_OVERHEAD_FRACTION * 100:.0f} %)")
    print(f"eager analysis:        {analysis * 1e3:8.3f} ms "
          f"(first .diagnostics access / lint='error'; not gated)")

    merge_results({
        "lint_overhead": {
            "program": "shortest_path",
            "rounds": rounds,
            "compile_off_ms": round(off * 1e3, 3),
            "compile_warn_ms": round(warn * 1e3, 3),
            "overhead_fraction": round(overhead, 4),
            "eager_analysis_ms": round(analysis * 1e3, 3),
            "gate_max_fraction": MAX_OVERHEAD_FRACTION,
        }
    })

    if overhead >= MAX_OVERHEAD_FRACTION:
        print(f"FAIL: lint='warn' adds {overhead * 100:.2f} % to "
              f"compile() (gate < {MAX_OVERHEAD_FRACTION * 100:.0f} %)")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())

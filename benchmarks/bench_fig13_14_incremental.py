"""Figures 13/14: incremental evaluation under bursty link updates --
Section 6.5."""

from conftest import run_once

from repro.experiments import fig13_14


def test_fig13_periodic_bursts(benchmark, overlay, scale, capsys):
    result = run_once(benchmark, fig13_14.run_fig13, overlay=overlay,
                      scale=scale)
    with capsys.disabled():
        print()
        print(result.report())
    result.check_shape()


def test_fig14_interleaved_bursts(benchmark, overlay, scale, capsys):
    result = run_once(benchmark, fig13_14.run_fig14, overlay=overlay,
                      scale=scale)
    with capsys.disabled():
        print()
        print(result.report())
    result.check_shape()

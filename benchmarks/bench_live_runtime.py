"""Throughput probe for the live execution target: deltas/sec over
in-process asyncio channels.

The virtual-time benchmarks measure host cost per *simulated* second;
the live target has a different figure of merit -- how many deltas the
wall-clock runtime pushes through per real second, across all node
tasks sharing one event loop.  The probe converges shortest-path (with
aggregate selections) on a transit-stub overlay with the CPU-delay
model set to zero, so the measured rate is the runtime's own overhead:
clock timers, channel hops, inbox queues, and the PSN engines.

Run as a script it medians a few rounds, merges a ``live-runtime``
record into ``BENCH_results.json`` (append semantics: the other
benchmarks' records are preserved), and asserts a modest throughput
floor.  Under pytest it is a pytest-benchmark case.
"""

import asyncio
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.ndlog import programs
from repro.topology import build_overlay, transit_stub

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"
N_NODES = 16
#: CI gate: the loop must sustain at least this many deltas/sec.  The
#: observed rate is an order of magnitude above; the floor only catches
#: catastrophic regressions (e.g. an accidental real sleep per delta).
FLOOR_DELTAS_PER_SEC = 1_000


def run_live_round(channels="inproc"):
    """One cold-start convergence; returns (wall_seconds, deltas)."""
    compiled = repro.compile(programs.shortest_path_safe(),
                             passes=["aggsel", "localize"])
    overlay = build_overlay(transit_stub(seed=9), n_nodes=N_NODES,
                            degree=3, seed=9)
    config = repro.RuntimeConfig(cpu_delay=0.0)
    deployment = compiled.deploy(
        topology=overlay, config=config, link_loads={"link": "hopcount"},
        target="live", channels=channels,
    )

    async def drive():
        t0 = time.perf_counter()
        await deployment.start()
        assert await deployment.quiescent(timeout=120.0), "no quiescence"
        elapsed = time.perf_counter() - t0
        await deployment.stop()
        return elapsed

    elapsed = asyncio.run(drive())
    assert deployment.query_rows(), "no shortest paths computed"
    return elapsed, deployment.cluster.total_deltas_processed()


def main(argv):
    rounds = 2 if "--fast" in argv else 4
    measured = []
    for _ in range(rounds):
        elapsed, deltas = run_live_round()
        measured.append((deltas / elapsed, elapsed, deltas))
        print(f"round: {deltas} deltas in {elapsed:.3f}s wall "
              f"({deltas / elapsed:,.0f} deltas/sec)")
    # Median round by rate: live timing is noisy and delta counts vary
    # round to round, so pairing a median wall time with any single
    # round's count would report a rate no round exhibited.
    rate, wall, deltas = sorted(measured)[len(measured) // 2]
    record = {
        "backend": "inproc",
        "nodes": N_NODES,
        "deltas": deltas,
        "wall_seconds": wall,
        "deltas_per_sec": rate,
        "rounds": rounds,
    }
    from bench_results import merge_results

    merge_results({"live-runtime": record})
    print(f"\nlive-runtime: {rate:,.0f} deltas/sec over in-process "
          f"channels ({N_NODES} nodes); wrote {RESULTS_PATH}")
    assert rate >= FLOOR_DELTAS_PER_SEC, (
        f"live runtime only {rate:,.0f} deltas/sec "
        f"(floor {FLOOR_DELTAS_PER_SEC:,})"
    )
    print(f"OK: above the {FLOOR_DELTAS_PER_SEC:,} deltas/sec floor")
    return 0


def test_live_throughput(benchmark):
    _elapsed, deltas = benchmark.pedantic(
        run_live_round, rounds=1, iterations=1)
    assert deltas > 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""Batched delta pipeline vs the per-delta reference path.

Three churn-heavy workloads exercise the three layers of the pipeline
(Section 4's bursty-update regime):

* **link-flap** -- transient link announce/withdraw churn over a
  converged shortest-path fixpoint, evaluated with a centralized PSN
  engine.  The flap bursts are plus-before-minus pairs, exactly the
  pattern queue-level cancellation annihilates before any table or
  strand work; the unbatched engine pays a full derivation wave and a
  full retraction wave per flap.
* **bursty-update** -- the paper's Section 6.5 workload: periodic
  bursts updating 10% of link costs by up to 10% (primary-key
  replacements, never cancellable), measuring run-batched strand
  firing plus netted aggregate views on legitimate recomputation.
* **soft-state-expiry** -- a distributed cluster of TTL'd beacons with
  periodic refreshers and the expiry sweeper, measuring the runtime
  layer: multi-delta CPU ticks (``cpu_batch``) over the cheap
  simulator loop.

Run as a script it interleaves batched and unbatched rounds, verifies
the fixpoints *and per-tuple derivation counts* are identical, writes
``BENCH_results.json`` (workload -> median seconds, inferences,
speedup), and asserts the acceptance bar: >= 2x on at least one churn
workload.  ``--fast`` trims rounds for CI.  Under pytest each workload
is a pytest-benchmark case.
"""

import random
import statistics
import sys
import time
from pathlib import Path

import pytest

from repro.engine import Database
from repro.engine.facts import Fact
from repro.engine.psn import PSNEngine
from repro.ndlog import parse, programs
from repro.runtime import Cluster, RuntimeConfig, SoftStateManager
from repro.topology import build_overlay, transit_stub

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"
BATCH = 64


def random_links(n_nodes=14, extra=8, seed=7):
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(n_nodes)]
    pairs = set()
    for i in range(n_nodes):
        pairs.add((nodes[i], nodes[(i + 1) % n_nodes]))
    while len(pairs) < n_nodes + extra:
        a, b = rng.sample(nodes, 2)
        pairs.add(tuple(sorted((a, b))))
    rows = []
    for a, b in sorted(pairs):
        cost = rng.randint(1, 10)
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows, nodes


def counts_snapshot(db):
    return {
        name: {args: table.count(args) for args in table.rows()}
        for name, table in db.tables.items()
    }


def converged_engine(batch_size, links):
    program = programs.shortest_path_safe()
    db = Database.for_program(program)
    db.load_facts("link", links)
    engine = PSNEngine(program, db=db, batch_size=batch_size)
    engine.fixpoint()
    return engine


# ----------------------------------------------------------------------
# Workload: link-flap churn
# ----------------------------------------------------------------------
def run_link_flap(batch_size, rounds=5, flaps=5, seed=3):
    """Each round mixes transient announce/withdraw flaps (cancellable)
    with two real cost updates (never cancellable), so the batched
    engine still does the legitimate recomputation -- the speedup
    measures how much of the *churn* the pipeline refuses to pay for."""
    links, nodes = random_links()
    engine = converged_engine(batch_size, links)
    rng = random.Random(seed)
    present = sorted({(a, b) for a, b, _c in links if a < b})
    candidates = [
        (a, b) for a in nodes for b in nodes
        if a < b and (a, b) not in set(present)
    ]
    costs = {(a, b): c for a, b, c in links if a < b}
    t0 = time.process_time()
    for _ in range(rounds):
        burst = rng.sample(candidates, flaps)
        for a, b in burst:
            cost = rng.randint(1, 10)
            # Transient link: announced, then withdrawn before the
            # engine runs -- a flap burst arriving between ticks.
            engine.derive(Fact("link", (a, b, cost)), 1)
            engine.derive(Fact("link", (b, a, cost)), 1)
            engine.derive(Fact("link", (a, b, cost)), -1)
            engine.derive(Fact("link", (b, a, cost)), -1)
        for a, b in rng.sample(present, 2):
            new = max(1, min(10, costs[(a, b)] + rng.choice((-1, 1))))
            costs[(a, b)] = new
            engine.update("link", (a, b, new))
            engine.update("link", (b, a, new))
        engine.run()
    elapsed = time.process_time() - t0
    return elapsed, engine


# ----------------------------------------------------------------------
# Workload: bursty updates (Section 6.5)
# ----------------------------------------------------------------------
def run_bursty_update(batch_size, bursts=4, fraction=0.15, seed=11):
    links, _nodes = random_links()
    engine = converged_engine(batch_size, links)
    rng = random.Random(seed)
    costs = {(a, b): c for a, b, c in links if a < b}
    t0 = time.process_time()
    for _ in range(bursts):
        pairs = rng.sample(sorted(costs), max(1, int(len(costs) * fraction)))
        for a, b in pairs:
            old = costs[(a, b)]
            new = max(1, min(10, old + rng.choice((-1, 1))))
            costs[(a, b)] = new
            engine.update("link", (a, b, new))
            engine.update("link", (b, a, new))
        engine.run()
    elapsed = time.process_time() - t0
    return elapsed, engine


# ----------------------------------------------------------------------
# Workload: soft-state expiry (distributed runtime)
# ----------------------------------------------------------------------
BEACON_PROGRAM = """
materialize(beacon, 1.0, infinity, keys(1, 2)).
B1: seen(@D, S) :- #beacon(@S, @D, C).
"""


def run_soft_state(cpu_batch, refresh_rounds=40, seed=8):
    overlay = build_overlay(transit_stub(seed=seed), n_nodes=40, degree=5,
                            seed=seed)
    program = parse(BEACON_PROGRAM)
    config = RuntimeConfig(validate=False, cpu_batch=cpu_batch)
    cluster = Cluster(overlay, program, config,
                      link_loads={"beacon": "hopcount"})
    manager = SoftStateManager(cluster, sweep_interval=0.25)
    manager.install()
    rows_by_node = {}
    for a, b, c in overlay.link_rows("hopcount"):
        rows_by_node.setdefault(a, []).append((a, b, c))
    manager.schedule_refresh("beacon", rows_by_node, interval=0.5,
                             rounds=refresh_rounds)
    t0 = time.process_time()
    cluster.run()
    elapsed = time.process_time() - t0
    return elapsed, cluster, manager


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def compare_engine_workload(name, run, rounds):
    """Interleave batched/unbatched rounds; verify equivalence; return
    the result record."""
    batched_times, unbatched_times = [], []
    inferences = {}
    for _ in range(rounds):
        t_batched, batched = run(BATCH)
        t_unbatched, unbatched = run(1)
        assert batched.db.snapshot() == unbatched.db.snapshot(), (
            f"{name}: batched and unbatched fixpoints differ"
        )
        assert counts_snapshot(batched.db) == counts_snapshot(unbatched.db), (
            f"{name}: batched and unbatched derivation counts differ"
        )
        batched_times.append(t_batched)
        unbatched_times.append(t_unbatched)
        inferences = {
            "batched": batched.inferences,
            "unbatched": unbatched.inferences,
        }
    record = {
        "batched_seconds": statistics.median(batched_times),
        "unbatched_seconds": statistics.median(unbatched_times),
        "inferences": inferences,
        "batch_size": BATCH,
    }
    record["speedup"] = (
        record["unbatched_seconds"] / record["batched_seconds"]
        if record["batched_seconds"] else float("inf")
    )
    return record


def compare_soft_state(rounds):
    batched_times, unbatched_times = [], []
    deltas = {}
    for _ in range(rounds):
        t_batched, cluster_b, manager_b = run_soft_state(16)
        t_unbatched, cluster_u, manager_u = run_soft_state(1)
        assert cluster_b.rows("beacon") == cluster_u.rows("beacon")
        assert cluster_b.rows("seen") == cluster_u.rows("seen")
        assert manager_b.expired_count > 0 and manager_u.expired_count > 0
        batched_times.append(t_batched)
        unbatched_times.append(t_unbatched)
        deltas = {
            "batched": cluster_b.total_deltas_processed(),
            "unbatched": cluster_u.total_deltas_processed(),
            "batched_events": cluster_b.sim.events_processed,
            "unbatched_events": cluster_u.sim.events_processed,
        }
    record = {
        "batched_seconds": statistics.median(batched_times),
        "unbatched_seconds": statistics.median(unbatched_times),
        "deltas": deltas,
        "batch_size": 16,
    }
    record["speedup"] = (
        record["unbatched_seconds"] / record["batched_seconds"]
        if record["batched_seconds"] else float("inf")
    )
    return record


def main(argv):
    fast = "--fast" in argv
    rounds = 3 if fast else 5
    results = {}
    for name, run in (
        ("link-flap", run_link_flap),
        ("bursty-update", run_bursty_update),
    ):
        results[name] = compare_engine_workload(name, run, rounds)
        print(f"{name:16s} batched {results[name]['batched_seconds']:.3f}s  "
              f"unbatched {results[name]['unbatched_seconds']:.3f}s  "
              f"speedup {results[name]['speedup']:.2f}x")
    results["soft-state-expiry"] = compare_soft_state(rounds)
    r = results["soft-state-expiry"]
    print(f"{'soft-state-expiry':16s} batched {r['batched_seconds']:.3f}s  "
          f"unbatched {r['unbatched_seconds']:.3f}s  "
          f"speedup {r['speedup']:.2f}x")

    from bench_results import merge_results

    merge_results(results)
    print(f"\nwrote {RESULTS_PATH}")

    best = max(results[n]["speedup"] for n in ("link-flap", "bursty-update"))
    assert best >= 2.0, (
        f"batched pipeline only {best:.2f}x faster on the churn workloads "
        f"(need >= 2x on at least one)"
    )
    print(f"OK: best churn speedup {best:.2f}x (>= 2x required)")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark cases
# ----------------------------------------------------------------------
@pytest.mark.parametrize("batch_size", [BATCH, 1],
                         ids=["batched", "unbatched"])
def test_link_flap(benchmark, batch_size):
    _elapsed, engine = benchmark.pedantic(
        run_link_flap, args=(batch_size,), rounds=1, iterations=1)
    assert engine.quiescent


@pytest.mark.parametrize("batch_size", [BATCH, 1],
                         ids=["batched", "unbatched"])
def test_bursty_update(benchmark, batch_size):
    _elapsed, engine = benchmark.pedantic(
        run_bursty_update, args=(batch_size,), rounds=1, iterations=1)
    assert engine.quiescent


@pytest.mark.parametrize("cpu_batch", [16, 1], ids=["batched", "unbatched"])
def test_soft_state_expiry(benchmark, cpu_batch):
    _elapsed, cluster, manager = benchmark.pedantic(
        run_soft_state, args=(cpu_batch,), rounds=1, iterations=1)
    assert manager.expired_count > 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

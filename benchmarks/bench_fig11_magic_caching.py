"""Figure 11: aggregate communication vs number of queries for No-MS,
MS, MSC, MSC-30%, MSC-10% -- Section 6.3."""

from conftest import run_once

from repro.experiments import fig11


def test_fig11_magic_sets_and_caching(benchmark, overlay, scale, capsys):
    result = run_once(benchmark, fig11.run, overlay=overlay, scale=scale)
    with capsys.disabled():
        print()
        print(result.report())
    result.check_shape()

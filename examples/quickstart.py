"""Quickstart: one front door from NDlog source to a live declarative
network -- ``repro.compile()`` -> ``CompiledProgram`` -> ``run()`` /
``deploy()``.

This walks the paper's running example (Figure 1 / Figure 2): the
all-pairs shortest-path query over the five-node network of Section 2.2.

Run:  python examples/quickstart.py
"""

import repro
from repro.runtime import RuntimeConfig
from repro.topology import build_overlay, transit_stub

# ----------------------------------------------------------------------
# 1. The NDlog program, verbatim from Figure 1 of the paper (with the
#    cycle guard discussed in Section 5.1.1 so it terminates without
#    further optimization).
# ----------------------------------------------------------------------
SOURCE = """
SP1: path(@S, @D, @D, P, C) :- #link(@S, @D, C),
     P := f_concatPath(link(@S, @D, C), nil).
SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1),
     path(@Z, @D, @Z2, P2, C2), f_member(P2, S) == 0,
     C := C1 + C2, P := f_concatPath(link(@S, @Z, C1), P2).
SP3: spCost(@S, @D, min<C>) :- path(@S, @D, @Z, P, C).
SP4: shortestPath(@S, @D, P, C) :- spCost(@S, @D, C), path(@S, @D, @Z, P, C).
Query: shortestPath(@S, @D, P, C).
"""

# ----------------------------------------------------------------------
# 2. Compile: parse + validate + the optimization-pass pipeline
#    (aggregate selections by default; localization is appended
#    automatically at deploy time).  ``explain()`` shows what each pass
#    did to the rules and the final compiled join plans.
# ----------------------------------------------------------------------
compiled = repro.compile(SOURCE, name="quickstart",
                         passes=["aggsel", "localize"])
report = compiled.report
print(f"program valid: {report.ok}")
print(f"local rules: {report.local_rules}  "
      f"link-restricted: {report.link_restricted_rules}")
print()
print(compiled.explain())

# ----------------------------------------------------------------------
# 3. Centralized evaluation with pipelined semi-naive (Algorithm 3) on
#    Figure 2's example network.
# ----------------------------------------------------------------------
FIGURE2_LINKS = [
    ("a", "b", 5), ("b", "a", 5),
    ("a", "c", 1), ("c", "a", 1),
    ("c", "b", 1), ("b", "c", 1),
    ("b", "d", 1), ("d", "b", 1),
    ("e", "a", 1), ("a", "e", 1),
]

result = compiled.run(engine="psn", facts={"link": FIGURE2_LINKS})

print("\ncentralized PSN results (Figure 2's network):")
for s, d, p, c in sorted(result.rows("shortestPath")):
    print(f"  shortestPath({s} -> {d})  path={'->'.join(p)}  cost={c}")

# The example the paper narrates: a's route to b improves from the
# direct 5-cost link to [a,c,b] at cost 2.
assert ("a", "b", ("a", "c", "b"), 2) in result.rows("shortestPath")

# ----------------------------------------------------------------------
# 4. The same compiled artifact, deployed distributed: localized
#    (Algorithm 2), one PSN dataflow per node, communication only
#    along links.
# ----------------------------------------------------------------------
overlay = build_overlay(transit_stub(seed=42), n_nodes=24, degree=3, seed=42)
deployment = compiled.deploy(
    topology=overlay,
    config=RuntimeConfig(),
    link_loads={"link": "latency"},
)
tracker = deployment.watch("shortestPath")
deployment.advance()

stats = deployment.stats
print(f"\ndistributed run: {len(overlay.nodes)} nodes, "
      f"{len(overlay.links)} overlay links")
print(f"  converged at t={tracker.convergence_time():.2f}s (virtual)")
print(f"  messages={stats.messages}  "
      f"traffic={stats.total_mb():.2f} MB  "
      f"peak={stats.peak_per_node_kbps(len(overlay.nodes)):.1f} kBps/node")

node0 = overlay.nodes[0]
routes = sorted(deployment.rows("shortestPath", node=node0))[:5]
print(f"  first routes installed at {node0}:")
for s, d, p, c in routes:
    print(f"    {s} -> {d} via {'->'.join(p)} (latency {c:.1f} ms)")
assert deployment.quiescent

"""Diagnosing routing state with provenance: why / why-not on a lost
route.

An 8-node overlay runs the dynamic shortest-path query with derivation
capture on (``compile(..., provenance=True)``).  We first ask ``why``
a multi-hop route holds -- the answer is a derivation tree whose
leaves are exactly the ``link`` facts the route rests on, across every
node that fired a rule.  Then a link on that route fails; the network
re-converges and either finds a detour (``why`` shows the new
derivation) or loses the route entirely, and ``why_not`` replays the
rule bodies against live table state to name the missing fact the
route is blocked on -- tracing a protocol-level symptom ("no route to
D") down to the topology-level cause ("link(S, Z) is gone").

Run:  python examples/why_routing.py
"""

import repro
from repro.ndlog import programs
from repro.ndlog.pretty import format_derivation, format_why_not
from repro.topology import build_overlay, transit_stub

NODES = 8

compiled = repro.compile(programs.shortest_path_dynamic(),
                         passes=["aggsel", "localize"], provenance=True)
overlay = build_overlay(transit_stub(seed=11), n_nodes=NODES, degree=2,
                        seed=11)


def deploy():
    deployment = compiled.deploy(topology=overlay,
                                 link_loads={"link": "hopcount"})
    deployment.advance()
    return deployment


deployment = deploy()
routes = sorted(deployment.query_rows())
print(f"{NODES}-node overlay converged: {len(routes)} shortest paths\n")

# -- why: a route's derivation tree, traced across nodes ---------------
src, dst, path, cost = max(routes, key=lambda r: len(r[2]))
print(f"why does {src} route to {dst} via {'->'.join(path)} (cost {cost})?")
tree = deployment.why("shortestPath", (src, dst, path, cost))
print(format_derivation(tree, indent="  "))

leaves = tree.leaves()
assert all(leaf.pred == "link" for leaf in leaves)
edges = {frozenset((leaf.args[0], leaf.args[1])) for leaf in leaves}
assert edges == {frozenset(edge) for edge in zip(path, path[1:])}, \
    "derivation leaves must be exactly the links on the path"
print(f"\n  -> rests on {len(leaves)} base link facts, "
      f"spanning the {len(path) - 1} physical links of the path")

# The count/graph auditor doubles as a consistency check.
assert deployment.audit().ok
print("  -> auditor: derivation counts match the provenance graph\n")

# -- fail a link on that route -----------------------------------------
a, b = path[0], path[1]
failed_cost = overlay.link_metrics(a, b)["hopcount"]
print(f"failing link {a} <-> {b} ...")
deployment.delete(a, "link", (a, b, failed_cost))
deployment.delete(b, "link", (b, a, failed_cost))
deployment.advance()

after = {(r[0], r[1]): r for r in deployment.query_rows()}
replacement = after.get((src, dst))
if replacement is not None:
    new_path = replacement[2]
    print(f"re-converged: {src} now reaches {dst} via "
          f"{'->'.join(new_path)} (cost {replacement[3]})")
    tree = deployment.why("shortestPath", replacement)
    assert frozenset((a, b)) not in {
        frozenset((leaf.args[0], leaf.args[1])) for leaf in tree.leaves()
    }, "the new derivation must not rest on the failed link"
    print("  -> its derivation no longer rests on the failed link")
else:
    print(f"no route from {src} to {dst} survives the failure")
assert deployment.audit().ok

# -- why_not: sever every link of the destination and diagnose ---------
print(f"\npartitioning {dst}: deleting all its links ...")
for x, y, cost in overlay.link_rows("hopcount"):
    if dst in (x, y):
        deployment.delete(x, "link", (x, y, cost))
deployment.advance()
assert not any(r[1] == dst for r in deployment.query_rows())

report = deployment.why_not("shortestPath", (src, dst, None, None))
assert not report.present
print(f"why_not shortestPath({src}, {dst}, _, _):")
print(format_why_not(report, indent="  "))
assert report.blocked_on, "analysis must name the blocking body items"
assert deployment.audit().ok
print("\nauditor still clean after the deletion bursts -- "
      "provenance, counts, and tables agree")

"""Dynamic-source-routing style path discovery (Sections 5.1.2 / 6.3).

The magic-shortest-path query executes top-down from the source --
"executing the query in this Top-Down fashion resembles a network
protocol called dynamic source routing" -- and query-result caching
lets nodes that already know a route to the destination answer
mid-flight, exactly like DSR route caches.

Run:  python examples/dynamic_source_routing.py
"""

import repro
from repro.ndlog import programs
from repro.runtime import CachePolicy, RuntimeConfig
from repro.topology import build_overlay, transit_stub
from repro.topology.neighborhood import hop_distances

overlay = build_overlay(transit_stub(seed=9), n_nodes=30, degree=3, seed=9)

# Five route requests, all towards the same destination -- the regime
# where caching shines (Figure 11's MSC-10% line).
destination = overlay.nodes[-1]
sources = overlay.nodes[:5]

# One compiled artifact serves both runs; only the runtime config
# (caching on/off) differs.
compiled = repro.compile(programs.multi_query_magic(),
                         passes=["aggsel", "localize"])


def run(caching: bool) -> repro.Deployment:
    config = RuntimeConfig(
        cache=CachePolicy(query_pred="pathQ__best") if caching else None,
    )
    deployment = compiled.deploy(
        topology=overlay,
        config=config,
        link_loads={"link": "hopcount"},
    )
    # Queries staggered half a second apart, as a real client would
    # issue them; each is a magicQuery(@src, qid, @dst) fact at the
    # source node.
    for index, src in enumerate(sources):
        deployment.at(
            0.5 * index,
            lambda s=src, q=f"route{index}": deployment.inject(
                s, "magicQuery", (s, q, destination)
            ),
        )
    deployment.advance()
    return deployment


plain = run(caching=False)
cached = run(caching=True)

print(f"route requests: {len(sources)} sources -> {destination}")
print(f"{'query':8s} {'source':7s} {'hops':>4s}  route")
results = {args[1]: args for args in cached.rows("queryResult")}
for index, src in enumerate(sources):
    qid = f"route{index}"
    _n, _q, path, cost = results[qid]
    want = hop_distances(overlay, src)[destination]
    marker = "ok" if cost == want else "WRONG"
    print(f"{qid:8s} {src:7s} {cost:4d}  {'->'.join(path)}  [{marker}]")
    assert cost == want

hits = sum(node.cache_hits for node in cached.nodes.values())
print(f"\nwithout route caches: {plain.stats.total_mb():.3f} MB, "
      f"{plain.stats.messages} messages")
print(f"with route caches:    {cached.stats.total_mb():.3f} MB, "
      f"{cached.stats.messages} messages, {hits} cache hits")
print(f"saving: {100 * (1 - cached.stats.total_mb() / plain.stats.total_mb()):.0f}%")

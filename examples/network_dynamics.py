"""Routing under network dynamics (Sections 4 / 6.5).

A declarative network keeps its routes consistent while the ground
truth changes underneath it: link costs are updated in bursts, and the
materialized shortest paths re-converge incrementally -- no
recomputation from scratch, and the quiesced state always equals what a
fresh run on the new topology would produce (eventual consistency,
Theorem 4).

Run:  python examples/network_dynamics.py
"""

import heapq

import repro
from repro.ndlog import programs
from repro.runtime import LinkUpdateDriver, RuntimeConfig
from repro.topology import build_overlay, transit_stub

overlay = build_overlay(transit_stub(seed=21), n_nodes=24, degree=3, seed=21)

# The protocol form of the query: each (src, dst, nexthop) slot holds
# the neighbour's latest advertisement (see DESIGN.md).
deployment = repro.compile(
    programs.shortest_path_dynamic(), passes=["aggsel", "localize"]
).deploy(
    topology=overlay,
    config=RuntimeConfig(buffer_interval=0.2),
    link_loads={"link": "random"},
)
driver = LinkUpdateDriver(deployment.cluster, metric="random", fraction=0.10,
                          magnitude=0.10, seed=2)

deployment.advance()
initial_bytes = deployment.stats.total_bytes()
print(f"initial convergence: {initial_bytes / 1e6:.3f} MB")


def dijkstra(costs, nodes):
    adjacency = {}
    for (a, b), cost in costs.items():
        adjacency.setdefault(a, []).append((b, cost))
        adjacency.setdefault(b, []).append((a, cost))
    out = {}
    for source in nodes:
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nxt, w in adjacency.get(node, ()):
                if d + w < dist.get(nxt, float("inf")):
                    dist[nxt] = d + w
                    heapq.heappush(heap, (d + w, nxt))
        for target, d in dist.items():
            if target != source:
                out[(source, target)] = d
    return out


for burst_number in range(1, 4):
    before = deployment.stats.total_bytes()
    record = driver.apply_burst()
    deployment.advance()
    spent = (deployment.stats.total_bytes() - before) / 1e6
    print(f"\nburst {burst_number}: {len(record.updated_links)} links updated, "
          f"re-convergence cost {spent:.3f} MB "
          f"({100 * spent * 1e6 / initial_bytes:.0f}% of from-scratch)")

    # Verify eventual consistency against ground truth.
    want = dijkstra(driver.costs, overlay.nodes)
    got = {}
    for s, d, _p, c in deployment.rows("shortestPath"):
        if s != d:
            got[(s, d)] = min(c, got.get((s, d), float("inf")))
    mismatches = sum(
        1 for key, cost in want.items()
        if abs(got.get(key, float("inf")) - cost) > 1e-6
    )
    print(f"  eventual consistency: "
          f"{'OK' if mismatches == 0 else f'{mismatches} MISMATCHES'} "
          f"({len(want)} pairs checked)")
    assert mismatches == 0

"""Watching a declarative network run: metrics, traces, profiles.

An 8-node overlay runs the localized shortest-path query with the full
observability stack on (``deploy(..., metrics=True, trace=True,
profile=True)``).  After convergence we:

* snapshot the **metrics registry** -- per-rule firing counts, weighted
  per-relation commits, per-node queue peaks, transport totals -- and
  print the Prometheus text exposition a scraper would see;
* pick one shortest path and follow its **delta-propagation trace**:
  the causal chain of spans (inject -> derive -> ship -> receive ->
  commit) the winning derivation left across the wire, then export the
  whole run as Chrome trace-event JSON (load it at chrome://tracing or
  https://ui.perfetto.dev);
* print the **per-strand profile**: where the engines actually spent
  their CPU time, rule by rule.

Run:  python examples/observability.py          (writes obs_trace.json)
"""

import repro
from repro.ndlog import programs
from repro.topology import build_overlay, transit_stub

NODES = 8
TRACE_PATH = "obs_trace.json"

compiled = repro.compile(programs.shortest_path_safe(),
                         passes=["aggsel", "localize"])
overlay = build_overlay(transit_stub(seed=11), n_nodes=NODES, degree=2,
                        seed=11)
deployment = compiled.deploy(topology=overlay,
                             link_loads={"link": "hopcount"},
                             metrics=True, trace=True, profile=True)
deployment.advance()
routes = sorted(deployment.query_rows())
print(f"{NODES}-node overlay converged: {len(routes)} shortest paths\n")

# -- metrics: what ran, what committed, what it cost on the wire -------
snapshot = deployment.metrics()
print("rule firings (cluster-wide):")
for rule, counts in sorted(snapshot.rule_totals().items()):
    print(f"  {rule}: {counts['firings']} firings, "
          f"{counts['inferences']} inferences")
print("weighted commits per relation:")
for pred, counts in sorted(snapshot.relation_totals().items()):
    print(f"  {pred}: +{int(counts['commits'])} / "
          f"-{int(counts['retractions'])} "
          f"({int(counts['rows'])} rows standing)")
busiest = max(snapshot.nodes, key=lambda n: snapshot.nodes[n]["queue_peak"])
print(f"busiest queue: {busiest} peaked at "
      f"{int(snapshot.nodes[busiest]['queue_peak'])} deltas\n")

print("-- Prometheus exposition (first lines) --")
print("\n".join(snapshot.to_prometheus().splitlines()[:12]))
print()

# -- tracing: follow one route's winning derivation across the wire ----
src, dst, path, cost = max(routes, key=lambda r: len(r[2]))
print(f"tracing shortestPath({src}, {dst}) via {'->'.join(path)} "
      f"(cost {cost}):")
# A derived fact's trace is the one its commit span carries (trace_of
# resolves base-fact injections; shortestPath is derived).
commits = [e for e in deployment.tracer.events
           if e.kind == "commit" and e.pred == "shortestPath"
           and e.args == (src, dst, path, cost)]
assert commits, "every committed fact leaves a commit span"
trace = commits[-1].trace
spans = [e for e in deployment.tracer.events if e.trace == trace]
shown = spans if len(spans) <= 16 else spans[:10] + spans[-6:]
for index, event in enumerate(shown):
    if len(spans) > 16 and index == 10:
        print(f"  ... {len(spans) - 16} spans elided ...")
    hop = f" {event.src}->{event.dst}" if event.dst else f" @{event.node}"
    print(f"  {event.ts:9.6f}s  {event.kind:<8}{hop}  "
          f"{event.pred}{event.args}")
print(f"  -> {len(spans)} spans on trace #{trace}")

deployment.save_trace(TRACE_PATH)
print(f"full run exported to {TRACE_PATH} "
      f"({len(deployment.tracer.events)} events; open in "
      f"chrome://tracing)\n")

# -- profiling: where the CPU time actually went -----------------------
print(deployment.profile().report())

# The registry agrees with the engines it watched: every strand the
# profiler timed fired at least once in the metrics registry.
firings = snapshot.rule_totals()
assert all(rule in firings for rule in deployment.profile().rule_totals())

"""Distance-vector routing in a handful of NDlog rules (Section 2.3).

"In previous work we argued that executing a shortest path distributed
Datalog query closely resembles the distributed computation of the
well-known path vector protocol" -- and distance vector [25] is the
same query minus the path vector, with a RIP-style hop bound instead of
a loop check.

This example also demonstrates the declarative-monitoring angle of the
paper's introduction: a one-rule "network debugging" query runs
alongside the protocol and flags nodes whose route table is incomplete.

Run:  python examples/distance_vector.py
"""

import repro
from repro.topology import build_overlay, transit_stub
from repro.topology.neighborhood import hop_distances

# Distance vector: route(@S, @D, @NextHop, Cost) with set semantics and
# a RIP-style 16-hop bound, plus a count<>-based monitoring rule.
SOURCE = """
DV1: route(@S, @D, @D, C) :- #link(@S, @D, C).
DV2: route(@S, @D, @Z, C) :- #link(@S, @Z, C1), route(@Z, @D, @Z2, C2),
     S != D, C := C1 + C2, C < 16.
DV3: bestCost(@S, @D, min<C>) :- route(@S, @D, @Z, C).
DV4: bestRoute(@S, @D, @Z, C) :- bestCost(@S, @D, C), route(@S, @D, @Z, C).
MON: routeCount(@S, count<D>) :- bestRoute(@S, @D, @Z, C).
Query: bestRoute(@S, @D, @Z, C).
"""

compiled = repro.compile(SOURCE, name="distance_vector",
                         passes=["aggsel", "localize"])
overlay = build_overlay(transit_stub(seed=33), n_nodes=20, degree=3, seed=33)

deployment = compiled.deploy(topology=overlay, link_loads={"link": "hopcount"})
deployment.advance()

# Every node should know a best route to every other node.
nodes = overlay.nodes
print(f"{len(nodes)}-node overlay, hop-count distance vector")
complete = True
for node in nodes:
    count_rows = deployment.rows("routeCount", node=node)
    (got,) = count_rows or {(node, 0)}
    if got[1] != len(nodes) - 1:
        complete = False
        print(f"  MONITOR: {node} has {got[1]} routes "
              f"(expected {len(nodes) - 1})")
print(f"route tables complete: {complete}")
assert complete

# Spot-check optimality and next-hop validity at one node.
source = nodes[0]
dist = hop_distances(overlay, source)
print(f"\nroute table at {source}:")
for s, d, nexthop, cost in sorted(deployment.rows("bestRoute", node=source))[:8]:
    assert cost == dist[d], (d, cost, dist[d])
    assert nexthop in overlay.neighbors(source) or nexthop == d
    print(f"  to {d:5s} via {nexthop:5s} cost {cost}")
print("  ... (all optimal; next hops are direct neighbours)")

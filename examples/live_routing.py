"""Shortest-path routing on the live execution target: real wall-clock
time, real UDP datagram sockets on localhost.

The paper's P2 deployment ran NDlog on actual networked hosts; the
reproduction's experiments replay on a virtual-time simulator.  This
example runs the same compiled program on *both* targets over the same
overlay and checks they reach the same fixpoint -- first from a cold
start, then again after a link failure injected while the live network
is running.  Every node is an asyncio task with its own UDP socket;
deltas cross the kernel's loopback path as real datagrams.

Run:  python examples/live_routing.py
"""

import asyncio
import time

import repro
from repro.ndlog import programs
from repro.topology import build_overlay, transit_stub

NODES = 10

# Aggregate selections (Section 5.1.1) prune non-optimal paths before
# they are shipped, and a 0.2ms/delta CPU model keeps the wall-clock
# run short -- the fixpoint is identical either way.
compiled = repro.compile(programs.shortest_path_dynamic(),
                         passes=["aggsel", "localize"])
overlay = build_overlay(transit_stub(seed=7), n_nodes=NODES, degree=3,
                        seed=7)
config = repro.RuntimeConfig(cpu_delay=2e-4)

# -- virtual-time reference: the fixpoint the live run must reach ------
reference = compiled.deploy(topology=overlay, config=config,
                            link_loads={"link": "hopcount"})
reference.advance()
expected = reference.query_rows()

# A link to fail in phase 2 (the same deletion is applied to both
# targets, so the fixpoints stay comparable).
failed_a, failed_b, failed_cost = next(
    (a, b, c) for a, b, c in overlay.link_rows("hopcount") if a < b
)
reference.delete(failed_a, "link", (failed_a, failed_b, failed_cost))
reference.delete(failed_b, "link", (failed_b, failed_a, failed_cost))
reference.advance()
expected_after_failure = reference.query_rows()


async def main() -> None:
    live = compiled.deploy(
        topology=overlay,
        config=config,
        link_loads={"link": "hopcount"},
        target="live",
        channels="udp",
    )
    tracker = live.watch("shortestPath")

    print(f"{NODES}-node overlay, live target over UDP on localhost")
    t0 = time.perf_counter()
    await live.start()
    assert await live.quiescent(timeout=60.0), "live network did not settle"
    elapsed = time.perf_counter() - t0

    fabric = live.cluster.fabric
    rows = live.query_rows()
    print(f"converged in {elapsed:.2f}s wall; "
          f"{fabric.datagrams_sent} datagrams sent, "
          f"{fabric.datagrams_received} received, "
          f"{len(tracker.completion_times())} results observed")
    assert rows == expected, "live fixpoint differs from the simulator's"
    print(f"fixpoint matches the virtual-time simulator "
          f"({len(rows)} shortestPath rows)")

    sample = sorted(rows)[0]
    print(f"sample route: {sample[0]} -> {sample[1]} "
          f"path {sample[2]} cost {sample[3]}")

    # -- phase 2: fail a link while the network is live ----------------
    print(f"\nfailing link {failed_a} <-> {failed_b} on the live network")
    live.delete(failed_a, "link", (failed_a, failed_b, failed_cost))
    live.delete(failed_b, "link", (failed_b, failed_a, failed_cost))
    t1 = time.perf_counter()
    assert await live.quiescent(timeout=60.0), "no quiescence after failure"
    print(f"re-converged in {time.perf_counter() - t1:.2f}s wall")
    assert live.query_rows() == expected_after_failure, (
        "post-failure fixpoint differs from the simulator's"
    )
    print("post-failure fixpoint matches the simulator "
          f"({len(expected_after_failure)} rows)")

    await live.stop()
    print("\nlive deployment stopped cleanly")


asyncio.run(main())

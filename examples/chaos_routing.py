"""Chaos-testing the dynamic shortest-path protocol (robustness demo).

The paper's correctness theorems assume per-link FIFO, loss-free
delivery (Theorem 4).  This example attacks those assumptions with a
seeded fault schedule -- message drop, duplication, reordering,
corruption, a partition that heals, and a crashed node -- and shows the
two halves of the chaos story:

* with ``reliable=True`` the ack/retransmit transport absorbs every
  message fault and the network converges to the *exact* fault-free
  fixpoint (checked by :class:`repro.chaos.ChaosMonitor`);
* the crashed-for-good node exhausts its neighbours' retry budgets,
  the convergence watchdog tears its links down through the
  link-update path, and the survivors route around the hole.

The schedule serializes to JSON: the exact scenario that broke a run
can ride along in a bug report and replay bit-for-bit.

Run:  python examples/chaos_routing.py
"""

import repro
from repro.chaos import ChaosMonitor, ChaosSchedule
from repro.ndlog import programs
from repro.runtime import RuntimeConfig
from repro.topology import build_overlay, transit_stub


def overlay8():
    return build_overlay(transit_stub(seed=5), n_nodes=8, degree=3, seed=5)


compiled = repro.compile(programs.shortest_path_dynamic(),
                         passes=["localize"], provenance=True)

# ----------------------------------------------------------------------
# Act 1: every message fault at once, survived exactly.
# ----------------------------------------------------------------------
schedule = (ChaosSchedule(seed=23)
            .drop(rate=0.1, start=0.0, end=2.0)
            .duplicate(rate=0.1, start=0.0, end=2.0)
            .reorder(rate=0.15, start=0.0, end=2.0)
            .corrupt(rate=0.05, start=0.0, end=1.5)
            .partition(["n1", "n4"], start=0.8, end=1.4)
            .clock_skew("n6", drift=1.02))
print("fault plan:", schedule.to_json()[:72], "...")

monitor = ChaosMonitor(compiled, overlay8())
deployment = compiled.deploy(topology=overlay8(), chaos=schedule,
                             reliable=True)
deployment.advance()
verdict = monitor.check(deployment)
stats = deployment.stats
print(f"chaos run: {verdict.summary()}")
print(f"  {verdict.stats['faults']} faults injected | "
      f"{stats.retransmits} retransmits, {stats.dup_dropped} dups "
      f"dropped, {stats.reorders_healed} reorders healed, "
      f"{stats.malformed_dropped} corrupt frames discarded")
assert verdict.ok

# ----------------------------------------------------------------------
# Act 2: crash a node for good; the watchdog routes around it.
# ----------------------------------------------------------------------
dead = "n3"
post_fault = overlay8()
post_fault.links = {pair: meta for pair, meta in post_fault.links.items()
                    if dead not in pair}
monitor = ChaosMonitor(compiled, post_fault)
deployment = compiled.deploy(
    topology=overlay8(),
    config=RuntimeConfig(reliable=True, retry_budget=4),
    chaos=ChaosSchedule(seed=7).crash(dead, at=0.5),
)
deployment.advance()
verdict = monitor.check(deployment, exclude_nodes=[dead])
print(f"watchdog run: {verdict.summary()}")
print(f"  {deployment.stats.links_torn_down} links torn down after "
      f"{dead} crashed; survivors converged on the post-fault topology")
assert verdict.ok
assert deployment.stats.links_torn_down > 0
print("ok")

"""One front door for the reproduction: a staged ``compile() ->
CompiledProgram -> run()/deploy()`` lifecycle.

The paper's system (P2) treats an NDlog program as a single artifact
that is parsed, rewritten, and then executed either centrally or
distributed.  This module exposes that lifecycle behind one surface:

* :func:`compile` parses (if needed), validates, and pushes the program
  through an explicit, introspectable **optimization-pass pipeline** --
  the rewrites of Sections 3-5 (aggregate selections, magic sets,
  predicate reordering, cost-based join ordering, the textual semi-naive
  rewrite, and rule localization) registered as named, ordered,
  toggleable passes in a :class:`PassRegistry`, with a before/after
  :class:`~repro.ndlog.ast.Program` snapshot recorded per pass;
* the returned :class:`CompiledProgram` is the compiled artifact:
  :meth:`~CompiledProgram.explain` pretty-prints the per-pass rule
  diffs and the final join plans, :meth:`~CompiledProgram.run`
  evaluates centrally on any of the four engines, and
  :meth:`~CompiledProgram.deploy` stands up a simulated declarative
  network, returning a :class:`Deployment` handle;
* :class:`Deployment` wraps :class:`~repro.runtime.cluster.Cluster`
  with the live-system verbs: ``inject`` / ``update`` / ``delete`` /
  ``watch`` / ``subscribe`` / ``advance`` / ``query_rows``.

Quickstart::

    import repro

    compiled = repro.compile(SOURCE)          # parse + validate + passes
    print(compiled.explain())                 # per-pass diffs, join plans
    result = compiled.run(engine="psn", facts={"link": LINKS})
    deployment = compiled.deploy(topology=overlay)
    deployment.advance()                      # run to quiescence
    deployment.query_rows()

Pass and engine failures raise the :mod:`repro.errors` taxonomy
(:class:`~repro.errors.PlanError` with the pass name attached,
:class:`~repro.errors.EvaluationError` with the engine name attached)
instead of leaking bare ``ValueError``/``KeyError`` from rewrite
internals.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from time import perf_counter
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.engine import bsn, naive, psn, seminaive
from repro.engine.database import Database
from repro.engine.fixpoint import EvalResult
from repro.engine.rules import (
    AssignStep,
    CompiledRule,
    LiteralStep,
    compile_plan,
)
from repro.errors import (
    EvaluationError,
    NDlogValidationError,
    NetworkError,
    PlanError,
    ReproError,
    StaticAnalysisError,
)
from repro.ndlog.ast import Literal, Program
from repro.ndlog.parser import parse
from repro.ndlog.pretty import (
    format_diagnostic,
    format_literal,
    format_materialization,
    format_program,
    format_rule,
    format_term,
)
from repro.ndlog.validator import ValidationReport
from repro.ndlog.validator import validate as validate_program
from repro.opt import aggsel as _aggsel
from repro.opt.costbased import StatsCatalog
from repro.planner.localization import localize as _localize
from repro.planner.magic import magic_rewrite as _magic_rewrite
from repro.planner.reorder import (
    greedy_join_order,
    reorder_body,
    reorder_program,
)
from repro.planner.seminaive_rewrite import seminaive_rewrite as _sn_rewrite

__all__ = [
    "Pass",
    "PassRegistry",
    "PassSnapshot",
    "DEFAULT_REGISTRY",
    "ENGINES",
    "compile",
    "CompiledProgram",
    "Deployment",
]

#: Engine name -> ``evaluate(program, db, **opts)`` entry point.  This
#: table is the single place engine selection is decided; everything
#: else (the :mod:`repro.core` shims, examples, experiments) routes
#: through :meth:`CompiledProgram.run`.
ENGINES: Dict[str, Callable[..., EvalResult]] = {
    "naive": naive.evaluate,
    "seminaive": seminaive.evaluate,
    "bsn": bsn.evaluate,
    "psn": psn.evaluate,
}


# ----------------------------------------------------------------------
# The pass registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Pass:
    """One named program rewrite in the compile pipeline.

    ``semantics_preserving`` means the rewrite preserves the fixpoint of
    the program's *query predicate* (magic sets restrict it to the
    query-matching tuples); passes without the property (the textual
    semi-naive rewrite renames every derived relation) are inspection
    devices and excluded from the pipeline-equivalence guarantees.
    ``default`` marks passes that run when :func:`compile` is called
    without an explicit ``passes`` list.
    """

    name: str
    fn: Callable[..., Program]
    description: str
    semantics_preserving: bool = True
    default: bool = False


class PassRegistry:
    """Named, ordered, toggleable program-rewrite passes.

    Registration order is the canonical pipeline order: it is the order
    the default pipeline runs in, and the order listed by
    :meth:`describe`.  Callers of :func:`compile` may enable any subset
    in any order.
    """

    def __init__(self, passes: Sequence[Pass] = ()):
        self._passes: Dict[str, Pass] = {}
        for pass_ in passes:
            self.register(pass_)

    def register(self, pass_: Pass, replace: bool = False) -> Pass:
        if pass_.name in self._passes and not replace:
            raise PlanError(f"pass {pass_.name!r} already registered")
        self._passes[pass_.name] = pass_
        return pass_

    def get(self, name: str) -> Pass:
        pass_ = self._passes.get(name)
        if pass_ is None:
            raise PlanError(
                f"unknown pass {name!r}; registered passes: "
                f"{', '.join(self.names())}"
            )
        return pass_

    def names(self) -> Tuple[str, ...]:
        return tuple(self._passes)

    def default_pipeline(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self._passes.values() if p.default)

    def semantics_preserving_names(self) -> Tuple[str, ...]:
        return tuple(
            p.name for p in self._passes.values() if p.semantics_preserving
        )

    def __contains__(self, name: str) -> bool:
        return name in self._passes

    def __iter__(self):
        return iter(self._passes.values())

    def resolve(
        self,
        passes: Optional[Sequence[Union[str, Pass, Tuple]]],
    ) -> List[Tuple[Pass, Dict[str, object]]]:
        """Normalize a user pass list into ``(Pass, options)`` pairs.

        ``None`` selects the default pipeline; entries may be pass
        names, ``(name, options)`` pairs, or :class:`Pass` objects.
        """
        if passes is None:
            passes = self.default_pipeline()
        resolved: List[Tuple[Pass, Dict[str, object]]] = []
        for entry in passes:
            options: Dict[str, object] = {}
            if isinstance(entry, tuple):
                if len(entry) != 2 or not isinstance(entry[1], dict):
                    raise PlanError(
                        f"tuple pass specifiers must be (name, options "
                        f"dict); got {entry!r}"
                    )
                entry, options = entry
            if isinstance(entry, Pass):
                pass_ = entry
            elif isinstance(entry, str):
                pass_ = self.get(entry)
            else:
                raise PlanError(f"bad pass specifier {entry!r}")
            resolved.append((pass_, dict(options)))
        return resolved

    def describe(self) -> List[Tuple[str, str, str, str]]:
        """Rows of ``(name, default, semantics, description)`` for docs
        and ``explain()`` headers."""
        return [
            (
                p.name,
                "on" if p.default else "off",
                "preserving" if p.semantics_preserving else "inspection",
                p.description,
            )
            for p in self._passes.values()
        ]


# ----------------------------------------------------------------------
# The passes (wrappers over the planner/opt modules)
# ----------------------------------------------------------------------
def _recursive_preds(program: Program) -> List[str]:
    """Predicates defined by at least one directly-recursive rule."""
    out = []
    for rule in program.rules:
        pred = rule.head.pred
        if pred in out:
            continue
        if any(lit.pred == pred for lit in rule.body_literals):
            out.append(pred)
    return sorted(out)


def _pass_magic(program: Program, query: Optional[Literal] = None) -> Program:
    """Magic-sets rewrite (Section 5.1.2) for the program's query (or an
    explicit ``query`` literal); degenerates to the identity when the
    query binds nothing."""
    return _magic_rewrite(program, query=query)


def _pass_aggsel(program: Program, specs=None) -> Program:
    """Aggregate selections (Section 5.1.1): prune recursion through
    group-optimal ``__best`` views of monotonic aggregates."""
    return _aggsel.rewrite(program, specs=specs)


def _pass_reorder(
    program: Program, pred: Optional[str] = None, to_left: bool = False
) -> Program:
    """Recursion-orientation flip (Section 5.1.2): move the recursive
    literal first (``to_left=True``, Top-Down) or last (Bottom-Up) in
    the bodies of ``pred`` (default: every directly-recursive
    predicate)."""
    preds = [pred] if pred is not None else _recursive_preds(program)
    for recursive_pred in preds:
        program = reorder_program(program, recursive_pred, to_left)
    return program


def _pass_costbased(
    program: Program,
    sizes: Optional[Dict[str, float]] = None,
    default_rows: float = StatsCatalog.DEFAULT_ROWS,
) -> Program:
    """Cost-based join ordering (Section 5.3): greedily reorder each
    rule body by bound-ness then estimated candidate count from a
    :class:`~repro.opt.costbased.StatsCatalog` (``sizes`` maps relation
    names to cardinality estimates)."""
    stats = StatsCatalog(sizes, default_rows=default_rows)
    rules = []
    for rule in program.rules:
        literals = list(rule.body_literals)
        if len(literals) > 1:
            order = greedy_join_order(
                list(enumerate(literals)), set(), stats=stats
            )
            rule = reorder_body(rule, order)
        rules.append(rule)
    return Program(
        rules=rules,
        facts=list(program.facts),
        materializations=dict(program.materializations),
        query=program.query,
        name=program.name,
    )


def _pass_seminaive(program: Program, recursive_preds=None) -> Program:
    """The textual semi-naive delta rewrite (Section 3.1); an inspection
    rewrite -- it renames derived relations, so it is not part of the
    semantics-preserving pipeline."""
    return _sn_rewrite(program, recursive_preds=recursive_preds)


def _pass_localize(program: Program) -> Program:
    """Rule localization (Algorithm 2): rewrite every link-restricted
    rule so each body executes at a single node, with communication only
    along links."""
    return _localize(program)


def default_registry() -> PassRegistry:
    """The stock registry wrapping the planner/opt rewrites.  The
    registration order is the canonical pipeline order."""
    return PassRegistry([
        Pass(
            "magic", _pass_magic,
            "magic-sets rewrite for a bound query (Section 5.1.2)",
            semantics_preserving=True, default=False,
        ),
        Pass(
            "aggsel", _pass_aggsel,
            "aggregate selections: prune via group-optimal views "
            "(Section 5.1.1)",
            semantics_preserving=True, default=True,
        ),
        Pass(
            "reorder", _pass_reorder,
            "flip recursion orientation (TD/BU, Section 5.1.2)",
            semantics_preserving=True, default=False,
        ),
        Pass(
            "costbased", _pass_costbased,
            "greedy selectivity-driven body reorder (Section 5.3)",
            semantics_preserving=True, default=False,
        ),
        Pass(
            "seminaive", _pass_seminaive,
            "textual semi-naive delta rewrite (Section 3.1, inspection)",
            semantics_preserving=False, default=False,
        ),
        Pass(
            "localize", _pass_localize,
            "rule localization for distributed execution (Algorithm 2)",
            semantics_preserving=True, default=False,
        ),
    ])


#: The registry :func:`compile` uses unless given another one.
DEFAULT_REGISTRY = default_registry()


def _apply_pass(
    pass_: Pass, program: Program, options: Dict[str, object]
) -> Program:
    """Run one pass with taxonomy-enforcing error wrapping: anything
    that escapes is a :class:`PlanError` carrying the pass name."""
    try:
        result = pass_.fn(program, **options)
    except PlanError as exc:
        if exc.pass_name is not None:
            raise
        # Re-wrap from the raw message so an already-rendered "[rule ...]"
        # prefix is not duplicated.
        raise PlanError(
            exc.raw_message, pass_name=pass_.name, rule=exc.rule
        ) from exc
    except ReproError as exc:
        raise PlanError(str(exc), pass_name=pass_.name) from exc
    except Exception as exc:  # bare ValueError/KeyError/TypeError etc.
        raise PlanError(
            f"{type(exc).__name__}: {exc}", pass_name=pass_.name
        ) from exc
    if not isinstance(result, Program):
        raise PlanError(
            f"pass returned {type(result).__name__}, not a Program",
            pass_name=pass_.name,
        )
    return result


# ----------------------------------------------------------------------
# Snapshots and the compiled artifact
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PassSnapshot:
    """Before/after record of one pass application."""

    name: str
    options: Dict[str, object]
    before: Program
    after: Program
    #: Wall seconds the pass took (``explain(timings=True)`` renders
    #: these; 0.0 on snapshots that predate the timing hook).
    elapsed: float = 0.0

    @property
    def changed(self) -> bool:
        return format_program(self.before) != format_program(self.after)

    def _rule_texts(self, program: Program) -> List[str]:
        return [format_rule(rule) for rule in program.rules]

    @property
    def removed_rules(self) -> List[str]:
        after = set(self._rule_texts(self.after))
        return [t for t in self._rule_texts(self.before) if t not in after]

    @property
    def added_rules(self) -> List[str]:
        before = set(self._rule_texts(self.before))
        return [t for t in self._rule_texts(self.after) if t not in before]

    @property
    def added_materializations(self) -> List[str]:
        before = {
            format_materialization(m)
            for m in self.before.materializations.values()
        }
        return [
            text
            for text in (
                format_materialization(m)
                for m in self.after.materializations.values()
            )
            if text not in before
        ]


def _describe_plan(plan) -> str:
    """One-line rendering of a compiled join plan's step chain."""
    parts: List[str] = []
    for step in plan.steps:
        if isinstance(step, LiteralStep):
            text = format_literal(step.literal)
            if step.positions:
                text += f" [probe {','.join(map(str, step.positions))}]"
            else:
                text += " [scan]"
            parts.append(text)
        elif isinstance(step, AssignStep):
            parts.append(f"{step.name} := {format_term(step.expr)}")
        else:
            parts.append(f"if {format_term(step.expr)}")
    return " -> ".join(parts) if parts else "(empty body)"


class CompiledProgram:
    """The artifact :func:`compile` returns: the final rewritten
    :class:`Program`, the original, the per-pass trace, and the staged
    execution verbs (:meth:`run` central, :meth:`deploy` distributed,
    :meth:`explain` introspection)."""

    def __init__(
        self,
        source: Program,
        program: Program,
        trace: Tuple[PassSnapshot, ...],
        report: Optional[ValidationReport] = None,
        registry: Optional[PassRegistry] = None,
        provenance: bool = False,
        lint: str = "warn",
    ):
        self.source = source
        self.program = program
        self.trace = tuple(trace)
        self.report = report
        self.registry = registry or DEFAULT_REGISTRY
        #: Capture rule-level derivation provenance when this artifact
        #: runs or deploys (``compile(..., provenance=True)``).
        self.provenance = provenance
        #: ndlint mode: ``"off"`` / ``"warn"`` / ``"error"``.
        self.lint = lint
        self._analysis_report = None

    # -- introspection --------------------------------------------------
    @property
    def name(self) -> str:
        return self.program.name or self.source.name or "program"

    @property
    def applied_passes(self) -> Tuple[str, ...]:
        return tuple(snap.name for snap in self.trace)

    @property
    def pass_specs(self) -> Tuple[Tuple[str, Dict[str, object]], ...]:
        return tuple((snap.name, dict(snap.options)) for snap in self.trace)

    def before_pass(self, name: str) -> Optional[Program]:
        """The program as it stood entering the first application of
        pass ``name`` (``None`` if the pass never ran)."""
        for snap in self.trace:
            if snap.name == name:
                return snap.before
        return None

    def after_pass(self, name: str) -> Optional[Program]:
        """The program right after the last application of ``name``."""
        result = None
        for snap in self.trace:
            if snap.name == name:
                result = snap.after
        return result

    @property
    def diagnostics(self):
        """The ndlint :class:`~repro.analysis.AnalysisReport` for the
        rewritten program, or ``None`` when compiled with
        ``lint="off"``.  Computed lazily on first access and cached, so
        ``lint="warn"`` (the default) costs nothing until someone looks.
        """
        if self.lint == "off":
            return None
        if self._analysis_report is None:
            from repro.analysis import analyze

            self._analysis_report = analyze(self.program, name=self.name)
        return self._analysis_report

    def __repr__(self) -> str:
        passes = ", ".join(self.applied_passes) or "none"
        return (
            f"CompiledProgram({self.name!r}, passes=[{passes}], "
            f"rules={len(self.program.rules)})"
        )

    def explain(self, join_plans: bool = True, timings: bool = False) -> str:
        """Human-readable compilation report: validation summary,
        per-pass rule diffs, the final rewritten program, and (by
        default) the compiled join plan of every rule.
        ``timings=True`` appends per-pass compile times (opt-in: the
        numbers vary run to run, so the default report stays
        deterministic for golden-output comparisons)."""
        lines: List[str] = []
        lines.append(f"== compiled program {self.name!r} ==")
        pipeline = ", ".join(self.applied_passes) or "(none)"
        lines.append(f"passes: {pipeline}")
        if self.report is not None:
            status = "ok" if self.report.ok else "FAILED"
            lines.append(
                f"validation: {status} "
                f"({len(self.report.local_rules)} local rules, "
                f"{len(self.report.link_restricted_rules)} link-restricted)"
            )
        for snap in self.trace:
            header = f"-- pass {snap.name}"
            if snap.options:
                opts = ", ".join(
                    f"{k}={v!r}" for k, v in sorted(snap.options.items())
                )
                header += f" ({opts})"
            if not snap.changed:
                lines.append(f"{header}: no change")
                continue
            lines.append(f"{header}:")
            for text in snap.removed_rules:
                lines.append(f"  - {text}")
            for text in snap.added_rules:
                lines.append(f"  + {text}")
            for text in snap.added_materializations:
                lines.append(f"  + {text}")
        lines.append("-- rewritten program --")
        lines.append(format_program(self.program).rstrip())
        analysis = self.diagnostics
        if analysis is not None:
            lines.append("-- diagnostics --")
            if not analysis.diagnostics:
                lines.append("ndlint: clean (no findings)")
            for diag in analysis:
                lines.append(format_diagnostic(diag))
        if join_plans:
            lines.append("-- join plans --")
            stats = StatsCatalog()
            for rule in self.program.rules:
                if not rule.body:
                    continue
                crule = CompiledRule(rule)
                plan = compile_plan(crule, stats=stats)
                label = crule.label or rule.head.pred
                suffix = ""
                if crule.aggregate is not None:
                    suffix = " (aggregate view)"
                elif crule.argmin is not None:
                    suffix = " (arg-extreme view)"
                lines.append(f"{label}{suffix}: {_describe_plan(plan)}")
        if timings:
            lines.append("-- pass timings --")
            total = 0.0
            for snap in self.trace:
                total += snap.elapsed
                lines.append(f"{snap.name}: {snap.elapsed * 1e3:.3f} ms")
            lines.append(f"total: {total * 1e3:.3f} ms")
        return "\n".join(lines)

    # -- derived artifacts ----------------------------------------------
    def extended(
        self,
        passes: Sequence[Union[str, Pass, Tuple]],
        registry: Optional[PassRegistry] = None,
    ) -> "CompiledProgram":
        """A new artifact with further passes applied on top of this
        one's result (the trace is carried forward and extended).
        ``registry`` resolves the new pass names (default: the registry
        this artifact was compiled with) and becomes the result's
        registry."""
        registry = registry or self.registry
        trace = list(self.trace)
        current = self.program
        for pass_, options in registry.resolve(passes):
            before = current
            started = perf_counter()
            current = _apply_pass(pass_, before, options)
            trace.append(PassSnapshot(pass_.name, dict(options),
                                      before, current,
                                      elapsed=perf_counter() - started))
        return CompiledProgram(
            source=self.source,
            program=current,
            trace=tuple(trace),
            report=self.report,
            registry=registry,
            provenance=self.provenance,
            lint=self.lint,
        )

    def localized(self) -> "CompiledProgram":
        """This artifact with rule localization guaranteed to have run
        (the deployable form); a no-op if ``localize`` already ran."""
        if "localize" in self.applied_passes:
            return self
        return self.extended(["localize"])

    # -- execution ------------------------------------------------------
    def run(
        self,
        engine: str = "psn",
        facts: Optional[Dict[str, Iterable[Tuple]]] = None,
        db: Optional[Database] = None,
        provenance: Optional[bool] = None,
        **engine_opts,
    ) -> EvalResult:
        """Centralized evaluation to fixpoint.

        ``engine`` is one of ``naive`` / ``seminaive`` / ``bsn`` /
        ``psn``; ``facts`` maps relation names to rows loaded before
        evaluation; ``engine_opts`` pass through to the engine entry
        point (``use_plans``, ``batch_size``, ``max_steps``, ...).

        ``provenance`` overrides the artifact's compile-time flag for
        this run (``True``/``False``, or a pre-built
        :class:`~repro.provenance.store.ProvenanceRecorder` to share a
        store across runs); when capture is on, the result's
        :meth:`~repro.engine.fixpoint.EvalResult.why` walks the
        recorded derivation graph.
        """
        evaluate = ENGINES.get(engine)
        if evaluate is None:
            raise PlanError(
                f"unknown engine {engine!r}; pick from {sorted(ENGINES)}"
            )
        if db is None:
            db = Database.for_program(self.program)
        for pred, rows in (facts or {}).items():
            db.load_facts(pred, rows)
        if provenance is None:
            provenance = self.provenance
        if provenance and "provenance" not in engine_opts:
            from repro.provenance import ProvenanceStore

            if isinstance(provenance, bool):
                provenance = ProvenanceStore().recorder()
            engine_opts["provenance"] = provenance
        try:
            return evaluate(self.program, db, **engine_opts)
        except ReproError:
            raise
        except Exception as exc:  # taxonomy guarantee at the facade
            raise EvaluationError(
                f"{type(exc).__name__}: {exc}", engine=engine
            ) from exc

    def deploy(
        self,
        topology=None,
        config=None,
        link_loads: Optional[Dict[str, str]] = None,
        n_nodes: int = 100,
        degree: int = 4,
        seed: int = 1,
        metric: str = "latency",
        target: str = "sim",
        channels: str = "inproc",
        host: str = "127.0.0.1",
        chaos=None,
        reliable: bool = False,
        metrics: bool = False,
        trace: bool = False,
        profile: bool = False,
    ) -> "Deployment":
        """Stand up the program as a distributed declarative network.

        ``topology`` is an :class:`~repro.topology.overlay.Overlay`
        (default: a transit-stub overlay built from ``n_nodes`` /
        ``degree`` / ``seed``); ``config`` a
        :class:`~repro.runtime.config.RuntimeConfig`; ``link_loads``
        maps link relations to overlay metrics (default
        ``{"link": metric}``).  Localization is applied automatically
        if it has not run yet.

        ``target`` selects the execution substrate: ``"sim"`` (the
        default) returns a :class:`Deployment` over the deterministic
        virtual-time simulator (the network is *not* run; call
        :meth:`Deployment.advance`); ``"live"`` returns a
        :class:`~repro.runtime.live.LiveDeployment` that runs each node
        as an asyncio task on wall-clock time, exchanging deltas over
        ``channels`` -- in-process asyncio queues (``"inproc"``) or
        real UDP datagram sockets on ``host`` (``"udp"``).  Drive it
        with ``await start()`` / ``await quiescent()`` / ``await
        stop()``, or synchronously with ``converge()``.

        ``chaos`` attaches a fault-injection plan
        (:class:`repro.chaos.ChaosSchedule`) and ``reliable=True`` ships
        deltas over the ack/retransmit transport -- both are shorthand
        for the corresponding :class:`RuntimeConfig` fields and work on
        every target.

        Observability (:mod:`repro.obs`, also config shorthand, any
        target): ``metrics=True`` collects the per-(node, rule,
        relation) registry behind :meth:`Deployment.metrics` /
        ``metrics_text``; ``trace=True`` records causally-linked
        delta-propagation spans exported by
        :meth:`Deployment.save_trace`; ``profile=True`` accumulates
        per-rule/per-strand CPU time for :meth:`Deployment.profile`.
        """
        from repro.runtime.cluster import Cluster
        from repro.runtime.config import RuntimeConfig
        from repro.topology import build_overlay, transit_stub

        if topology is None:
            topology = build_overlay(
                transit_stub(seed=seed), n_nodes=n_nodes, degree=degree,
                seed=seed,
            )
        if link_loads is None:
            link_loads = {"link": metric}
        if chaos is not None or reliable or metrics or trace or profile:
            base = config if config is not None else RuntimeConfig()
            config = dataclasses.replace(
                base,
                chaos=chaos if chaos is not None else base.chaos,
                reliable=reliable or base.reliable,
                metrics=metrics or base.metrics,
                trace=trace or base.trace,
                profile=profile or base.profile,
            )
        compiled = self.localized()
        if target == "live":
            from repro.runtime.live import LiveDeployment

            return LiveDeployment(
                compiled, topology, config=config, link_loads=link_loads,
                channels=channels, host=host,
            )
        if target != "sim":
            raise PlanError(
                f"unknown deploy target {target!r}; pick 'sim' or 'live'"
            )
        cluster = Cluster(
            topology, compiled, config or RuntimeConfig(),
            link_loads=link_loads,
        )
        return Deployment(cluster, compiled)


# ----------------------------------------------------------------------
# compile()
# ----------------------------------------------------------------------
def _is_location_free(program: Program) -> bool:
    """True when no literal anywhere carries an ``@`` location marker --
    i.e. the program is plain Datalog, not NDlog, and the distributed
    validation constraints (Definitions 1-6) do not apply to it."""
    def marked(literal: Literal) -> bool:
        return any(getattr(term, "location", False) for term in literal.args)

    literals: List[Literal] = []
    for rule in program.rules:
        literals.append(rule.head)
        literals.extend(rule.body_literals)
    literals.extend(program.facts)
    if program.query is not None:
        literals.append(program.query)
    return not any(marked(literal) for literal in literals)


def compile(
    source_or_program: Union[str, Program, CompiledProgram],
    passes: Optional[Sequence[Union[str, Pass, Tuple]]] = None,
    *,
    strict: bool = True,
    validate: bool = True,
    strict_address_types: bool = False,
    name: Optional[str] = None,
    registry: Optional[PassRegistry] = None,
    provenance: Optional[bool] = None,
    lint: Optional[str] = None,
) -> CompiledProgram:
    """Compile NDlog source (or a parsed :class:`Program`) into a
    :class:`CompiledProgram`.

    ``passes`` selects and orders the optimization passes by name (see
    :data:`DEFAULT_REGISTRY`); entries may be ``(name, options)`` pairs,
    e.g. ``("reorder", {"pred": "path", "to_left": True})``.  ``None``
    runs the registry's default pipeline; ``[]`` runs no passes.
    ``strict=True`` raises :class:`NDlogValidationError` when validation
    fails; ``strict=False`` records the report on the artifact and
    continues.  ``validate=False`` skips validation entirely.  Programs
    with no ``@`` location specifiers anywhere are recognized as plain
    Datalog and validated without the NDlog distributed constraints
    (rule safety, arities, aggregate placement and ground facts still
    apply; deploying one still fails in ``localize``).

    ``provenance=True`` arms derivation capture on the artifact: every
    subsequent :meth:`CompiledProgram.run` / ``deploy`` records
    rule-level provenance queryable through ``why`` / ``why_not`` and
    auditable against the derivation counts (see
    :mod:`repro.provenance`).  Off by default; disabled runs pay
    nothing.  When re-compiling a :class:`CompiledProgram`, ``None``
    keeps the artifact's flag and an explicit ``True``/``False``
    produces a *derived* artifact with the flag set (the input artifact
    is never mutated).

    ``lint`` selects the ndlint mode (see :mod:`repro.analysis`):
    ``"warn"`` (the default) attaches a lazily computed diagnostic
    report to the artifact (``.diagnostics``, also rendered by
    :meth:`CompiledProgram.explain`); ``"error"`` runs the analyses
    eagerly and raises :class:`StaticAnalysisError` on any finding at
    warning severity or above; ``"off"`` disables analysis.

    A :class:`CompiledProgram` input composes instead of restarting:
    explicit ``passes`` are appended to its existing trace (see
    :meth:`CompiledProgram.extended`, honouring ``registry``) and
    ``passes=None`` returns the artifact unchanged -- the default
    pipeline never runs twice.  The validation arguments do not apply
    to an already-compiled artifact (its source was validated when it
    was first compiled).
    """
    if isinstance(source_or_program, CompiledProgram):
        # Re-compiling an artifact composes with what already ran: the
        # trace is carried forward and only the explicitly requested
        # passes are appended (running the *default* pipeline again on
        # an already-rewritten program would double-apply rewrites).
        # An explicit provenance flag yields a derived artifact; the
        # input is never mutated.
        artifact = source_or_program
        same_provenance = provenance is None or provenance == artifact.provenance
        same_lint = lint is None or lint == artifact.lint
        if passes is None and registry is None and same_provenance \
                and same_lint:
            return artifact
        derived = artifact.extended(passes or [], registry=registry)
        if not same_provenance:
            derived.provenance = provenance
        if not same_lint:
            derived.lint = _check_lint_mode(lint)
        _enforce_lint(derived)
        return derived
    registry = registry or DEFAULT_REGISTRY
    lint = _check_lint_mode("warn" if lint is None else lint)
    if isinstance(source_or_program, Program):
        program = source_or_program
    elif isinstance(source_or_program, str):
        program = parse(source_or_program, name=name)
    else:
        raise PlanError(
            f"cannot compile {type(source_or_program).__name__}; expected "
            f"NDlog source, a Program, or a CompiledProgram"
        )

    report: Optional[ValidationReport] = None
    if validate:
        # Location-free programs are plain Datalog: the distributed
        # constraints (Definitions 1-6) do not apply, but rule safety,
        # arities, aggregate placement and ground facts still do.
        report = validate_program(
            program,
            strict_address_types=strict_address_types,
            distributed=not _is_location_free(program),
        )
        if strict and not report.ok:
            raise NDlogValidationError(
                f"program {program.name or '<anonymous>'!r} failed "
                f"validation: " + "; ".join(report.errors)
                + " (pass validate=False to compile anyway)"
            )

    trace: List[PassSnapshot] = []
    current = program
    for pass_, options in registry.resolve(passes):
        before = current
        started = perf_counter()
        current = _apply_pass(pass_, before, options)
        trace.append(PassSnapshot(pass_.name, dict(options), before, current,
                                  elapsed=perf_counter() - started))

    artifact = CompiledProgram(
        source=program,
        program=current,
        trace=tuple(trace),
        report=report,
        registry=registry,
        provenance=bool(provenance),
        lint=lint,
    )
    _enforce_lint(artifact)
    return artifact


_LINT_MODES = ("off", "warn", "error")


def _check_lint_mode(lint: str) -> str:
    if lint not in _LINT_MODES:
        raise PlanError(
            f"unknown lint mode {lint!r}; pick from {_LINT_MODES}"
        )
    return lint


def _enforce_lint(artifact: CompiledProgram) -> None:
    """``lint="error"``: run the analyses eagerly and refuse to hand
    back an artifact with warning-or-worse findings."""
    if artifact.lint != "error":
        return
    analysis = artifact.diagnostics
    offending = analysis.at_least("warning")
    if not offending:
        return
    quoted = "; ".join(
        f"{d.code} {d.message}" for d in offending[:3]
    )
    more = len(offending) - 3
    if more > 0:
        quoted += f" (+{more} more)"
    # Name the program the caller handed in, not the pass-renamed
    # rewrite ("aggsel" for an anonymous source).
    name = artifact.source.name or "<anonymous>"
    raise StaticAnalysisError(
        f"program {name!r} failed static analysis with "
        f"{len(offending)} finding(s) at warning severity or above: "
        f"{quoted} (compile with lint=\"warn\" to inspect the full "
        f"report on .diagnostics)",
        report=analysis,
    )


# ----------------------------------------------------------------------
# The deployment handle
# ----------------------------------------------------------------------
class _Subscription:
    """Adapter routing cluster commit observations to a callback."""

    __slots__ = ("pred", "callback")

    def __init__(self, pred: Optional[str], callback: Callable):
        self.pred = pred
        self.callback = callback

    def on_commit(self, now: float, fact, weight: int) -> None:
        """``weight`` is the weighted visibility transition: ``+k``
        derivations became visible (or refreshed), ``-k`` left
        visibility.  Sign-only callbacks keep working (the historical
        deltas are the ``+-1`` special case)."""
        if self.pred is None or fact.pred == self.pred:
            self.callback(now, fact, weight)


class Deployment:
    """A live (simulated) declarative network -- one object from source
    text to running distributed system.

    Thin, stable facade over :class:`~repro.runtime.cluster.Cluster`:
    data-plane verbs (``inject`` / ``update`` / ``delete``), observation
    (``watch`` / ``subscribe`` / ``rows`` / ``query_rows``), and
    lifecycle (``advance`` / ``quiescent``).  The underlying cluster
    stays reachable as ``.cluster`` for simulator-level control.
    """

    def __init__(self, cluster, compiled: Optional[CompiledProgram] = None):
        self.cluster = cluster
        self.compiled = compiled if compiled is not None \
            else getattr(cluster, "compiled", None)

    # -- lifecycle ------------------------------------------------------
    def advance(self, until: Optional[float] = None) -> float:
        """Run the network until quiescence (or virtual time ``until``);
        returns the final virtual time."""
        return self.cluster.run(until=until)

    def run(self, until: Optional[float] = None) -> float:
        """Alias of :meth:`advance`."""
        return self.advance(until=until)

    def stop(self) -> None:
        """Tear down the deployment.  The simulator holds no external
        resources, so this is a no-op -- it exists so target-agnostic
        scripts can always call ``stop()`` (the live target's version
        closes sockets and cancels node tasks)."""

    @property
    def quiescent(self) -> bool:
        return self.cluster.quiescent

    @property
    def now(self) -> float:
        return self.cluster.sim.now

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at virtual ``time`` (workload injection)."""
        self.cluster.sim.at(time, fn)

    # -- data plane -----------------------------------------------------
    def _node(self, node: str):
        runtime = self.cluster.nodes.get(node)
        if runtime is None:
            raise NetworkError(
                f"unknown node {node!r}; this deployment has "
                f"{len(self.cluster.nodes)} nodes"
            )
        return runtime

    def inject(self, node: str, pred: str, args: Tuple) -> None:
        """Insert a base tuple at ``node`` (e.g. a magic seed fact)."""
        self._node(node).insert(pred, tuple(args))

    def update(self, node: str, pred: str, args: Tuple) -> None:
        """Update a base tuple at ``node``: a primary-key match commits
        as a deletion of the old row followed by this insertion."""
        self._node(node).update(pred, tuple(args))

    def delete(self, node: str, pred: str, args: Tuple) -> None:
        """Delete a base tuple at ``node`` outright."""
        self._node(node).delete(pred, tuple(args))

    # -- observation ----------------------------------------------------
    def watch(self, pred: str):
        """Track completion times for ``pred``; returns the
        :class:`~repro.net.stats.ResultTracker`."""
        return self.cluster.watch(pred)

    def subscribe(
        self, pred: Optional[str], callback: Callable
    ) -> Callable[[], None]:
        """Call ``callback(time, fact, weight)`` on every weighted
        visibility transition of ``pred`` anywhere in the network
        (``pred=None`` observes every relation): ``+k`` derivations
        became visible, ``-k`` left.  Returns an unsubscribe
        callable."""
        subscription = _Subscription(pred, callback)
        self.cluster.trackers.append(subscription)

        def unsubscribe() -> None:
            if subscription in self.cluster.trackers:
                self.cluster.trackers.remove(subscription)

        return unsubscribe

    def rows(self, pred: str, node: Optional[str] = None) -> frozenset:
        if node is not None:
            return frozenset(self._node(node).db.table(pred).rows())
        return self.cluster.rows(pred)

    def query_rows(self) -> frozenset:
        """Union of the query predicate's rows across all nodes."""
        return self.cluster.query_rows()

    # -- provenance -----------------------------------------------------
    @property
    def provenance(self):
        """The deployment's shared
        :class:`~repro.provenance.store.ProvenanceStore` (``None`` when
        capture is off)."""
        return self.cluster.provenance

    def why(self, pred: str, args: Tuple, max_depth: int = 128):
        """Derivation tree for ``pred(args)`` anywhere in the network:
        the lineage crosses nodes through the recorded firings (remote
        deltas piggyback their derivation ids on the wire).  Requires
        ``compile(..., provenance=True)``; returns ``None`` when the
        store holds no live support (then ask :meth:`why_not`)."""
        return self.cluster.why(pred, args, max_depth=max_depth)

    def why_not(self, pred: str, args: Tuple, depth: int = 2):
        """Failed-body analysis for the absent ``pred(args)`` against
        the pre-localization rule set and the union table state across
        nodes (``None`` entries are wildcards).  Works with or without
        provenance capture."""
        return self.cluster.why_not(pred, args, depth=depth)

    def audit(self, strict: Optional[bool] = None,
              exclude_nodes=()):
        """Cross-check every node's derivation counts against the
        provenance graph (see :func:`repro.provenance.audit_cluster`);
        call at quiescence."""
        return self.cluster.audit(strict=strict,
                                  exclude_nodes=exclude_nodes)

    # -- observability --------------------------------------------------
    @property
    def tracer(self):
        """The shared delta :class:`~repro.obs.Tracer` (``None`` when
        tracing is off)."""
        return self.cluster.tracer

    def metrics(self):
        """Point-in-time :class:`~repro.obs.MetricsSnapshot` of every
        counter the deployment exposes.  Requires
        ``deploy(..., metrics=True)``."""
        return self.cluster.metrics_snapshot()

    def metrics_text(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        return self.cluster.metrics_text()

    def refresh_stats(self) -> None:
        """Feed live table sizes and commit churn into each node's
        :class:`~repro.opt.costbased.StatsCatalog`."""
        self.cluster.refresh_stats()

    def profile(self):
        """Merged per-(rule, strand) CPU :class:`~repro.obs.Profiler`
        across nodes.  Requires ``deploy(..., profile=True)``."""
        return self.cluster.profile_report()

    def save_trace(self, path: str) -> None:
        """Export recorded delta-propagation spans as Chrome
        trace-event JSON (``chrome://tracing`` / Perfetto).  Requires
        ``deploy(..., trace=True)``."""
        self.cluster.save_trace(path)

    # -- surfaces -------------------------------------------------------
    @property
    def overlay(self):
        return self.cluster.overlay

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def stats(self):
        return self.cluster.stats

    @property
    def nodes(self):
        return self.cluster.nodes

    @property
    def config(self):
        return self.cluster.config

    @property
    def program(self) -> Program:
        """The deployed (localized) program."""
        return self.cluster.program

    def explain(self, join_plans: bool = True, timings: bool = False) -> str:
        if self.compiled is None:
            return format_program(self.cluster.program)
        return self.compiled.explain(join_plans=join_plans, timings=timings)

    def __repr__(self) -> str:
        return (
            f"Deployment({self.cluster.program.name!r}, "
            f"nodes={len(self.cluster.nodes)}, "
            f"quiescent={self.quiescent})"
        )

"""Shared helpers for the ndlint analyses.

The analyses must never crash -- they run over arbitrary (possibly
invalid) programs, including the random ones the property tests
generate -- so everything here is tolerant: arities are collected
per-occurrence instead of through :meth:`Program.predicates` (which
raises on conflicts), and rule names fall back to the head text when a
rule carries no label.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.ndlog.ast import Assignment, Literal, Program, Rule
from repro.ndlog.pretty import format_literal, format_rule


def rule_name(rule: Rule) -> str:
    """The anchor a diagnostic names a rule by: its label, or its head
    text when unlabeled."""
    return rule.label or format_literal(rule.head)


def rule_span(rule: Rule) -> str:
    """The rule's source text (the diagnostic's span)."""
    return format_rule(rule)


def all_literals(program: Program) -> Iterable[Literal]:
    """Every literal occurrence: heads, bodies, facts, and the query."""
    for rule in program.rules:
        yield rule.head
        yield from rule.body_literals
    yield from program.facts
    if program.query is not None:
        yield program.query


def program_is_located(program: Program) -> bool:
    """True when any literal carries an ``@`` location marker -- i.e.
    the program is NDlog proper, not plain Datalog, and position 0 of
    every predicate is an address column."""
    for literal in all_literals(program):
        if any(getattr(term, "location", False) for term in literal.args):
            return True
    return False


def arity_map(program: Program) -> Dict[str, int]:
    """Maximum observed arity per predicate (tolerant of conflicts --
    the validator owns arity *checking*)."""
    arities: Dict[str, int] = {}
    for literal in all_literals(program):
        seen = arities.get(literal.pred, 0)
        if literal.arity > seen:
            arities[literal.pred] = literal.arity
        else:
            arities.setdefault(literal.pred, literal.arity)
    return arities


def edb_predicates(program: Program) -> Set[str]:
    """Predicates never derived by a rule with a body: the base tables
    the deployment loads facts into."""
    derived = {rule.head.pred for rule in program.rules if rule.body}
    preds: Set[str] = set()
    for literal in all_literals(program):
        preds.add(literal.pred)
    return preds - derived


def assignments_of(rule: Rule) -> Dict[str, object]:
    """Map each assigned variable to its expression (last wins)."""
    out: Dict[str, object] = {}
    for item in rule.body:
        if isinstance(item, Assignment):
            out[item.var.name] = item.expr
    return out


def source_variables(name: str, assigned: Dict[str, object],
                     _seen: Set[str] = None) -> Set[str]:
    """The body variables a variable's value transitively derives from,
    following assignment chains (``C := C1 + C2`` makes ``C`` derive
    from ``C1`` and ``C2``)."""
    seen = _seen if _seen is not None else set()
    if name in seen:
        return set()
    seen.add(name)
    expr = assigned.get(name)
    if expr is None:
        return {name}
    out: Set[str] = set()
    for sub in expr.variables():
        out |= source_variables(sub, assigned, seen)
    return out


def rules_defining(program: Program, pred: str) -> List[Rule]:
    return [r for r in program.rules if r.body and r.head.pred == pred]

"""The ndlint driver: run the analyses over a program and collect a
:class:`~repro.analysis.diagnostics.AnalysisReport`.

The driver accepts a :class:`~repro.ndlog.ast.Program`, a compiled
artifact (anything with a ``.program`` attribute, e.g.
:class:`repro.api.CompiledProgram`), or NDlog source text.  Individual
analyses are registered in :data:`ANALYSES`; a crash inside one is
caught and converted to an **ND001** error diagnostic -- the analyzer
itself must never take the compiler down.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis import comm, deadcode, monotonic, termination, typeinfer
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.ndlog.ast import Program

#: Registered analyses, in run order.  Each entry maps the analysis
#: name to a callable ``analyze(program) -> (diagnostics, summary)``.
ANALYSES: Dict[str, Callable] = {
    typeinfer.ANALYSIS: typeinfer.analyze,
    termination.ANALYSIS: termination.analyze,
    monotonic.ANALYSIS: monotonic.analyze,
    comm.ANALYSIS: comm.analyze,
    deadcode.ANALYSIS: deadcode.analyze,
}


def _as_program(target) -> Program:
    """Accept a Program, a compiled artifact, or NDlog source text."""
    program = getattr(target, "program", target)
    if isinstance(program, Program):
        return program
    if isinstance(target, str):
        from repro.ndlog.parser import parse

        return parse(target)
    raise TypeError(
        f"cannot analyze {type(target).__name__}: expected a Program, "
        f"a compiled artifact with a .program, or NDlog source text"
    )


def analyze(target, passes: Optional[Sequence[str]] = None,
            name: str = "") -> AnalysisReport:
    """Run the registered analyses over ``target``.

    ``passes`` selects a subset by analysis name (default: all, in
    registration order); unknown names raise ``ValueError`` so typos in
    a CLI invocation fail loudly rather than silently skipping checks.
    """
    program = _as_program(target)
    selected: List[Tuple[str, Callable]]
    if passes is None:
        selected = list(ANALYSES.items())
    else:
        unknown = [p for p in passes if p not in ANALYSES]
        if unknown:
            raise ValueError(
                f"unknown analysis pass(es) {unknown}; "
                f"available: {', '.join(ANALYSES)}"
            )
        selected = [(p, ANALYSES[p]) for p in passes]

    report = AnalysisReport(
        program_name=name or (program.name or ""),
    )
    for analysis_name, run in selected:
        report.analyses.append(analysis_name)
        try:
            diagnostics, summary = run(program)
        except Exception as exc:  # pragma: no cover - analyzer bug guard
            report.extend([Diagnostic(
                code="ND001", severity="error", analysis=analysis_name,
                message=(
                    f"internal: the {analysis_name!r} analysis crashed "
                    f"({type(exc).__name__}: {exc}); please report this "
                    f"-- the program itself may still be fine"
                ),
            )])
            continue
        report.extend(diagnostics)
        report.summaries[analysis_name] = summary
    return report.finish()

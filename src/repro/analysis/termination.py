"""Analysis 2: termination / divergence detection (ND2xx).

The count-to-infinity shape: a rule inside a recursive component whose
head *grows* a value through a function symbol -- path concatenation
(``f_concatPath`` / ``f_append`` / ``f_prepend``) or arithmetic
(``C := C1 + C2``) fed by a variable bound from an in-component body
literal -- derives an infinite ascending chain unless something bounds
the recursion.  Three bounds are recognized, matching the ways the
paper's own programs terminate:

* a **comparison against a constant** on a variable in the growth
  chain (``C < 16``, the RIP-style hop bound of the distance-vector
  program);
* a **cycle guard**: an ``f_member`` test over a path in the growth
  chain (``f_member(P2, S) == 0`` -- simple paths over a finite node
  set are finite);
* **aggregate-selection pruning**: every in-component literal the rule
  reads is a group-optimal view (an ``argmin``-annotated or monotonic
  min/max aggregate rule), the Section 5.1.1 device that makes the
  Figure 1 program terminate on cyclic graphs.

Growth with no bound is **ND201** (warning).  Bounded growth is
reported as **ND202** (info) naming the bound, so a reader can see the
analysis engaged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.common import (
    assignments_of,
    rule_name,
    rule_span,
    rules_defining,
    source_variables,
)
from repro.analysis.diagnostics import Diagnostic
from repro.engine.stratify import dependency_graph, tarjan_sccs
from repro.ndlog.ast import Condition, Program, Rule
from repro.ndlog.pretty import format_term
from repro.ndlog.terms import BinOp, FuncCall, Term

ANALYSIS = "termination"

#: Function symbols that enlarge a constructed value.
GROWTH_FUNCS = frozenset(("f_concatPath", "f_append", "f_prepend"))
#: Arithmetic operators that can drive a value monotonically upward
#: (division and modulo cannot build an unbounded ascending chain from
#: bounded inputs the way repeated addition along a cycle can).
GROWTH_OPS = frozenset(("+", "-", "*"))
#: Guard functions whose presence bounds recursion depth (membership
#: tests over the grown path keep paths simple, hence finite).
GUARD_FUNCS = frozenset(("f_member",))
_BOUND_OPS = frozenset(("<", "<=", ">", ">="))


def _recursive_components(rules) -> List[Set[str]]:
    graph = dependency_graph(rules)
    out = []
    for component in tarjan_sccs(graph):
        if len(component) > 1:
            out.append(set(component))
        else:
            pred = component[0]
            if pred in graph.get(pred, ()):
                out.append({pred})
    return out


def _growth_symbols(expr: Term) -> List[str]:
    """The growth-capable function symbols / operators in ``expr``."""
    out: List[str] = []
    stack = [expr]
    while stack:
        term = stack.pop()
        if isinstance(term, FuncCall):
            if term.name in GROWTH_FUNCS:
                out.append(term.name)
            stack.extend(term.args)
        elif isinstance(term, BinOp):
            if term.op in GROWTH_OPS:
                out.append(f"'{term.op}'")
            stack.extend((term.left, term.right))
        else:
            for attr in ("args", "operand"):
                child = getattr(term, attr, None)
                if isinstance(child, tuple):
                    stack.extend(child)
                elif isinstance(child, Term):
                    stack.append(child)
    return out


def _guard_calls(expr: Term) -> List[FuncCall]:
    out: List[FuncCall] = []
    stack = [expr]
    while stack:
        term = stack.pop()
        if isinstance(term, FuncCall) and term.name in GUARD_FUNCS:
            out.append(term)
        for attr in ("args", "left", "right", "operand"):
            child = getattr(term, attr, None)
            if isinstance(child, tuple):
                stack.extend(child)
            elif isinstance(child, Term):
                stack.append(child)
    return out


def _pruned_view(program: Program, pred: str) -> bool:
    """True when every rule deriving ``pred`` is a group-optimal view
    (argmin annotation or monotonic min/max head aggregate)."""
    defining = rules_defining(program, pred)
    if not defining:
        return False
    for rule in defining:
        if rule.argmin is not None:
            continue
        aggregate = rule.head_aggregate()
        if aggregate is not None and aggregate[1].func in ("min", "max"):
            continue
        return False
    return True


def _rule_growth(rule: Rule, component: Set[str]):
    """Detect value growth in ``rule`` relative to ``component``.

    Returns ``(growing, chain_vars)`` where ``growing`` maps head
    positions to the growth symbols involved and ``chain_vars`` is the
    set of variables participating in any growth chain (for bound
    matching).
    """
    assigned = assignments_of(rule)
    recursive_vars: Set[str] = set()
    for literal in rule.body_literals:
        if literal.pred in component:
            recursive_vars |= literal.variables()

    growing: Dict[int, List[str]] = {}
    chain_vars: Set[str] = set()
    for position, arg in enumerate(rule.head.args):
        # Growth written directly in the head argument expression.
        direct = _growth_symbols(arg)
        if direct:
            sources: Set[str] = set()
            for name in arg.variables():
                sources |= source_variables(name, assigned)
            if sources & recursive_vars:
                growing.setdefault(position, []).extend(direct)
                chain_vars |= sources
        # Growth routed through body assignments (the common shape).
        for name in arg.variables():
            expr = assigned.get(name)
            if expr is None:
                continue
            symbols = _growth_symbols(expr)
            if not symbols:
                continue
            sources = source_variables(name, assigned)
            if sources & recursive_vars:
                growing.setdefault(position, []).extend(symbols)
                chain_vars |= sources | {name}
    return growing, chain_vars, recursive_vars


def _find_bound(rule: Rule, program: Program, component: Set[str],
                chain_vars: Set[str],
                recursive_vars: Set[str]) -> Optional[str]:
    """The reason this rule's recursion is bounded, or ``None``."""
    assigned = assignments_of(rule)
    watched = chain_vars | recursive_vars

    for item in rule.body:
        if not isinstance(item, Condition):
            continue
        expr = item.expr
        # Cycle guard: membership test over a watched variable.
        for call in _guard_calls(expr):
            call_sources: Set[str] = set()
            for name in call.variables():
                call_sources |= source_variables(name, assigned)
            if call_sources & watched:
                return f"cycle guard {call.name}(...) in the body"
        # Constant comparison against a watched variable.
        if isinstance(expr, BinOp) and expr.op in _BOUND_OPS:
            sides = (expr.left, expr.right)
            for this, other in (sides, sides[::-1]):
                if other.variables():
                    continue
                this_sources: Set[str] = set()
                for name in this.variables():
                    this_sources |= source_variables(name, assigned)
                if this_sources & watched:
                    return f"bounding condition {format_term(expr)}"

    in_component = [lit for lit in rule.body_literals
                    if lit.pred in component]
    if in_component and all(
        _pruned_view(program, lit.pred) for lit in in_component
    ):
        preds = ", ".join(sorted({lit.pred for lit in in_component}))
        return f"aggregate-selection pruned view(s) {preds}"
    return None


def analyze(program: Program):
    """Run divergence detection; returns ``(diagnostics, summary)``."""
    diagnostics: List[Diagnostic] = []
    rules = [rule for rule in program.rules if rule.body]
    components = _recursive_components(rules)
    component_of: Dict[str, Set[str]] = {}
    for component in components:
        for pred in component:
            component_of[pred] = component

    flagged: List[str] = []
    bounded: List[Tuple[str, str]] = []
    for rule in rules:
        component = component_of.get(rule.head.pred)
        if component is None:
            continue
        if not any(lit.pred in component for lit in rule.body_literals):
            continue
        growing, chain_vars, recursive_vars = _rule_growth(rule, component)
        if not growing:
            continue
        name = rule_name(rule)
        symbols = sorted({s for syms in growing.values() for s in syms})
        columns = ", ".join(str(p + 1) for p in sorted(growing))
        bound = _find_bound(rule, program, component, chain_vars,
                            recursive_vars)
        if bound is not None:
            bounded.append((name, bound))
            diagnostics.append(Diagnostic(
                code="ND202", severity="info", analysis=ANALYSIS,
                rule=name, pred=rule.head.pred, span=rule_span(rule),
                message=(
                    f"recursive growth of column(s) {columns} of "
                    f"{rule.head.pred!r} via {', '.join(symbols)} is "
                    f"bounded by {bound}"
                ),
            ))
            continue
        flagged.append(name)
        diagnostics.append(Diagnostic(
            code="ND201", severity="warning", analysis=ANALYSIS,
            rule=name, pred=rule.head.pred, span=rule_span(rule),
            message=(
                f"recursive rule grows column(s) {columns} of "
                f"{rule.head.pred!r} through {', '.join(symbols)} with no "
                f"bounding condition -- evaluation may diverge "
                f"(count-to-infinity shape)"
            ),
            hint=(
                "bound the generated column (e.g. C < 16), add a cycle "
                "guard (f_member(P, S) == 0), or compute a monotonic "
                "min/max over the relation so aggregate selections can "
                "prune the recursion"
            ),
        ))

    summary = {
        "recursive_components": [sorted(c) for c in components],
        "divergent_rules": flagged,
        "bounded_rules": bounded,
    }
    return diagnostics, summary

"""Analysis 5: dead rules and unreachable relations (ND5xx).

A derivability fixpoint over the predicate graph, seeded from the base
tables (predicates never derived by a rule with a body -- the tables a
deployment loads facts and link state into):

* a rule *can fire* once every positive body literal reads a derivable
  predicate and no body condition is statically false;
* a predicate is *derivable* once it is a base table or some rule
  deriving it can fire.

Findings:

* **ND501** (warning) -- a derived relation none of whose rules can
  ever fire: it stays empty at every node, whatever the input;
* **ND502** (warning) -- a dead rule: it reads a relation that is never
  derivable, so it never contributes a tuple;
* **ND503** (warning) -- a statically false condition (constant-folded
  with the builtin function registry, plus the structural ``X != X``
  shape): the rule body can never be satisfied;
* **ND504** (info) -- a derived relation no rule body reads and that is
  not the query: computed, shipped, and then dropped on the floor.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.common import edb_predicates, rule_name, rule_span
from repro.analysis.diagnostics import Diagnostic
from repro.ndlog.ast import Condition, Program, Rule
from repro.ndlog.functions import default_functions
from repro.ndlog.pretty import format_term
from repro.ndlog.terms import BinOp, evaluate

ANALYSIS = "deadcode"

_FUNCTIONS = default_functions()


def _false_conditions(rule: Rule) -> List[Condition]:
    """Body conditions that can be shown false without any bindings."""
    out: List[Condition] = []
    for item in rule.body:
        if not isinstance(item, Condition):
            continue
        expr = item.expr
        if not expr.variables():
            # Ground condition: fold it.
            try:
                if not evaluate(expr, {}, _FUNCTIONS):
                    out.append(item)
            except Exception:
                # EvaluationError, or a TypeError from comparing
                # mixed-type constants -- either way the engines own
                # the runtime complaint; folding just declines.
                pass
            continue
        # Structural contradiction: X != X, X < X.
        if (isinstance(expr, BinOp) and expr.op in ("!=", "<", ">")
                and expr.left == expr.right):
            out.append(item)
    return out


def analyze(program: Program):
    """Run the derivability fixpoint; returns ``(diagnostics, summary)``."""
    diagnostics: List[Diagnostic] = []
    rules = [rule for rule in program.rules if rule.body]
    derivable: Set[str] = set(edb_predicates(program))
    false_conds: Dict[int, List[Condition]] = {}
    for position, rule in enumerate(rules):
        false_conds[position] = _false_conditions(rule)

    def can_fire(rule: Rule, position: int) -> bool:
        if false_conds[position]:
            return False
        return all(lit.negated or lit.pred in derivable
                   for lit in rule.body_literals)

    changed = True
    while changed:
        changed = False
        for position, rule in enumerate(rules):
            if rule.head.pred in derivable:
                continue
            if can_fire(rule, position):
                derivable.add(rule.head.pred)
                changed = True

    derived = {rule.head.pred for rule in rules}
    dead_relations = sorted(derived - derivable)
    for pred in dead_relations:
        defining = ", ".join(rule_name(r) for r in rules
                             if r.head.pred == pred)
        diagnostics.append(Diagnostic(
            code="ND501", severity="warning", analysis=ANALYSIS,
            pred=pred,
            message=(
                f"relation {pred!r} is underivable: none of its rules "
                f"({defining}) can ever fire, so it stays empty on every "
                f"node regardless of input"
            ),
            hint="seed it from a base table or delete its rules",
        ))

    dead_rules: List[str] = []
    for position, rule in enumerate(rules):
        name = rule_name(rule)
        for cond in false_conds[position]:
            diagnostics.append(Diagnostic(
                code="ND503", severity="warning", analysis=ANALYSIS,
                rule=name, pred=rule.head.pred, span=rule_span(rule),
                message=(
                    f"condition {format_term(cond.expr)} is statically "
                    f"false; the rule body can never be satisfied"
                ),
            ))
        blocked = sorted({
            lit.pred for lit in rule.body_literals
            if not lit.negated and lit.pred not in derivable
        })
        if blocked and rule.head.pred in derivable:
            # Head reachable through some *other* rule; this one is dead.
            dead_rules.append(name)
        if blocked:
            diagnostics.append(Diagnostic(
                code="ND502", severity="warning", analysis=ANALYSIS,
                rule=name, pred=rule.head.pred, span=rule_span(rule),
                message=(
                    f"dead rule: body reads underivable relation(s) "
                    f"{', '.join(repr(p) for p in blocked)} -- the rule "
                    f"never contributes a tuple"
                ),
                hint="derive or load the missing relation(s), or drop "
                     "the rule",
            ))
            if rule.head.pred not in derivable:
                dead_rules.append(name)

    read = {lit.pred for rule in rules for lit in rule.body_literals}
    query_pred = program.query.pred if program.query is not None else None
    unused = sorted(
        pred for pred in derived
        if pred not in read and pred != query_pred
    )
    for pred in unused:
        diagnostics.append(Diagnostic(
            code="ND504", severity="info", analysis=ANALYSIS, pred=pred,
            message=(
                f"derived relation {pred!r} is never read by any rule "
                f"body and is not the query -- its tuples are computed "
                f"and dropped"
            ),
        ))

    summary = {
        "derivable": sorted(derivable),
        "underivable": dead_relations,
        "dead_rules": sorted(set(dead_rules)),
        "unused_relations": unused,
    }
    return diagnostics, summary

"""ndlint: multi-pass static analysis for NDlog programs.

Five analyses over :class:`~repro.ndlog.ast.Program` (or a compiled
artifact), each returning structured
:class:`~repro.analysis.diagnostics.Diagnostic` records:

======================  ==========  =====================================
analysis                codes       what it checks
======================  ==========  =====================================
``types``               ND101-102   column type inference & consistency
                                    by unification across rule
                                    occurrences (addresses vs values)
``termination``         ND201-202   count-to-infinity divergence:
                                    recursive growth through function
                                    symbols with / without a bound
``monotonicity``        ND301-302   per-stratum monotonicity, engine
                                    restrictions, deletion soundness
``communication``       ND401-403   post-localization shipment
                                    profiles and fan-out classes
``deadcode``            ND501-504   underivable relations, dead rules,
                                    false conditions, unused relations
======================  ==========  =====================================

Entry points: :func:`analyze` (the driver), ``python -m repro.lint``
(the CLI), and ``repro.compile(..., lint="warn"|"error"|"off")``.
"""

from repro.analysis.diagnostics import (
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
    severity_rank,
)
from repro.analysis.runner import ANALYSES, analyze

__all__ = [
    "ANALYSES",
    "AnalysisReport",
    "Diagnostic",
    "SEVERITIES",
    "analyze",
    "severity_rank",
]

"""Analysis 3: monotonicity and deletion-soundness per stratum (ND3xx).

Classifies every rule as monotone (plain positive Datalog: inserting
body tuples can only insert head tuples) or non-monotone (head
aggregate, arg-extreme view, or negated literal), rolls the
classification up per stratum, and reports what each relation's shape
means for incremental maintenance:

* monotone relations are safe under PSN's weighted delete/re-derive
  discipline as-is: a deletion is a ``-k`` Z-set weight whose
  re-derivation strands retract exactly the support the insertion
  strands built, and queue-level cancellation is plain weight addition;
* aggregate and arg-extreme views are maintained by the engine's
  incremental group machinery over weighted contributions (safe, but a
  deletion can *raise* a min, so downstream consumers see
  retract/assert pairs);
* a non-monotone rule inside a *recursive* stratum is the shape the
  set-oriented engines refuse outright -- :func:`repro.engine.stratify
  .stratify` raises a ``PlanError`` at run time; **ND301** (info)
  surfaces it at lint time instead, naming the engines that can run
  the plan.

**ND302** (info) records each non-monotone relation's deletion story.
Nothing here is a warning: these are engine-selection facts, not
program bugs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.common import rule_name, rule_span
from repro.analysis.diagnostics import Diagnostic
from repro.engine.stratify import strata
from repro.ndlog.ast import Program, Rule

ANALYSIS = "monotonicity"


def rule_is_monotone(rule: Rule) -> bool:
    """Plain positive rule: no aggregate, no arg-extreme annotation, no
    negated body literal."""
    if rule.head_aggregate() is not None or rule.argmin is not None:
        return False
    return not any(lit.negated for lit in rule.body_literals)


def _nonmonotone_kind(rule: Rule) -> str:
    if rule.argmin is not None:
        return "arg-extreme view"
    if rule.head_aggregate() is not None:
        aggregate = rule.head_aggregate()[1]
        return f"{aggregate.func}<> aggregate view"
    return "negated rule"


def analyze(program: Program):
    """Classify strata; returns ``(diagnostics, summary)``."""
    diagnostics: List[Diagnostic] = []
    stratum_rows: List[Dict[str, object]] = []
    relation_story: Dict[str, str] = {}

    for index, stratum in enumerate(strata(program)):
        nonmonotone = [r for r in stratum.rules if not rule_is_monotone(r)]
        monotone = not nonmonotone
        stratum_rows.append({
            "index": index,
            "preds": sorted(stratum.preds),
            "recursive": stratum.recursive,
            "monotone": monotone,
        })
        for pred in stratum.preds:
            if monotone:
                relation_story[pred] = "psn-delete-rederive"
        for rule in nonmonotone:
            kind = _nonmonotone_kind(rule)
            keyed = rule.head.pred in program.materializations and \
                program.materializations[rule.head.pred].keys
            story = ("keyed group replace"
                     if (rule.argmin is not None or keyed)
                     else "incremental group maintenance")
            relation_story[rule.head.pred] = story
            diagnostics.append(Diagnostic(
                code="ND302", severity="info", analysis=ANALYSIS,
                rule=rule_name(rule), pred=rule.head.pred,
                span=rule_span(rule),
                message=(
                    f"{rule.head.pred!r} is non-monotone ({kind}); "
                    f"negative-weight deltas maintain it by {story}, and "
                    f"downstream consumers see retract/assert pairs when "
                    f"the group optimum changes"
                ),
            ))
            if stratum.recursive:
                diagnostics.append(Diagnostic(
                    code="ND301", severity="info", analysis=ANALYSIS,
                    rule=rule_name(rule), pred=rule.head.pred,
                    span=rule_span(rule),
                    message=(
                        f"{kind} {rule_name(rule)} sits inside recursive "
                        f"stratum {sorted(stratum.preds)}; the set-oriented "
                        f"engines ('naive', 'seminaive') cannot evaluate "
                        f"it -- deploy on 'psn' or 'bsn'"
                    ),
                    hint=("stratify() raises PlanError for this shape at "
                          "run time; pick a pipelined engine up front"),
                ))

    summary = {
        "strata": stratum_rows,
        "deletion_soundness": dict(sorted(relation_story.items())),
    }
    return diagnostics, summary

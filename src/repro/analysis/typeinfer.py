"""Analysis 1: relation type inference and consistency (ND1xx).

Infers a type for every column of every relation by unification across
*all* head/body occurrences, program-wide -- the cross-rule
generalization of the validator's per-rule ``_address_usage``
heuristic (Definition 6.2, address type safety):

* every variable occurrence in a rule unions the column cells it
  appears in (a variable has one type per rule);
* ``@``-marked terms and -- in located programs -- position 0 of every
  literal assert the ``address`` type;
* constants assert the type of their value, arithmetic asserts
  ``number``, builtin functions assert their signatures
  (``f_concatPath`` returns a path, ``f_size`` a number,
  ``f_first``/``f_prevhop`` an address, ...);
* ``==`` comparisons and ``min``/``max`` aggregates union their two
  sides without naming a type.

A cell that ends up with incompatible evidence is a conflict:

* **ND101** (error) -- an address column also carries value-typed
  evidence (number/list/tuple/bool): the program ships tuples to
  something that is not a node address, or does arithmetic on one.
* **ND102** (warning) -- two non-address value types collide (e.g. a
  column holding both numbers and paths).

Plain string atoms are compatible with addresses (addresses *are*
strings at runtime); everything else is pairwise distinct.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.common import program_is_located, rule_name
from repro.analysis.diagnostics import Diagnostic
from repro.ndlog.ast import Assignment, Condition, Literal, Program, Rule
from repro.ndlog.terms import (
    AggregateSpec,
    BinOp,
    Constant,
    FuncCall,
    NIL,
    Term,
    TupleTerm,
    UnaryOp,
    Variable,
)

ANALYSIS = "types"

# -- the type lattice ---------------------------------------------------
ADDRESS = "address"
NUMBER = "number"
BOOL = "bool"
LIST = "list"
TUPLE = "tuple"
ATOM = "atom"        # plain string; compatible with ADDRESS

#: Pairs that may share a cell without conflict (beyond identity).
_COMPATIBLE = {frozenset((ADDRESS, ATOM))}

#: Builtin signatures: name -> (argument types, return type).  ``None``
#: leaves a position unconstrained.
FUNCTION_SIGNATURES: Dict[str, Tuple[Tuple[Optional[str], ...], Optional[str]]] = {
    # Both f_concatPath arguments are path-like (a list OR a link tuple
    # -- the function merges node sequences of either), so neither is
    # constrained to LIST.
    "f_concatPath": ((None, None), LIST),
    "f_member": ((LIST, None), NUMBER),
    "f_size": ((LIST,), NUMBER),
    "f_first": ((LIST,), ADDRESS),
    "f_last": ((LIST,), ADDRESS),
    "f_init": ((None,), LIST),
    "f_append": ((LIST, None), LIST),
    "f_prepend": ((None, LIST), LIST),
    "f_reverse": ((LIST,), LIST),
    "f_prevhop": ((LIST, None), ADDRESS),
    "f_subpath": ((LIST, None), LIST),
    "f_min": ((NUMBER, NUMBER), NUMBER),
    "f_max": ((NUMBER, NUMBER), NUMBER),
}

_ARITH_OPS = frozenset(("+", "-", "*", "/", "%"))
_EQ_OPS = frozenset(("==",))
_ORDER_OPS = frozenset(("<", "<=", ">", ">="))
_BOOL_OPS = frozenset(("&&", "||"))


class _Evidence:
    """One type assertion with its provenance."""

    __slots__ = ("type", "rule", "where")

    def __init__(self, type_: str, rule: str, where: str):
        self.type = type_
        self.rule = rule
        self.where = where


class _Cells:
    """Union-find over type cells with per-root evidence lists."""

    def __init__(self):
        self._parent: Dict[object, object] = {}
        self._evidence: Dict[object, List[_Evidence]] = {}

    def find(self, token: object) -> object:
        parent = self._parent.setdefault(token, token)
        if parent == token:
            return token
        root = self.find(parent)
        self._parent[token] = root
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        self._parent[rb] = ra
        merged = self._evidence.pop(rb, [])
        self._evidence.setdefault(ra, []).extend(merged)

    def assert_type(self, token: object, type_: str, rule: str,
                    where: str) -> None:
        root = self.find(token)
        self._evidence.setdefault(root, []).append(
            _Evidence(type_, rule, where)
        )

    def groups(self) -> Dict[object, List[_Evidence]]:
        out: Dict[object, List[_Evidence]] = {}
        for token in self._parent:
            root = self.find(token)
            out.setdefault(root, [])
        for root, evidence in self._evidence.items():
            out.setdefault(self.find(root), []).extend(evidence)
        return out

    def members(self, root: object) -> List[object]:
        return [t for t in self._parent if self.find(t) == root]


def _value_type(value: object) -> Optional[str]:
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, (int, float)):
        return NUMBER
    if isinstance(value, tuple):
        return LIST
    if isinstance(value, str):
        return ATOM
    return None


def _compatible(a: str, b: str) -> bool:
    return a == b or frozenset((a, b)) in _COMPATIBLE


class _Inference:
    def __init__(self, program: Program):
        self.program = program
        self.cells = _Cells()
        self.located = program_is_located(program)
        self.local_conflicts: List[Diagnostic] = []

    # -- term walking ---------------------------------------------------
    def visit(self, term: Term, rule_key: int, rule: str):
        """Digest ``term``; returns a cell token, a concrete type name,
        or ``None`` (unconstrained)."""
        if isinstance(term, Variable):
            token = ("var", rule_key, term.name)
            if term.location:
                self.cells.assert_type(token, ADDRESS, rule,
                                       f"@{term.name}")
            return token
        if isinstance(term, Constant):
            if term.location:
                return ADDRESS
            if term.value == NIL and isinstance(term.value, tuple):
                return LIST
            return _value_type(term.value)
        if isinstance(term, BinOp):
            left = self.visit(term.left, rule_key, rule)
            right = self.visit(term.right, rule_key, rule)
            if term.op in _ARITH_OPS:
                where = f"operand of {term.op!r}"
                self.constrain(left, NUMBER, rule, where)
                self.constrain(right, NUMBER, rule, where)
                return NUMBER
            if term.op in _EQ_OPS:
                self.unify(left, right, rule, f"both sides of {term.op!r}")
                return BOOL
            if term.op in _ORDER_OPS:
                self.unify(left, right, rule, f"both sides of {term.op!r}")
                return BOOL
            if term.op in _BOOL_OPS:
                return BOOL
            return None
        if isinstance(term, UnaryOp):
            operand = self.visit(term.operand, rule_key, rule)
            if term.op == "-":
                self.constrain(operand, NUMBER, rule, "operand of unary '-'")
                return NUMBER
            if term.op == "!":
                return BOOL
            return None
        if isinstance(term, FuncCall):
            signature = FUNCTION_SIGNATURES.get(term.name)
            arg_results = [self.visit(arg, rule_key, rule)
                           for arg in term.args]
            if signature is None:
                return None
            arg_types, return_type = signature
            for position, result in enumerate(arg_results):
                if position >= len(arg_types):
                    break
                wanted = arg_types[position]
                if wanted is not None:
                    self.constrain(
                        result, wanted, rule,
                        f"argument {position + 1} of {term.name}",
                    )
            return return_type
        if isinstance(term, TupleTerm):
            for arg in term.args:
                self.visit(arg, rule_key, rule)
            return TUPLE
        if isinstance(term, AggregateSpec):
            # Handled at the literal level (needs the column cell).
            return None
        return None

    def constrain(self, result, type_: str, rule: str, where: str) -> None:
        """Assert that ``result`` (cell or concrete type) has ``type_``."""
        if result is None:
            return
        if isinstance(result, str):
            if not _compatible(result, type_):
                self.local_conflicts.append(Diagnostic(
                    code="ND102", severity="warning", analysis=ANALYSIS,
                    rule=rule,
                    message=(f"expression typed {result} where {type_} is "
                             f"expected ({where})"),
                ))
            return
        self.cells.assert_type(result, type_, rule, where)

    def unify(self, a, b, rule: str, where: str) -> None:
        """Union two results (cells union; concrete types constrain)."""
        if a is None or b is None:
            return
        if isinstance(a, str) and isinstance(b, str):
            if not _compatible(a, b):
                self.local_conflicts.append(Diagnostic(
                    code="ND102", severity="warning", analysis=ANALYSIS,
                    rule=rule,
                    message=f"{where} have incompatible types {a} and {b}",
                ))
            return
        if isinstance(a, str):
            self.cells.assert_type(b, a, rule, where)
            return
        if isinstance(b, str):
            self.cells.assert_type(a, b, rule, where)
            return
        self.cells.union(a, b)

    # -- literal / rule walking ----------------------------------------
    def visit_literal(self, literal: Literal, rule_key: int,
                      rule: str) -> None:
        for position, arg in enumerate(literal.args):
            column = ("col", literal.pred, position)
            if position == 0 and self.located:
                self.cells.assert_type(
                    column, ADDRESS, rule,
                    f"location column of {literal.pred}",
                )
            if position == 1 and literal.link_literal and self.located:
                # A link literal's first two fields are the physical
                # source and destination addresses (Definition 4).
                self.cells.assert_type(
                    column, ADDRESS, rule,
                    f"destination column of link literal {literal.pred}",
                )
            if isinstance(arg, AggregateSpec):
                if arg.func in ("count", "sum", "avg"):
                    self.cells.assert_type(
                        column, NUMBER, rule,
                        f"{arg.func}<> column of {literal.pred}",
                    )
                if arg.func in ("sum", "avg") and arg.var:
                    self.cells.assert_type(
                        ("var", rule_key, arg.var), NUMBER, rule,
                        f"{arg.func}<{arg.var}>",
                    )
                if arg.func in ("min", "max") and arg.var:
                    self.cells.union(column, ("var", rule_key, arg.var))
                continue
            result = self.visit(arg, rule_key, rule)
            self.unify(column, result, rule,
                       f"column {position + 1} of {literal.pred}")

    def visit_rule(self, rule: Rule, rule_key: int) -> None:
        name = rule_name(rule)
        self.visit_literal(rule.head, rule_key, name)
        for item in rule.body:
            if isinstance(item, Literal):
                self.visit_literal(item, rule_key, name)
            elif isinstance(item, Assignment):
                var_token = ("var", rule_key, item.var.name)
                result = self.visit(item.expr, rule_key, name)
                self.unify(var_token, result, name,
                           f"assignment to {item.var.name}")
            elif isinstance(item, Condition):
                self.visit(item.expr, rule_key, name)

    def run(self) -> Tuple[List[Diagnostic], Dict[str, List[str]]]:
        for index, rule in enumerate(self.program.rules):
            self.visit_rule(rule, index)
        for offset, fact in enumerate(self.program.facts):
            self.visit_literal(fact, -(offset + 1), "")
        if self.program.query is not None:
            self.visit_literal(self.program.query, -1_000_000, "")
        return self._report()

    # -- conflict extraction -------------------------------------------
    def _report(self) -> Tuple[List[Diagnostic], Dict[str, List[str]]]:
        diagnostics = list(self.local_conflicts)
        resolved: Dict[Tuple[str, int], str] = {}

        for root, evidence in self.cells.groups().items():
            types = {e.type for e in evidence}
            columns = sorted(
                (t[1], t[2]) for t in self.cells.members(root)
                if isinstance(t, tuple) and t[0] == "col"
            )
            # Resolve the cell's display type for the summary.
            display = self._display_type(types)
            for pred, position in columns:
                resolved[(pred, position)] = display

            conflict = self._conflict_pair(types)
            if conflict is None:
                continue
            first, second = conflict
            involves_address = ADDRESS in (first, second)
            code = "ND101" if involves_address else "ND102"
            severity = "error" if involves_address else "warning"
            witness_a = next(e for e in evidence if e.type == first)
            witness_b = next(e for e in evidence if e.type == second)
            where = self._describe_columns(columns)
            diagnostics.append(Diagnostic(
                code=code, severity=severity, analysis=ANALYSIS,
                rule=witness_b.rule or witness_a.rule,
                pred=columns[0][0] if columns else "",
                message=(
                    f"{where} is used as {first} ({witness_a.where}"
                    f"{self._in_rule(witness_a)}) and as {second} "
                    f"({witness_b.where}{self._in_rule(witness_b)})"
                ),
                hint=("address and value types cannot mix (Definition 6.2); "
                      "check which rule ships or computes the wrong column"
                      if involves_address else
                      "the same column carries structurally different "
                      "values in different rules"),
            ))

        summary = self._summary(resolved)
        return diagnostics, summary

    @staticmethod
    def _in_rule(evidence: _Evidence) -> str:
        return f" in rule {evidence.rule}" if evidence.rule else ""

    @staticmethod
    def _describe_columns(columns) -> str:
        if not columns:
            return "a rule-local variable"
        pred, position = columns[0]
        text = f"column {position + 1} of {pred!r}"
        if len(columns) > 1:
            text += f" (unified with {len(columns) - 1} other column(s))"
        return text

    @staticmethod
    def _conflict_pair(types: Set[str]):
        ordered = sorted(types)
        for i, first in enumerate(ordered):
            for second in ordered[i + 1:]:
                if not _compatible(first, second):
                    # Report the address side first when present.
                    if second == ADDRESS:
                        return second, first
                    return first, second
        return None

    @staticmethod
    def _display_type(types: Set[str]) -> str:
        concrete = set(types)
        if not concrete:
            return "any"
        if concrete == {ADDRESS, ATOM} or concrete == {ADDRESS}:
            return ADDRESS
        if len(concrete) == 1:
            return next(iter(concrete))
        return "conflict"

    def _summary(self, resolved) -> Dict[str, List[str]]:
        by_pred: Dict[str, Dict[int, str]] = {}
        for (pred, position), display in resolved.items():
            by_pred.setdefault(pred, {})[position] = display
        out: Dict[str, List[str]] = {}
        for pred, columns in sorted(by_pred.items()):
            width = max(columns) + 1 if columns else 0
            out[pred] = [columns.get(i, "any") for i in range(width)]
        return {"columns": out}


def analyze(program: Program):
    """Run type inference; returns ``(diagnostics, per-relation types)``."""
    return _Inference(program).run()

"""Structured diagnostics emitted by the ndlint static analyses.

A :class:`Diagnostic` is one finding: a stable code (``ND…``), a
severity, the analysis that produced it, the rule it anchors to (by
label, with the rule's source text as the span), a human message, and
an optional fix hint.  An :class:`AnalysisReport` is the ordered
collection the analyzer returns, with severity filters and the
summaries each analysis computed along the way (type assignments,
strata, shipment profiles).

Severities
----------

* ``error`` -- the program is almost certainly wrong (e.g. a column
  used as an address in one rule and as a number in another);
* ``warning`` -- a correctness or cost hazard worth blocking a deploy
  on (divergent recursion, dead rules, broadcast storms);
* ``info`` -- classification facts that carry no judgement (engine
  restrictions, fan-out profiles).

``compile(..., lint="error")`` raises on anything at ``warning`` or
above; ``lint="warn"`` records the report on the artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Severity names in ascending order of gravity.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

_RANK: Dict[str, int] = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (unknown names rank highest so a
    malformed diagnostic is never silently filtered out)."""
    return _RANK.get(severity, len(SEVERITIES))


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str                  # stable identifier, e.g. "ND201"
    severity: str              # "error" | "warning" | "info"
    analysis: str              # producing analysis, e.g. "termination"
    message: str               # one-line human description
    rule: str = ""             # rule label ("" for program-level findings)
    pred: str = ""             # relation the finding is about, if any
    span: str = ""             # the rule's source text (pretty-printed)
    hint: str = ""             # optional fix suggestion

    def sort_key(self) -> Tuple:
        return (-severity_rank(self.severity), self.code, self.rule,
                self.pred, self.message)

    def __repr__(self) -> str:
        anchor = f" rule {self.rule}" if self.rule else ""
        return f"Diagnostic({self.code} {self.severity}{anchor}: {self.message})"


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced.

    ``diagnostics`` is sorted most-severe-first (then by code / rule)
    so renderings are deterministic; ``summaries`` maps analysis names
    to whatever structured by-product they computed (the type table,
    the strata, the per-rule shipment profiles) for programmatic
    consumers.
    """

    program_name: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    summaries: Dict[str, object] = field(default_factory=dict)
    #: Analyses that ran (in order), for report headers.
    analyses: List[str] = field(default_factory=list)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def finish(self) -> "AnalysisReport":
        """Sort diagnostics into the canonical rendering order."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    # -- filters --------------------------------------------------------
    def at_least(self, severity: str) -> List[Diagnostic]:
        """Diagnostics at or above ``severity``."""
        floor = severity_rank(severity)
        return [d for d in self.diagnostics
                if severity_rank(d.severity) >= floor]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def by_analysis(self, analysis: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.analysis == analysis]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.at_least("error")

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def ok(self) -> bool:
        """No findings at warning severity or above."""
        return not self.at_least("warning")

    @property
    def max_severity(self) -> Optional[str]:
        if not self.diagnostics:
            return None
        return max(self.diagnostics,
                   key=lambda d: severity_rank(d.severity)).severity

    def counts(self) -> Dict[str, int]:
        out = {name: 0 for name in SEVERITIES}
        for diag in self.diagnostics:
            out[diag.severity] = out.get(diag.severity, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        counts = self.counts()
        parts = ", ".join(
            f"{counts[name]} {name}" for name in reversed(SEVERITIES)
            if counts.get(name)
        ) or "clean"
        return f"AnalysisReport({self.program_name!r}: {parts})"

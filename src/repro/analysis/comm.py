"""Analysis 4: communication-cost profiles after localization (ND4xx).

Localization (Algorithm 2) makes every rule body single-site, so a
rule's communication behaviour is statically visible: the head either
commits locally or ships one hop along a link.  For every shipping
rule this analysis computes a *shipment profile* -- which literal
crosses the link, how the destination is determined, and a fan-out
class -- using the same :class:`~repro.opt.costbased.StatsCatalog`
estimates the join planner uses:

* **local** -- head commits where the body evaluates; no traffic;
* **unicast** -- one message per body match: the destination is pinned
  by data (it appears in a non-link body literal, an assignment, or an
  equality condition), or the link tuple itself is the driving tuple;
* **neighborhood** -- the destination endpoint ranges freely over the
  site's links: every body match ships to *every* neighbor (degree
  fan-out).  **ND403** (info);
* **broadcast** -- the destination is not constrained by any link
  literal at all: the rule ships to arbitrary addresses drawn from
  stored data.  **ND401** (warning).

A neighborhood rule whose head relation is recursive through its own
body re-floods every derived tuple to every neighbor -- the broadcast
storm shape, **ND402** (warning): one link flap triggers a
network-wide re-flood per round.

Location-free (plain Datalog) programs have no communication and are
skipped.  Programs that have not been localized yet are localized into
a scratch copy first, so ``compile(source, lint=...)`` sees deploy
shapes without requiring the ``localize`` pass to have run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.common import program_is_located, rule_name, rule_span
from repro.analysis.diagnostics import Diagnostic
from repro.engine.stratify import dependency_graph, tarjan_sccs
from repro.ndlog.ast import Assignment, Condition, Literal, Program, Rule
from repro.ndlog.terms import BinOp, Constant, Term, Variable
from repro.opt.costbased import StatsCatalog

ANALYSIS = "communication"


def _location_key(term: Term):
    if isinstance(term, Variable):
        return ("var", term.name)
    if isinstance(term, Constant):
        return ("const", term.value)
    return ("expr", repr(term))


def _body_sites(rule: Rule) -> Set:
    return {_location_key(lit.location)
            for lit in rule.body_literals if lit.args}


def _localized_view(program: Program) -> Program:
    """The program with single-site bodies: itself if already canonical,
    else a scratch localization (best-effort -- rules the rewrite cannot
    handle are analyzed as-is)."""
    if all(len(_body_sites(rule)) <= 1 for rule in program.rules):
        return program
    from repro.planner.localization import localize

    try:
        return localize(program)
    except Exception:
        return program


def _pinned_variables(rule: Rule, link: Optional[Literal]) -> Set[str]:
    """Variables whose value is determined per body match by something
    other than ranging over the link table: membership in a non-link
    literal, an assignment, or an equality condition."""
    pinned: Set[str] = set()
    for item in rule.body:
        if isinstance(item, Literal):
            if not item.link_literal and item is not link:
                pinned |= item.variables()
        elif isinstance(item, Assignment):
            pinned.add(item.var.name)
        elif isinstance(item, Condition):
            expr = item.expr
            if isinstance(expr, BinOp) and expr.op == "==":
                pinned |= expr.variables()
    return pinned


def _recursive_preds(program: Program) -> Set[str]:
    rules = [rule for rule in program.rules if rule.body]
    graph = dependency_graph(rules)
    out: Set[str] = set()
    for component in tarjan_sccs(graph):
        if len(component) > 1:
            out.update(component)
        elif component[0] in graph.get(component[0], ()):
            out.add(component[0])
    return out


def _component_map(program: Program) -> Dict[str, frozenset]:
    rules = [rule for rule in program.rules if rule.body]
    out: Dict[str, frozenset] = {}
    for component in tarjan_sccs(dependency_graph(rules)):
        frozen = frozenset(component)
        for pred in component:
            out[pred] = frozen
    return out


def analyze(program: Program, stats: Optional[StatsCatalog] = None):
    """Profile per-rule shipments; returns ``(diagnostics, summary)``."""
    diagnostics: List[Diagnostic] = []
    if not program_is_located(program):
        return diagnostics, {"located": False, "profiles": []}

    stats = stats or StatsCatalog()
    view = _localized_view(program)
    components = _component_map(view)
    profiles: List[Dict[str, object]] = []

    for rule in view.rules:
        if not rule.body or not rule.head.args:
            continue
        name = rule_name(rule)
        sites = _body_sites(rule)
        if len(sites) != 1:
            # Localization could not canonicalize this rule; the
            # validator / localize pass owns reporting that.
            continue
        site = next(iter(sites))
        head_key = _location_key(rule.head.location)
        links = [lit for lit in rule.body_literals
                 if lit.link_literal and lit.arity >= 2]
        profile: Dict[str, object] = {"rule": name,
                                      "head": rule.head.pred}
        if head_key == site:
            profile["class"] = "local"
            profile["est_msgs_per_round"] = 0.0
            profiles.append(profile)
            continue

        # The rule ships its head one hop.  How is the destination
        # chosen per body match?
        endpoint_links = [
            link for link in links
            if head_key in (_location_key(link.args[0]),
                            _location_key(link.args[1]))
        ]
        data_literals = [lit for lit in rule.body_literals
                         if not lit.link_literal]
        est_data = max(
            (stats.table_rows(lit.pred) for lit in data_literals),
            default=0.0,
        )

        if not endpoint_links:
            profile["class"] = "broadcast"
            profile["est_msgs_per_round"] = est_data or \
                stats.default_rows
            profiles.append(profile)
            diagnostics.append(Diagnostic(
                code="ND401", severity="warning", analysis=ANALYSIS,
                rule=name, pred=rule.head.pred, span=rule_span(rule),
                message=(
                    f"rule ships {rule.head.pred!r} to destination "
                    f"{head_key[1]!r} that no body link literal "
                    f"constrains -- broadcast-shaped traffic to "
                    f"arbitrary addresses"
                ),
                hint=("route results along a #link literal so every "
                      "message crosses one physical hop "
                      "(link-restriction, Definition 5)"),
            ))
            continue

        link = endpoint_links[0]
        profile["link"] = link.pred
        pinned = _pinned_variables(rule, link)
        dest_is_var = head_key[0] == "var"
        dest_pinned = (not dest_is_var) or head_key[1] in pinned

        if dest_pinned or not data_literals:
            # Either the data pins the destination, or the link table
            # itself is the driving relation (one message per link row).
            profile["class"] = "unicast"
            profile["est_msgs_per_round"] = (
                est_data if data_literals else stats.table_rows(link.pred)
            )
            profiles.append(profile)
            continue

        # Destination ranges freely over the neighbor set.
        recursive_flood = bool(
            components.get(rule.head.pred)
            and any(lit.pred in components[rule.head.pred]
                    for lit in rule.body_literals)
        )
        profile["class"] = "neighborhood"
        profile["est_msgs_per_round"] = est_data
        profile["fanout"] = "degree"
        profiles.append(profile)
        if recursive_flood:
            diagnostics.append(Diagnostic(
                code="ND402", severity="warning", analysis=ANALYSIS,
                rule=name, pred=rule.head.pred, span=rule_span(rule),
                message=(
                    f"broadcast storm shape: recursive rule re-floods "
                    f"every derived {rule.head.pred!r} tuple to every "
                    f"neighbor (degree fan-out around the "
                    f"{sorted(components[rule.head.pred])} cycle)"
                ),
                hint=("pin the destination with data (join it against a "
                      "stored relation or an equality condition) or "
                      "prune the flood with an aggregate-selection view "
                      "before advertising"),
            ))
        else:
            diagnostics.append(Diagnostic(
                code="ND403", severity="info", analysis=ANALYSIS,
                rule=name, pred=rule.head.pred, span=rule_span(rule),
                message=(
                    f"neighborhood fan-out: each body match ships "
                    f"{rule.head.pred!r} to every neighbor along "
                    f"{link.pred!r} (~{est_data:.0f} tuples x degree "
                    f"per round)"
                ),
            ))

    summary = {
        "located": True,
        "localized_for_analysis": view is not program,
        "profiles": profiles,
    }
    return diagnostics, summary

"""Figures 7 and 8: aggregate selections across the four link metrics.

Figure 7 plots per-node bandwidth (kBps) against time; Figure 8 plots
the percentage of eventual best paths completed against time.  Section
6.2's quantitative claims:

* convergence order: Hop-Count (4.4 s) < Reliability (4.8) ~ Latency
  (4.9) < Random (5.8);
* aggregate MB order: Hop-Count (2.6) < Latency (3.1) ~ Reliability
  (3.2) < Random (4.1);
* bandwidth rises while paths of increasing length are derived, peaks,
  then falls as fewer optimal paths remain.

Random is the stress case: its metric is uncorrelated with network
latency, so tuples arrive out of order and aggregate selections prune
less effectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.experiments.common import (
    METRIC_LABELS,
    MetricRun,
    Scale,
    current_scale,
    default_overlay,
    format_series,
    format_table,
    run_shortest_path_metric,
)
from repro.topology import Overlay


@dataclass
class Fig7And8Result:
    runs: Dict[str, MetricRun] = field(default_factory=dict)
    periodic_interval: Optional[float] = None

    def report(self) -> str:
        title = (
            "Figures 9/10: periodic aggregate selections "
            f"(interval {self.periodic_interval}s)"
            if self.periodic_interval
            else "Figures 7/8: aggregate selections"
        )
        rows = [
            (
                run.label,
                f"{run.convergence:.2f}",
                f"{run.total_mb:.2f}",
                f"{run.peak_kbps:.1f}",
                run.messages,
            )
            for run in self.runs.values()
        ]
        lines = [
            title,
            format_table(
                ("query", "convergence (s)", "total MB",
                 "peak per-node kBps", "messages"),
                rows,
            ),
        ]
        for run in self.runs.values():
            lines.append(f"[Fig 7] {run.label} kBps: "
                         + format_series(run.bandwidth_series))
        for run in self.runs.values():
            lines.append(f"[Fig 8] {run.label} %results: "
                         + format_series(
                             [(t, 100 * f) for t, f in run.results_series],
                             unit="%"))
        return "\n".join(lines)

    # Shape assertions (paper-vs-ours relationships).
    def check_shape(self) -> None:
        runs = self.runs
        assert runs["hopcount"].total_mb < runs["latency"].total_mb
        assert runs["hopcount"].total_mb < runs["reliability"].total_mb
        assert runs["random"].total_mb > runs["latency"].total_mb
        assert runs["random"].total_mb > runs["reliability"].total_mb
        assert runs["hopcount"].convergence < runs["random"].convergence
        # Bandwidth rises then falls: the peak is strictly inside the run.
        for run in runs.values():
            series = [v for _t, v in run.bandwidth_series if v > 0]
            if len(series) >= 3:
                peak_index = series.index(max(series))
                assert 0 < peak_index or series[0] == max(series)


def run(
    overlay: Optional[Overlay] = None,
    scale: Optional[Scale] = None,
    periodic_interval: Optional[float] = None,
) -> Fig7And8Result:
    scale = scale or current_scale()
    overlay = overlay or default_overlay(scale)
    result = Fig7And8Result(periodic_interval=periodic_interval)
    for metric, label in METRIC_LABELS:
        result.runs[metric] = run_shortest_path_metric(
            overlay, metric, label, periodic_interval=periodic_interval
        )
    return result


if __name__ == "__main__":
    outcome = run()
    print(outcome.report())
    outcome.check_shape()

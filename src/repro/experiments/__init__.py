"""Experiment drivers regenerating every figure of the paper's Section 6
evaluation, plus the Section 5.3 cost-based ablation."""

from repro.experiments import common, fig7_8, fig9_10, fig11, fig12, fig13_14

__all__ = ["common", "fig7_8", "fig9_10", "fig11", "fig12", "fig13_14"]

"""Figure 12: opportunistic message sharing (Section 5.2 / 6.4).

Three shortest-path queries on different metrics (Latency, Reliability,
Random) run concurrently.  Path tuples for different queries that agree
on everything except the metric value are joined into one message;
"to facilitate sharing, we delay each outbound tuple by 300ms".

Paper numbers: sharing cuts the per-node bandwidth peak from 27 kBps to
16 kBps and the total communication by 34%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import api
from repro.experiments.common import (
    MetricRun,
    Scale,
    current_scale,
    default_overlay,
    format_series,
    format_table,
    run_shortest_path_metric,
)
from repro.ndlog import programs
from repro.ndlog.ast import Program
from repro.runtime import RuntimeConfig, ShareSpec
from repro.topology import Overlay

SHARE_DELAY = 0.3  # "we delay each outbound tuple by 300ms"

#: The three concurrent queries (suffix, metric).
QUERIES = (("lat", "latency"), ("rel", "reliability"), ("rnd", "random"))


def merged_program() -> Tuple[Program, Dict[str, str]]:
    """Three renamed copies of the shortest-path query in one program."""
    merged: Optional[Program] = None
    link_loads: Dict[str, str] = {}
    for suffix, metric in QUERIES:
        copy = programs.shortest_path().rename_predicates(f"_{suffix}")
        link_loads[f"link_{suffix}"] = metric
        merged = copy if merged is None else merged.merged_with(copy)
    merged.name = "fig12_merged"
    merged.query = None  # three queries; examined per relation
    return merged, link_loads


def share_specs() -> Dict[str, ShareSpec]:
    """Path tuples (and localized link adverts) are shareable modulo the
    metric attribute: schema path(@S,@D,@Z,P,C) -> value position 4;
    the localization's mid tuples (@Z,@S,C) -> value position 2."""
    specs: Dict[str, ShareSpec] = {}
    for suffix, _metric in QUERIES:
        specs[f"path_{suffix}"] = ShareSpec(base="path", value_positions=(4,))
        specs[f"sp2_path_{suffix}_mid"] = ShareSpec(
            base="mid", value_positions=(2,)
        )
    return specs


@dataclass
class Fig12Result:
    individual: Dict[str, MetricRun] = field(default_factory=dict)
    no_share_mb: float = 0.0
    no_share_peak: float = 0.0
    share_mb: float = 0.0
    share_peak: float = 0.0
    no_share_series: List[Tuple[float, float]] = field(default_factory=list)
    share_series: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def saving(self) -> float:
        if not self.no_share_mb:
            return 0.0
        return 1.0 - self.share_mb / self.no_share_mb

    def report(self) -> str:
        rows = [
            (run.label, f"{run.total_mb:.2f}", f"{run.peak_kbps:.1f}")
            for run in self.individual.values()
        ]
        rows.append(("No-Share (concurrent)", f"{self.no_share_mb:.2f}",
                     f"{self.no_share_peak:.1f}"))
        rows.append(("Share (300 ms delay)", f"{self.share_mb:.2f}",
                     f"{self.share_peak:.1f}"))
        return "\n".join(
            [
                "Figure 12: opportunistic message sharing",
                format_table(("configuration", "total MB",
                              "peak per-node kBps"), rows),
                f"total saving: {100 * self.saving:.0f}% "
                f"(paper: 34%; peak 27 -> 16 kBps)",
                "[No-Share kBps] " + format_series(self.no_share_series),
                "[Share    kBps] " + format_series(self.share_series),
            ]
        )

    def check_shape(self) -> None:
        assert self.share_mb < self.no_share_mb
        assert self.share_peak < self.no_share_peak
        assert self.saving > 0.10


def _run_merged(overlay: Overlay, share: bool) -> Tuple[float, float, list]:
    program, link_loads = merged_program()
    config = RuntimeConfig(
        share_delay=SHARE_DELAY if share else None,
        share_specs=share_specs() if share else {},
    )
    deployment = api.compile(
        program, passes=["aggsel", "localize"]
    ).deploy(topology=overlay, config=config, link_loads=link_loads)
    deployment.advance()
    nodes = len(overlay.nodes)
    return (
        deployment.stats.total_mb(),
        deployment.stats.peak_per_node_kbps(nodes),
        deployment.stats.per_node_kbps_series(nodes),
    )


def run(
    overlay: Optional[Overlay] = None,
    scale: Optional[Scale] = None,
) -> Fig12Result:
    scale = scale or current_scale()
    overlay = overlay or default_overlay(scale)
    result = Fig12Result()
    for _suffix, metric in QUERIES:
        result.individual[metric] = run_shortest_path_metric(
            overlay, metric, metric.capitalize()
        )
    result.no_share_mb, result.no_share_peak, result.no_share_series = (
        _run_merged(overlay, share=False)
    )
    result.share_mb, result.share_peak, result.share_series = (
        _run_merged(overlay, share=True)
    )
    return result


if __name__ == "__main__":
    outcome = run()
    print(outcome.report())
    outcome.check_shape()

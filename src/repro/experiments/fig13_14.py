"""Figures 13 and 14: incremental query evaluation under bursty updates
(Sections 4 and 6.5).

"Each update burst involves randomly selecting 10% of all links, and
then updating the cost metric by up to 10%.  We use the shortest-path
random metric since it is the most demanding."

Figure 13 applies a burst every 10 seconds.  The paper's claims:

* re-convergence after each burst completes well before the next burst
  (the bandwidth spikes die out between bursts);
* each burst's traffic peaks at a small fraction of the from-scratch
  computation (32% of the peak, 26% of the aggregate in the paper).

Figure 14 interleaves 2 s and 8 s intervals, the former shorter than
the from-scratch convergence time: bursts sometimes arrive faster than
queries can run, yet peak usage stays at the incremental level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import api
from repro.experiments.common import (
    Scale,
    current_scale,
    default_overlay,
    format_series,
    format_table,
)
from repro.ndlog import programs
from repro.runtime import LinkUpdateDriver, RuntimeConfig
from repro.topology import Overlay


@dataclass
class DynamicRunResult:
    label: str
    initial_peak_kbps: float
    initial_mb: float
    burst_peak_kbps: float
    mean_burst_mb: float
    burst_times: List[float]
    bandwidth_series: List[Tuple[float, float]] = field(default_factory=list)
    consistent: bool = True

    @property
    def peak_fraction(self) -> float:
        return (self.burst_peak_kbps / self.initial_peak_kbps
                if self.initial_peak_kbps else 0.0)

    @property
    def aggregate_fraction(self) -> float:
        return self.mean_burst_mb / self.initial_mb if self.initial_mb else 0.0

    def report(self) -> str:
        return "\n".join(
            [
                f"{self.label}:",
                format_table(
                    ("initial peak kBps", "burst peak kBps", "peak %",
                     "initial MB", "mean burst MB", "aggregate %",
                     "eventually consistent"),
                    [(
                        f"{self.initial_peak_kbps:.1f}",
                        f"{self.burst_peak_kbps:.1f}",
                        f"{100 * self.peak_fraction:.0f}%",
                        f"{self.initial_mb:.2f}",
                        f"{self.mean_burst_mb:.2f}",
                        f"{100 * self.aggregate_fraction:.0f}%",
                        self.consistent,
                    )],
                ),
                "[kBps] " + format_series(self.bandwidth_series,
                                          max_points=20),
            ]
        )

    def check_shape(self) -> None:
        # Incremental maintenance is much cheaper than recomputation
        # (paper: 32% of peak, 26% of aggregate).
        assert self.burst_peak_kbps < self.initial_peak_kbps
        assert self.mean_burst_mb < 0.6 * self.initial_mb
        assert self.consistent


def _run_dynamic(
    overlay: Overlay,
    label: str,
    burst_times: Sequence[float],
    horizon: float,
    seed: int,
) -> DynamicRunResult:
    # The protocol form: path keyed on (src, dst, nexthop) holds each
    # neighbour's latest advertisement, and aggregate selections make
    # the advertised tuple the neighbour's best -- the combination that
    # is confluent under updates (Theorem 4; see DESIGN.md).
    #
    # Advertisements are coalesced in a short per-link window
    # (net-change elimination), the routing-protocol practice of spacing
    # triggered updates: a retraction immediately superseded by a
    # replacement advert never hits the wire.  The from-scratch phase of
    # the run uses the same configuration, so the burst-vs-initial
    # comparison is like for like.
    deployment = api.compile(
        programs.shortest_path_dynamic(), passes=["aggsel", "localize"]
    ).deploy(
        topology=overlay,
        config=RuntimeConfig(buffer_interval=0.2),
        link_loads={"link": "random"},
    )
    cluster = deployment.cluster
    driver = LinkUpdateDriver(cluster, metric="random", seed=seed)
    driver.schedule_bursts(burst_times)
    deployment.advance(until=horizon)
    deployment.advance()  # drain whatever is still in flight after the horizon

    node_count = len(overlay.nodes)
    series = cluster.stats.per_node_kbps_series(node_count)
    first_burst = burst_times[0]
    initial_peak = max((v for t, v in series if t <= first_burst),
                       default=0.0)
    burst_peak = max((v for t, v in series if t > first_burst),
                     default=0.0)
    initial_mb = cluster.stats.bytes_between(0.0, first_burst) / 1e6
    burst_bytes = cluster.stats.bytes_between(first_burst, float("inf"))
    mean_burst_mb = burst_bytes / len(burst_times) / 1e6

    consistent = _check_consistency(cluster, driver)
    return DynamicRunResult(
        label=label,
        initial_peak_kbps=initial_peak,
        initial_mb=initial_mb,
        burst_peak_kbps=burst_peak,
        mean_burst_mb=mean_burst_mb,
        burst_times=list(burst_times),
        bandwidth_series=series,
        consistent=consistent,
    )


def _check_consistency(cluster, driver: LinkUpdateDriver) -> bool:
    """Theorem 4: the quiesced state equals a from-scratch run on the
    final link costs (compared on shortest-path costs per pair)."""
    import heapq

    adjacency = {}
    for (a, b), cost in driver.costs.items():
        adjacency.setdefault(a, []).append((b, cost))
        adjacency.setdefault(b, []).append((a, cost))
    got = {}
    for s, d, _p, c in cluster.rows("shortestPath"):
        key = (s, d)
        if key[0] != key[1]:
            got[key] = min(c, got.get(key, float("inf")))
    for source in cluster.overlay.nodes:
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            dd, node = heapq.heappop(heap)
            if dd > dist.get(node, float("inf")):
                continue
            for nxt, w in adjacency.get(node, ()):
                nd = dd + w
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    heapq.heappush(heap, (nd, nxt))
        for target, want in dist.items():
            if target == source:
                continue
            if abs(got.get((source, target), float("inf")) - want) > 1e-6:
                return False
    return True


def run_fig13(
    overlay: Optional[Overlay] = None,
    scale: Optional[Scale] = None,
) -> DynamicRunResult:
    scale = scale or current_scale()
    overlay = overlay or default_overlay(scale)
    interval = scale.burst_interval
    times = [interval * (i + 1) for i in range(scale.burst_count)]
    horizon = times[-1] + interval
    return _run_dynamic(
        overlay, "Figure 13: periodic bursts (10s interval)",
        times, horizon, seed=scale.seed + 31,
    )


def run_fig14(
    overlay: Optional[Overlay] = None,
    scale: Optional[Scale] = None,
) -> DynamicRunResult:
    scale = scale or current_scale()
    overlay = overlay or default_overlay(scale)
    # Interleave 2s and 8s intervals, the former shorter than the
    # from-scratch convergence time.
    times = []
    time = scale.burst_interval
    for index in range(scale.burst_count * 2):
        times.append(time)
        time += 2.0 if index % 2 == 0 else 8.0
    horizon = times[-1] + scale.burst_interval
    return _run_dynamic(
        overlay, "Figure 14: interleaved bursts (2s / 8s)",
        times, horizon, seed=scale.seed + 32,
    )


if __name__ == "__main__":
    fig13 = run_fig13()
    print(fig13.report())
    fig13.check_shape()
    fig14 = run_fig14()
    print(fig14.report())
    fig14.check_shape()

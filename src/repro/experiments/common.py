"""Shared experiment scaffolding: scale selection, topologies, metric
runs, and report formatting.

Experiments default to a reduced scale so the benchmark suite completes
in minutes; set ``REPRO_SCALE=full`` for the paper's full 100-node
setup (and proportionally larger workloads).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import api
from repro.ndlog import programs
from repro.runtime import RuntimeConfig
from repro.topology import Overlay, build_overlay, transit_stub

#: The paper's four query variants, in its own label order.
METRIC_LABELS = (
    ("hopcount", "Hop-Count"),
    ("latency", "Latency"),
    ("reliability", "Reliability"),
    ("random", "Random"),
)


@dataclass(frozen=True)
class Scale:
    """Experiment scale parameters."""

    name: str
    n_nodes: int
    degree: int
    query_counts: Tuple[int, ...]       # Figure 11 x-axis
    burst_count: int                    # Figures 13/14
    burst_interval: float
    seed: int = 1

    @property
    def node_count(self) -> int:
        return self.n_nodes


FULL = Scale(
    name="full", n_nodes=100, degree=4,
    query_counts=(25, 50, 100, 170, 250),
    burst_count=10, burst_interval=10.0,
)
SMALL = Scale(
    name="small", n_nodes=48, degree=4,
    query_counts=(8, 24, 48, 96),
    burst_count=6, burst_interval=10.0,
)


def current_scale() -> Scale:
    return FULL if os.environ.get("REPRO_SCALE") == "full" else SMALL


def default_overlay(scale: Optional[Scale] = None) -> Overlay:
    scale = scale or current_scale()
    underlay = transit_stub(seed=scale.seed)
    return build_overlay(
        underlay, n_nodes=scale.n_nodes, degree=scale.degree,
        seed=scale.seed,
    )


@dataclass
class MetricRun:
    """Outcome of one shortest-path query run (one line of Figs 7-10)."""

    metric: str
    label: str
    convergence: float
    total_mb: float
    peak_kbps: float
    bandwidth_series: List[Tuple[float, float]] = field(default_factory=list)
    results_series: List[Tuple[float, float]] = field(default_factory=list)
    messages: int = 0


def run_shortest_path_metric(
    overlay: Overlay,
    metric: str,
    label: str = "",
    periodic_interval: Optional[float] = None,
    cpu_delay: float = 1e-3,
) -> MetricRun:
    """One line of Figures 7/8 (eager) or 9/10 (periodic)."""
    config = RuntimeConfig(
        buffer_interval=periodic_interval,
        cpu_delay=cpu_delay,
    )
    deployment = api.compile(
        programs.shortest_path(), passes=["aggsel", "localize"]
    ).deploy(topology=overlay, config=config, link_loads={"link": metric})
    tracker = deployment.watch("shortestPath")
    deployment.advance()
    node_count = len(overlay.nodes)
    return MetricRun(
        metric=metric,
        label=label or metric,
        convergence=tracker.convergence_time(),
        total_mb=deployment.stats.total_mb(),
        peak_kbps=deployment.stats.peak_per_node_kbps(node_count),
        bandwidth_series=deployment.stats.per_node_kbps_series(node_count),
        results_series=tracker.results_over_time(),
        messages=deployment.stats.messages,
    )


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A plain ASCII table, GitHub-markdown-ish."""
    columns = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(cells):
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, columns))
    out = [line(headers), "-+-".join("-" * w for w in columns)]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_series(
    series: List[Tuple[float, float]], max_points: int = 12, unit: str = ""
) -> str:
    """Downsample a (time, value) series for textual display."""
    if not series:
        return "(empty)"
    step = max(1, len(series) // max_points)
    samples = series[::step]
    if samples[-1] != series[-1]:
        samples.append(series[-1])
    return "  ".join(f"{t:.2f}s:{v:.1f}{unit}" for t, v in samples)

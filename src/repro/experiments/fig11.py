"""Figure 11: magic sets, predicate reordering, and result caching.

Section 6.3: source-to-destination path queries on the hop-count
metric.

* **No-MS** -- no rewrite: computing all-pairs least-hop-count once; its
  cost is flat in the number of queries.
* **MS** -- each query runs the magic-shortest-path program (top-down
  from the source, filtered at the destination); cost grows linearly
  and crosses No-MS (at 170 queries in the paper, around the node count
  in general: one magic query costs about one node's share of the
  all-pairs computation).
* **MSC** -- magic sets with query-result caching: answers returning
  along the reverse path install cache entries; later queries for a
  cached destination are answered mid-flight and their flood stops.
  Slight overhead at low query counts (false-positive cache answers),
  dramatic savings at high counts.
* **MSC-30% / MSC-10%** -- restricting destinations to 30% / 10% of the
  nodes raises the cache hit rate and lowers the plateau monotonically.

The multi-query form of the magic program (one compiled program, query
id carried in the tuples) keeps hundreds of concurrent queries cheap;
see repro.ndlog.programs.multi_query_magic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import api
from repro.experiments.common import (
    Scale,
    current_scale,
    default_overlay,
    format_table,
)
from repro.ndlog import programs
from repro.runtime import CachePolicy, RuntimeConfig
from repro.topology import Overlay
from repro.topology.neighborhood import hop_distances

#: Virtual seconds between query injections (queries overlap but
#: earlier answers have time to populate caches, as on the testbed).
QUERY_STAGGER = 0.25


@dataclass
class Fig11Result:
    query_counts: List[int]
    lines: Dict[str, List[float]] = field(default_factory=dict)  # name -> MB
    cache_hits: Dict[str, List[int]] = field(default_factory=dict)
    node_count: int = 0

    def report(self) -> str:
        rows = []
        for index, count in enumerate(self.query_counts):
            row = [count]
            for name in self.lines:
                row.append(f"{self.lines[name][index]:.2f}")
            rows.append(tuple(row))
        return "\n".join(
            [
                "Figure 11: aggregate communication (MB) vs number of queries",
                format_table(("queries", *self.lines.keys()), rows),
                f"cache hits (MSC): {self.cache_hits.get('MSC', [])}",
            ]
        )

    def check_shape(self) -> None:
        no_ms = self.lines["No-MS"]
        ms = self.lines["MS"]
        msc = self.lines["MSC"]
        msc30 = self.lines["MSC-30%"]
        msc10 = self.lines["MSC-10%"]
        # No-MS is flat; MS grows and crosses it by the largest count.
        assert max(no_ms) - min(no_ms) < 1e-9
        assert ms == sorted(ms)
        assert ms[0] < no_ms[0]
        assert ms[-1] > no_ms[-1]
        # Caching beats plain MS at the largest query count, and
        # restricting the destination pool helps monotonically.
        assert msc[-1] < ms[-1]
        assert msc30[-1] <= msc[-1]
        assert msc10[-1] <= msc30[-1]


def _query_workload(
    overlay: Overlay,
    count: int,
    destination_fraction: float,
    seed: int,
) -> List[Tuple[str, str]]:
    rng = random.Random(seed)
    nodes = list(overlay.nodes)
    pool_size = max(1, int(len(nodes) * destination_fraction))
    destinations = rng.sample(nodes, pool_size)
    out = []
    while len(out) < count:
        src = rng.choice(nodes)
        dst = rng.choice(destinations)
        if src != dst:
            out.append((src, dst))
    return out


def run_magic_queries(
    overlay: Overlay,
    queries: Sequence[Tuple[str, str]],
    caching: bool,
    verify: bool = False,
) -> Tuple[float, int]:
    """Run the multi-query magic program; returns (MB, cache hits)."""
    config = RuntimeConfig(
        cache=CachePolicy(query_pred="pathQ__best") if caching else None,
    )
    deployment = api.compile(
        programs.multi_query_magic(), passes=["aggsel", "localize"]
    ).deploy(topology=overlay, config=config, link_loads={"link": "hopcount"})
    for index, (src, dst) in enumerate(queries):
        qid = f"q{index}"
        deployment.at(
            index * QUERY_STAGGER,
            lambda s=src, d=dst, q=qid: deployment.inject(s, "magicQuery",
                                                          (s, q, d)),
        )
    deployment.advance()
    if verify:
        _verify_answers(deployment, overlay, queries)
    hits = sum(node.cache_hits for node in deployment.nodes.values())
    return deployment.stats.total_mb(), hits


def _verify_answers(deployment, overlay, queries) -> None:
    results = {}
    for args in deployment.rows("queryResult"):
        results[args[1]] = args[3]
    for index, (src, dst) in enumerate(queries):
        expected = hop_distances(overlay, src)[dst]
        got = results.get(f"q{index}")
        assert got == expected, (src, dst, got, expected)


def run_all_pairs_baseline(overlay: Overlay) -> float:
    deployment = api.compile(
        programs.shortest_path(), passes=["aggsel", "localize"]
    ).deploy(topology=overlay, link_loads={"link": "hopcount"})
    deployment.advance()
    return deployment.stats.total_mb()


def run(
    overlay: Optional[Overlay] = None,
    scale: Optional[Scale] = None,
    verify_first_point: bool = True,
) -> Fig11Result:
    scale = scale or current_scale()
    overlay = overlay or default_overlay(scale)
    counts = list(scale.query_counts)
    result = Fig11Result(query_counts=counts, node_count=len(overlay.nodes))

    baseline_mb = run_all_pairs_baseline(overlay)
    result.lines["No-MS"] = [baseline_mb] * len(counts)

    configs = [
        ("MS", 1.0, False),
        ("MSC", 1.0, True),
        ("MSC-30%", 0.3, True),
        ("MSC-10%", 0.1, True),
    ]
    for name, fraction, caching in configs:
        line: List[float] = []
        hits_line: List[int] = []
        for point, count in enumerate(counts):
            queries = _query_workload(overlay, count, fraction,
                                      seed=scale.seed + 17)
            verify = verify_first_point and point == 0 and name in ("MS", "MSC")
            mb, hits = run_magic_queries(overlay, queries, caching,
                                         verify=verify)
            line.append(mb)
            hits_line.append(hits)
        result.lines[name] = line
        result.cache_hits[name] = hits_line
    return result


if __name__ == "__main__":
    outcome = run()
    print(outcome.report())
    outcome.check_shape()

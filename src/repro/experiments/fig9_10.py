"""Figures 9 and 10: periodic aggregate selections.

Section 6.2: "this approach reduces the bandwidth usage of Hop-Count,
Latency, Reliability and Random by 17%, 12%, 16% and 29% respectively.
Random not only shows the greatest reduction in communication overhead,
its convergence time also reduces."

Outbound advertisements are buffered per link and flushed periodically
with net-change elimination, so best paths that flip several times
within a window are advertised once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments import fig7_8
from repro.experiments.common import (
    Scale,
    current_scale,
    default_overlay,
    format_table,
)
from repro.topology import Overlay

DEFAULT_INTERVAL = 0.4  # seconds


@dataclass
class Fig9And10Result:
    eager: fig7_8.Fig7And8Result
    periodic: fig7_8.Fig7And8Result
    interval: float = DEFAULT_INTERVAL

    def reduction(self, metric: str) -> float:
        before = self.eager.runs[metric].total_mb
        after = self.periodic.runs[metric].total_mb
        return 1.0 - after / before if before else 0.0

    def report(self) -> str:
        rows = []
        for metric, run in self.periodic.runs.items():
            rows.append(
                (
                    run.label,
                    f"{self.eager.runs[metric].total_mb:.2f}",
                    f"{run.total_mb:.2f}",
                    f"{100 * self.reduction(metric):.0f}%",
                    f"{self.eager.runs[metric].convergence:.2f}",
                    f"{run.convergence:.2f}",
                )
            )
        return "\n".join(
            [
                f"Figures 9/10: periodic aggregate selections "
                f"(interval {self.interval}s)",
                format_table(
                    ("query", "eager MB", "periodic MB", "reduction",
                     "eager conv (s)", "periodic conv (s)"),
                    rows,
                ),
                self.periodic.report(),
            ]
        )

    def check_shape(self) -> None:
        # Periodic buffering reduces every query's traffic (the paper's
        # 17/12/16/29% row), with Random benefiting the most in absolute
        # MB terms.
        reductions = {m: self.reduction(m) for m in self.periodic.runs}
        for metric, reduction in reductions.items():
            assert reduction > 0.0, (metric, reduction)
        saved = {
            m: self.eager.runs[m].total_mb - self.periodic.runs[m].total_mb
            for m in self.periodic.runs
        }
        assert saved["random"] == max(saved.values())


def run(
    overlay: Optional[Overlay] = None,
    scale: Optional[Scale] = None,
    interval: float = DEFAULT_INTERVAL,
) -> Fig9And10Result:
    scale = scale or current_scale()
    overlay = overlay or default_overlay(scale)
    eager = fig7_8.run(overlay=overlay, scale=scale)
    periodic = fig7_8.run(overlay=overlay, scale=scale,
                          periodic_interval=interval)
    return Fig9And10Result(eager=eager, periodic=periodic, interval=interval)


if __name__ == "__main__":
    outcome = run()
    print(outcome.report())
    outcome.check_shape()

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing parse-time, validation-time, and run-time problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class NDlogSyntaxError(ReproError):
    """Raised by the lexer/parser on malformed NDlog source.

    Carries the source line and column to make errors actionable.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class NDlogValidationError(ReproError):
    """Raised when a syntactically valid program violates NDlog's
    semantic constraints (Definitions 1-6 of the paper): location
    specificity, address type safety, stored link relations, or
    link-restriction."""


class SchemaError(ReproError):
    """Raised on inconsistent relation schemas (arity mismatches,
    unknown predicates, bad primary-key declarations)."""


class EvaluationError(ReproError):
    """Raised during query evaluation (unbound variables reaching a
    function call, non-boolean conditions, unknown builtin functions).

    ``engine`` and ``rule`` identify, when known, which engine raised
    and which rule (by label) was firing; both are attached to the
    message and kept as attributes for programmatic handling.
    """

    def __init__(self, message: str, engine: str = None, rule: str = None):
        self.engine = engine
        self.rule = rule
        self.raw_message = message
        context = []
        if engine:
            context.append(f"engine {engine!r}")
        if rule:
            context.append(f"rule {rule!r}")
        if context:
            message = f"[{', '.join(context)}] {message}"
        super().__init__(message)


class PlanError(ReproError):
    """Raised during plan generation (localization, magic-sets, or
    strand compilation) when a program cannot be compiled.

    ``pass_name`` and ``rule`` identify, when known, which optimization
    pass of the compile pipeline failed and which rule (by label) it was
    processing; both are attached to the message and kept as attributes
    for programmatic handling.
    """

    def __init__(self, message: str, pass_name: str = None, rule: str = None):
        self.pass_name = pass_name
        self.rule = rule
        self.raw_message = message
        context = []
        if pass_name:
            context.append(f"pass {pass_name!r}")
        if rule:
            context.append(f"rule {rule!r}")
        if context:
            message = f"[{', '.join(context)}] {message}"
        super().__init__(message)


class NetworkError(ReproError):
    """Raised by the network layer on misuse (sending along a
    non-existent link, invalid chaos schedules) and on malformed wire
    data: ``decode_message`` converts any decode failure to this type,
    so live receive paths absorb garbage datagrams with one
    taxonomy-stable except clause instead of dying on a bare
    ``KeyError``/``JSONDecodeError``."""


class StaticAnalysisError(ReproError):
    """Raised by ``compile(..., lint="error")`` when the ndlint
    analyses find diagnostics at warning severity or above.

    ``report`` carries the full
    :class:`~repro.analysis.diagnostics.AnalysisReport` so callers can
    inspect every finding, not just the ones quoted in the message.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)

"""Provenance queries: ``why`` derivation trees and ``why_not``
failed-body analysis.

``why`` answers "how was this tuple derived?": it walks the recorded
derivation graph from the tuple down to base facts, yielding a
:class:`DerivationTree` whose leaves are exactly the base-table facts
the derivation rests on (for shortest-path, the ``link`` facts along
the path).  Recursion through cyclic rule sets is cut with a
path-guard: a fact re-entered on its own support path becomes a
``truncated`` node instead of a loop.

``why_not`` answers "why is this tuple absent?" without needing capture
at all: for each rule whose head could produce the tuple, the body is
replayed left-to-right against the *current* table state, and the first
body item with no satisfying facts is reported as the blocker -- with a
bounded recursive analysis of *that* literal's absence, so a missing
route traces down to the missing link.  This is the stratified-rule-set
analysis: rules are taken from the (pre-localization) program text, and
table state is read through a ``rows_of`` callable so the same code
serves a centralized database and the union view of a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.engine.facts import Fact
from repro.engine.rules import unify_literal
from repro.errors import ReproError
from repro.ndlog.ast import Assignment, Condition, Literal, Program, Rule
from repro.ndlog.pretty import format_body_item
from repro.ndlog.terms import (
    AggregateSpec,
    Constant,
    Variable,
    evaluate,
)
from repro.provenance.store import ProvenanceStore

#: Bound on the binding sets explored per rule body in why_not (the
#: analysis is diagnostic, not exhaustive).
BRANCH_LIMIT = 64
#: Default depth bound for why trees (recursive rules are additionally
#: cut by the path guard, so this only caps pathological chains).
MAX_WHY_DEPTH = 128


# ----------------------------------------------------------------------
# why: derivation trees
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DerivationTree:
    """One node of a ``why`` answer.

    ``rule is None`` marks a base fact (a leaf);  ``truncated`` marks a
    cycle/depth cut -- the fact *has* further provenance that is not
    expanded.  ``alternatives`` counts the live derivations the store
    holds for this fact (the tree expands the most recent one).
    """

    fact: Fact
    rule: Optional[str] = None
    node: Optional[str] = None
    time: float = 0.0
    children: Tuple["DerivationTree", ...] = ()
    truncated: bool = False
    alternatives: int = 0

    @property
    def is_base(self) -> bool:
        return self.rule is None and not self.truncated

    def leaves(self) -> List[Fact]:
        """The base facts this derivation rests on (unique, pre-order)."""
        out: List[Fact] = []
        seen: Set[Fact] = set()
        stack = [self]
        while stack:
            tree = stack.pop()
            if tree.is_base:
                if tree.fact not in seen:
                    seen.add(tree.fact)
                    out.append(tree.fact)
                continue
            stack.extend(reversed(tree.children))
        return out

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def __repr__(self) -> str:
        kind = "base" if self.is_base else (self.rule or "?")
        return f"DerivationTree({self.fact!r}, {kind}, {len(self.children)} children)"


def why(
    store: ProvenanceStore,
    pred: str,
    args: Tuple,
    max_depth: int = MAX_WHY_DEPTH,
) -> Optional[DerivationTree]:
    """The derivation tree for ``pred(args)``, or ``None`` when the
    store holds no live support for it (then ask :func:`why_not`)."""
    fact = Fact(pred, tuple(args))
    return _build_tree(store, fact, frozenset(), max_depth, frozenset())


def _build_tree(
    store: ProvenanceStore,
    fact: Fact,
    path: frozenset,
    depth: int,
    context: frozenset,
) -> Optional[DerivationTree]:
    if fact in path or depth <= 0:
        return DerivationTree(fact, truncated=True)
    records = store.live_records(fact)
    if not records:
        if store.base_count(fact) > 0:
            return DerivationTree(fact)
        return None
    # ``context`` holds this fact's siblings in the parent derivation.
    # Among alternative derivations (an aggregate value may be achieved
    # by several equal-valued contributions) prefer the one whose body
    # facts cohere with those siblings -- e.g. the spCost subtree of a
    # shortestPath derivation then follows the *same* path witness the
    # head joined against, not an arbitrary equal-cost route.
    def preference(rec):
        overlap = sum(
            1 for body_id in rec.body_ids
            if store.fact_of(body_id) in context
        )
        return (overlap, rec.id)

    rec = max(records, key=preference)
    child_path = path | {fact}
    body_facts = [store.fact_of(body_id) for body_id in rec.body_ids]
    children: List[DerivationTree] = []
    for index, body_fact in enumerate(body_facts):
        siblings = frozenset(
            sibling for j, sibling in enumerate(body_facts) if j != index
        )
        child = _build_tree(store, body_fact, child_path, depth - 1,
                            siblings)
        if child is None:
            # A body fact with no recorded support of its own (e.g. rows
            # loaded outside the capture window): render it as a leaf.
            child = DerivationTree(body_fact)
        children.append(child)
    return DerivationTree(
        fact=fact,
        rule=rec.rule,
        node=rec.node,
        time=rec.time,
        children=tuple(children),
        alternatives=len(records),
    )


# ----------------------------------------------------------------------
# why_not: failed-body analysis
# ----------------------------------------------------------------------
@dataclass
class RuleFailure:
    """Outcome of replaying one rule body for an absent head tuple."""

    rule: str
    #: ``blocked`` (a body item had no satisfying facts), ``satisfiable``
    #: (the body has a full match -- the tuple should exist; seeing this
    #: at quiescence indicates an engine bug), or ``head-mismatch`` (the
    #: requested constants cannot unify with the rule head).
    status: str
    blocker: Optional[str] = None        # formatted body item, if blocked
    bindings: Dict[str, object] = field(default_factory=dict)
    nested: Optional["WhyNotReport"] = None


@dataclass
class WhyNotReport:
    """Answer to "why is ``pred(args)`` absent?".

    ``args`` entries may be ``None`` as wildcards.  ``present`` short-
    circuits the analysis when the tuple (pattern) actually exists;
    ``is_base`` marks predicates no rule derives (the answer is then
    simply "never inserted").
    """

    pred: str
    args: Tuple
    present: bool
    is_base: bool
    failures: List[RuleFailure] = field(default_factory=list)

    @property
    def blocked_on(self) -> List[str]:
        return [f.blocker for f in self.failures
                if f.status == "blocked" and f.blocker]


def why_not(
    program: Program,
    rows_of: Callable[[str], Sequence[Tuple]],
    pred: str,
    args: Tuple,
    functions: Optional[Dict] = None,
    depth: int = 2,
    _seen: Optional[Set] = None,
) -> WhyNotReport:
    """Failed-body analysis for the absent tuple ``pred(args)``.

    ``rows_of`` maps a predicate to its current rows (return ``()`` for
    unknown predicates); ``depth`` bounds the recursive analysis of
    blocking literals.  ``args`` may contain ``None`` wildcards.
    """
    if functions is None:
        from repro.ndlog.functions import default_functions
        functions = default_functions()
    args = tuple(args)
    seen = _seen if _seen is not None else set()
    seen.add((pred, args))

    present = any(_matches_pattern(row, args) for row in rows_of(pred))
    rules = [r for r in program.rules if r.body and r.head.pred == pred]
    report = WhyNotReport(
        pred=pred, args=args, present=present, is_base=not rules
    )
    if present or not rules:
        return report
    for rule in rules:
        report.failures.append(
            _replay_rule(rule, rows_of, args, functions, depth, seen, program)
        )
    return report


def _matches_pattern(row: Tuple, pattern: Tuple) -> bool:
    if len(row) != len(pattern):
        return False
    return all(want is None or want == got for want, got in zip(pattern, row))


def _unify_head(rule: Rule, args: Tuple) -> Optional[Dict[str, object]]:
    """Bind head variables from the requested tuple; ``None`` on a
    constant mismatch.  Aggregate and expression positions bind nothing
    (they are treated as wildcards)."""
    if rule.head.arity != len(args):
        return None
    bindings: Dict[str, object] = {}
    for term, value in zip(rule.head.args, args):
        if value is None:
            continue
        if isinstance(term, Variable):
            bound = bindings.get(term.name, _MISSING)
            if bound is _MISSING:
                bindings[term.name] = value
            elif bound != value:
                return None
        elif isinstance(term, Constant):
            if term.value != value:
                return None
        # AggregateSpec / expressions: wildcard.
    return bindings


_MISSING = object()


def _replay_rule(
    rule: Rule,
    rows_of: Callable[[str], Sequence[Tuple]],
    args: Tuple,
    functions: Dict,
    depth: int,
    seen: Set,
    program: Program,
) -> RuleFailure:
    label = rule.label or repr(rule.head)
    head_bindings = _unify_head(rule, args)
    if head_bindings is None:
        return RuleFailure(rule=label, status="head-mismatch")

    candidates: List[Dict[str, object]] = [head_bindings]
    for item in rule.body:
        if isinstance(item, Literal):
            extended: List[Dict[str, object]] = []
            rows = rows_of(item.pred)
            for bindings in candidates:
                for row in rows:
                    try:
                        new = unify_literal(item, row, bindings, functions)
                    except ReproError:
                        # An embedded expression with unbound inputs:
                        # this row cannot be checked -- skip it.
                        continue
                    if new is not None:
                        extended.append(new)
                        if len(extended) >= BRANCH_LIMIT:
                            break
                if len(extended) >= BRANCH_LIMIT:
                    break
            if not extended:
                sample = candidates[0]
                nested = None
                pattern = _literal_pattern(item, sample, functions)
                if depth > 0 and (item.pred, pattern) not in seen:
                    nested = why_not(
                        program, rows_of, item.pred, pattern,
                        functions=functions, depth=depth - 1, _seen=seen,
                    )
                return RuleFailure(
                    rule=label,
                    status="blocked",
                    blocker=format_body_item(item),
                    bindings=dict(sample),
                    nested=nested,
                )
            candidates = extended
            continue
        if isinstance(item, Assignment):
            next_candidates: List[Dict[str, object]] = []
            for bindings in candidates:
                if item.expr.variables() <= set(bindings):
                    value = evaluate(item.expr, bindings, functions)
                    name = item.var.name
                    bound = bindings.get(name, _MISSING)
                    if bound is _MISSING:
                        new = dict(bindings)
                        new[name] = value
                        next_candidates.append(new)
                    elif bound == value:
                        next_candidates.append(bindings)
                    # else: this candidate contradicts the requested
                    # head value -- drop it.
                else:
                    next_candidates.append(bindings)  # not yet decidable
            if not next_candidates:
                return RuleFailure(
                    rule=label,
                    status="blocked",
                    blocker=format_body_item(item),
                    bindings=dict(candidates[0]),
                )
            candidates = next_candidates
            continue
        if isinstance(item, Condition):
            surviving = []
            decidable = False
            for bindings in candidates:
                if item.variables() <= set(bindings):
                    decidable = True
                    if evaluate(item.expr, bindings, functions):
                        surviving.append(bindings)
                else:
                    surviving.append(bindings)
            if decidable and not surviving:
                return RuleFailure(
                    rule=label,
                    status="blocked",
                    blocker=format_body_item(item),
                    bindings=dict(candidates[0]),
                )
            candidates = surviving or candidates
            continue
    return RuleFailure(
        rule=label, status="satisfiable", bindings=dict(candidates[0])
    )


def _literal_pattern(literal: Literal, bindings: Dict[str, object],
                     functions: Dict) -> Tuple:
    """The (partially bound) argument pattern of a blocking literal:
    constants and bound variables keep their values, everything else is
    a ``None`` wildcard."""
    pattern: List[object] = []
    for term in literal.args:
        if isinstance(term, Constant):
            pattern.append(term.value)
        elif isinstance(term, Variable):
            pattern.append(bindings.get(term.name))
        elif isinstance(term, AggregateSpec):
            pattern.append(None)
        else:
            names = term.variables()
            if names <= set(bindings):
                try:
                    pattern.append(evaluate(term, bindings, functions))
                except ReproError:
                    pattern.append(None)
            else:
                pattern.append(None)
    return tuple(pattern)

"""Network provenance: derivation capture, why/why-not queries, and the
count/graph auditor.

Enable capture at compile time and query it on any execution target::

    compiled = repro.compile(SOURCE, provenance=True)

    result = compiled.run(engine="psn", facts={"link": LINKS})
    tree = result.why("shortestPath", row)          # DerivationTree
    print(repro.ndlog.pretty.format_derivation(tree))

    deployment = compiled.deploy(topology=overlay)
    deployment.advance()
    tree = deployment.why("shortestPath", row)       # distributed lineage
    report = deployment.why_not("shortestPath", (src, dst, None, None))
    audit = deployment.audit()                       # counts vs graph

Capture is off by default and every engine hook is a single ``None``
check, so disabled runs pay nothing.  See the submodules for the data
model (:mod:`~repro.provenance.store`), the query algorithms
(:mod:`~repro.provenance.query`), and the consistency oracle
(:mod:`~repro.provenance.audit`).
"""

from repro.provenance.audit import (
    AuditMismatch,
    AuditReport,
    audit_cluster,
    audit_engine,
)
from repro.provenance.query import (
    DerivationTree,
    RuleFailure,
    WhyNotReport,
    why,
    why_not,
)
from repro.provenance.store import (
    Arrival,
    Derivation,
    ProvenanceRecorder,
    ProvenanceStore,
)

__all__ = [
    "Arrival",
    "AuditMismatch",
    "AuditReport",
    "Derivation",
    "DerivationTree",
    "ProvenanceRecorder",
    "ProvenanceStore",
    "RuleFailure",
    "WhyNotReport",
    "audit_cluster",
    "audit_engine",
    "why",
    "why_not",
]

"""The provenance auditor: cross-check table derivation counts against
the derivation graph.

The PSN commit discipline keeps a Gupta-style derivation count per
stored tuple; the provenance store keeps an independent ledger of the
same events (rule firings, base inserts/deletes, wholesale
retractions).  At quiescence the two must agree -- which turns
provenance capture into a regression oracle for exactly the machinery
we keep optimizing: queue-level cancellation, run-batched strand
firing, netted aggregate views, primary-key replacement.

Checks, per stored tuple:

* **count** (strict mode) -- for plain derived/base relations, the
  table's derivation count must equal the store's live support
  (base events + live derivation records);
* **support** -- aggregate / arg-extreme view heads only need at least
  one live supporting record (several equal-valued contributions merge
  into one visible row, so exact equality is not defined for them);
* **orphans** (strict mode) -- a fact with live support in the store
  must be visible in its table ("the graph says it exists, the table
  disagrees").

Strict mode is automatically dropped to support-only when the transport
is allowed to elide or lose deltas (periodic buffering dedupes
re-advertisements; lossy links drop firings that were recorded at the
sender), and soft-state tables are always exempt (TTL refreshes bump
counts invisibly to the graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.engine.facts import Fact
from repro.engine.table import INFINITY
from repro.provenance.store import ProvenanceStore


@dataclass(frozen=True)
class AuditMismatch:
    node: Optional[str]
    fact: Fact
    kind: str            # "count" | "support" | "orphan"
    table_count: int
    store_support: int

    def __repr__(self) -> str:
        where = f" @ {self.node}" if self.node else ""
        return (
            f"{self.kind}{where}: {self.fact!r} "
            f"(table={self.table_count}, store={self.store_support})"
        )


@dataclass
class AuditReport:
    mismatches: List[AuditMismatch] = field(default_factory=list)
    checked: int = 0
    strict: bool = True
    floored: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.mismatches)} mismatches"
        mode = "strict" if self.strict else "support-only"
        return f"AuditReport({status}, {self.checked} facts, {mode})"


def _audit_tables(
    report: AuditReport,
    store: ProvenanceStore,
    db,
    node: Optional[str],
    strict: bool,
) -> None:
    for table in db.tables.values():
        if table.lifetime != INFINITY:
            continue  # soft state: TTL refreshes are invisible to the graph
        is_view = table.name in store.view_preds
        for args in table.rows():
            fact = Fact(table.name, args)
            support = store.live_support(fact)
            report.checked += 1
            if is_view or not strict:
                if support <= 0:
                    report.mismatches.append(AuditMismatch(
                        node, fact, "support", table.count(args), support
                    ))
            elif support != table.count(args):
                report.mismatches.append(AuditMismatch(
                    node, fact, "count", table.count(args), support
                ))


def audit_engine(engine, strict: bool = True) -> AuditReport:
    """Audit one centralized engine (PSN/BSN) against its recorder's
    store.  Call at quiescence."""
    recorder = getattr(engine, "provenance", None)
    if recorder is None:
        raise ValueError("engine was built without provenance capture")
    store = recorder.store
    report = AuditReport(strict=strict, floored=store.floored)
    _audit_tables(report, store, engine.db, None, strict)
    if strict:
        for fact, support in store.known_facts():
            if support <= 0 or fact.pred in store.view_preds:
                continue
            table = engine.db.tables.get(fact.pred)
            if table is None or table.lifetime != INFINITY:
                continue
            if fact.args not in table:
                report.mismatches.append(AuditMismatch(
                    None, fact, "orphan", 0, support
                ))
    return report


def audit_cluster(cluster, strict: Optional[bool] = None,
                  exclude_nodes: Iterable[str] = ()) -> AuditReport:
    """Audit a deployed cluster (simulated or live) against its shared
    store.  Call at quiescence.

    ``strict=None`` auto-selects: exact count equality when the
    transport delivers every delta eagerly, support-only when periodic
    buffering or lossy links may legitimately elide recorded firings.

    ``exclude_nodes`` skips those nodes' tables (and orphan checks homed
    there).  Nodes a chaos schedule crashed for good are always skipped:
    their tables froze mid-churn while the shared store kept moving, so
    disagreement is the *expected* outcome, not a maintenance bug.
    """
    store = getattr(cluster, "provenance", None)
    if store is None:
        raise ValueError(
            "cluster was deployed without provenance capture "
            "(compile(..., provenance=True))"
        )
    skipped = set(exclude_nodes)
    chaos = getattr(cluster, "chaos", None)
    if chaos is not None:
        skipped.update(chaos.dead_nodes(float("inf")))
    if strict is None:
        config = cluster.config
        # Exact counting needs every recorded firing delivered exactly
        # once: no periodic elision, no unreliable loss (the reliable
        # transport restores delivery under loss), and no chaos faults
        # (a crashed-for-good node legitimately never materializes
        # firings recorded at its peers).
        strict = (
            not config.buffer_interval
            and (not config.loss_rate or config.reliable)
            and config.chaos is None
        )
    report = AuditReport(strict=strict, floored=store.floored)
    for name, runtime in cluster.nodes.items():
        if name in skipped:
            continue
        _audit_tables(report, store, runtime.db, name, strict)
    if strict:
        for fact, support in store.known_facts():
            if support <= 0 or fact.pred in store.view_preds:
                continue
            if fact.args and fact.args[0] in skipped:
                continue
            home = cluster.nodes.get(fact.args[0]) if fact.args else None
            if home is None:
                continue
            table = home.db.tables.get(fact.pred)
            if table is None or table.lifetime != INFINITY:
                continue
            if fact.args not in table:
                report.mismatches.append(AuditMismatch(
                    home.address, fact, "orphan", 0, support
                ))
    return report

"""Derivation-provenance capture: the store and the per-engine recorder.

The engines prove *that* a tuple holds (Gupta-style derivation counts in
the PSN/BSN commit discipline); this module remembers *how*.  Every rule
firing is recorded as a :class:`Derivation` -- ``rule`` fired at ``node``
at ``time``, grounding ``head`` from the ground ``body`` facts -- and
external base-table changes are recorded as base events.  The result is
a queryable derivation graph (:mod:`repro.provenance.query` builds
``why`` trees over it) and an independent count ledger
(:mod:`repro.provenance.audit` cross-checks it against the tables).

Compactness: facts are interned once (an integer id per distinct ground
tuple) and derivations are merged by ``(head, rule, body, node)`` with a
live count, so a burst that re-derives the same join a thousand times
costs one record and a counter.

Lifecycle mirrors the commit discipline of :mod:`repro.engine.psn`:

* a ``+1`` firing increments the record's live count, a ``-1`` firing
  decrements it (deletion strands re-derive the same bindings while the
  dying fact is still visible, so the keys match exactly);
* a primary-key replacement or forced deletion kills *all* of a fact's
  live support at once (:meth:`ProvenanceStore.retract_fact`), exactly
  as the table drops the row regardless of its count;
* aggregate / arg-extreme view heads are exempt from that wholesale
  retraction (:attr:`ProvenanceStore.view_preds`): their ``-1`` table
  deltas are view *outputs*, while the underlying contributions live and
  die with their own +/- firings -- which is what lets a previously
  displaced aggregate value be re-promoted with its provenance intact;
* a ``-1`` with no live record to decrement is *floored* (counted in
  :attr:`ProvenanceStore.floored`), mirroring "a deletion of a fact that
  was superseded in the meantime commits as a no-op".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.engine.facts import Fact

#: Bound on the arrival log (one entry per tagged remote delta); the
#: derivation records themselves are merged and stay proportional to the
#: number of *distinct* derivations, but arrivals are raw events.
MAX_ARRIVALS = 65_536


class Derivation(NamedTuple):
    """One resolved provenance record (the public view of a record)."""

    id: int
    rule: Optional[str]          # ``None`` marks a base-table event
    head: Fact
    body: Tuple[Fact, ...]
    node: Optional[str]          # node whose strand fired (None: centralized)
    time: float
    count: int                   # live derivations merged into this record


class _Record:
    __slots__ = ("id", "rule", "head_id", "body_ids", "node", "time",
                 "count", "total")

    def __init__(self, rec_id: int, rule: str, head_id: int,
                 body_ids: Tuple[int, ...], node: Optional[str], time: float):
        self.id = rec_id
        self.rule = rule
        self.head_id = head_id
        self.body_ids = body_ids
        self.node = node
        self.time = time
        self.count = 0
        self.total = 0


class Arrival(NamedTuple):
    """A provenance tag consumed off the wire at the receiving node."""

    fact: Fact
    prov_id: Optional[int]       # derivation id at the producing node
    node: str                    # receiving node
    time: float


class ProvenanceStore:
    """The derivation graph for one evaluation or one deployment.

    A deployment shares one store across all node runtimes (records are
    tagged with the firing node), so a tuple materialized at node X is
    traced through the rules and links that produced it at other nodes
    without any cross-node query protocol.
    """

    def __init__(self):
        self._fact_ids: Dict[Fact, int] = {}
        self._facts: List[Fact] = []
        #: (head_id, rule, body_ids, node) -> record
        self._records: Dict[Tuple, _Record] = {}
        self._by_head: Dict[int, List[_Record]] = {}
        self._by_id: Dict[int, _Record] = {}
        #: head_id -> live / total base-event counts
        self._base: Dict[int, int] = {}
        self._base_total: Dict[int, int] = {}
        self.arrivals: "deque[Arrival]" = deque(maxlen=MAX_ARRIVALS)
        #: Aggregate / arg-extreme view head predicates: exempt from
        #: wholesale retraction (see module docstring).
        self.view_preds: set = set()
        self.floored = 0
        self.events = 0
        self._next_id = 1

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def intern(self, fact: Fact) -> int:
        fid = self._fact_ids.get(fact)
        if fid is None:
            fid = len(self._facts)
            self._fact_ids[fact] = fid
            self._facts.append(fact)
        return fid

    def fact_of(self, fid: int) -> Fact:
        return self._facts[fid]

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        rule: str,
        head: Fact,
        body: Sequence[Fact],
        sign: int,
        node: Optional[str] = None,
        time: float = 0.0,
        dedup: bool = False,
    ) -> Optional[int]:
        """Record one signed rule firing; returns the record id (``None``
        for a floored retraction).  ``dedup=True`` gives set semantics
        (re-recording a live derivation does not bump its count) -- used
        by the iterate-to-fixpoint engines, which legitimately re-derive
        the same join every iteration."""
        self.events += 1
        # Interning inlined: this runs once per rule firing, and the
        # method-call overhead of intern() is measurable there.
        fact_ids = self._fact_ids
        facts = self._facts
        head_id = fact_ids.get(head)
        if head_id is None:
            head_id = len(facts)
            fact_ids[head] = head_id
            facts.append(head)
        ids: List[int] = []
        for body_fact in body:
            fid = fact_ids.get(body_fact)
            if fid is None:
                fid = len(facts)
                fact_ids[body_fact] = fid
                facts.append(body_fact)
            ids.append(fid)
        body_ids = tuple(ids)
        key = (head_id, rule, body_ids, node)
        rec = self._records.get(key)
        if sign > 0:
            if rec is None:
                rec = _Record(self._next_id, rule, head_id, body_ids, node,
                              time)
                self._next_id += 1
                self._records[key] = rec
                self._by_head.setdefault(head_id, []).append(rec)
                self._by_id[rec.id] = rec
            elif dedup and rec.count > 0:
                return rec.id
            rec.count += 1
            rec.total += 1
            return rec.id
        if rec is None or rec.count <= 0:
            self.floored += 1
            return None
        rec.count -= 1
        return rec.id

    def record_base(self, fact: Fact, weight: int, node: Optional[str] = None,
                    time: float = 0.0) -> None:
        """Record an external base-table change as a Z-set weight:
        ``+w`` base insertions or ``-w`` deletions in one event (a
        seeded multiplicity arrives as a single weighted call).  The
        live count clamps at zero; the shortfall is floored exactly as
        the unit path floored each over-delete."""
        self.events += 1
        fid = self.intern(fact)
        if weight > 0:
            self._base[fid] = self._base.get(fid, 0) + weight
            self._base_total[fid] = self._base_total.get(fid, 0) + weight
        else:
            need = -weight
            live = self._base.get(fid, 0)
            take = min(live, need)
            self.floored += need - take
            if take:
                self._base[fid] = live - take

    def retract_fact(self, fact: Fact) -> None:
        """Kill all live support for ``fact`` (replacement / forced
        deletion dropped the row wholesale).  View-head predicates are
        exempt -- their support is managed purely by +/- firings."""
        if fact.pred in self.view_preds:
            return
        fid = self._fact_ids.get(fact)
        if fid is None:
            return
        if self._base.get(fid):
            self._base[fid] = 0
        for rec in self._by_head.get(fid, ()):
            rec.count = 0

    def note_arrival(self, fact: Fact, prov_id: Optional[int], node: str,
                     time: float = 0.0) -> None:
        """A remote delta carrying a provenance tag materialized here."""
        self.arrivals.append(Arrival(fact, prov_id, node, time))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def base_count(self, fact: Fact) -> int:
        fid = self._fact_ids.get(fact)
        return self._base.get(fid, 0) if fid is not None else 0

    def live_records(self, fact: Fact) -> List[_Record]:
        fid = self._fact_ids.get(fact)
        if fid is None:
            return []
        return [rec for rec in self._by_head.get(fid, ()) if rec.count > 0]

    def live_support(self, fact: Fact) -> int:
        """Live base events plus live derivation count for ``fact``."""
        fid = self._fact_ids.get(fact)
        if fid is None:
            return 0
        support = self._base.get(fid, 0)
        for rec in self._by_head.get(fid, ()):
            support += rec.count
        return support

    def latest_live_id(self, fact: Fact) -> Optional[int]:
        """The most recent live derivation id for ``fact`` (the tag a
        shipped delta piggybacks), or ``None``."""
        best: Optional[int] = None
        for rec in self.live_records(fact):
            if best is None or rec.id > best:
                best = rec.id
        return best

    def derivation(self, rec_id: int) -> Optional[Derivation]:
        rec = self._by_id.get(rec_id)
        if rec is None:
            return None
        return self._resolve(rec)

    def derivations_of(self, pred: str, args: Tuple,
                       live_only: bool = True) -> List[Derivation]:
        fid = self._fact_ids.get(Fact(pred, tuple(args)))
        if fid is None:
            return []
        return [
            self._resolve(rec)
            for rec in self._by_head.get(fid, ())
            if rec.count > 0 or not live_only
        ]

    def known_facts(self):
        """Iterate ``(fact, live_support)`` over every fact the store has
        seen (audit uses this for the orphan sweep)."""
        for fact, fid in self._fact_ids.items():
            support = self._base.get(fid, 0)
            for rec in self._by_head.get(fid, ()):
                support += rec.count
            yield fact, support

    def _resolve(self, rec: _Record) -> Derivation:
        return Derivation(
            id=rec.id,
            rule=rec.rule,
            head=self._facts[rec.head_id],
            body=tuple(self._facts[b] for b in rec.body_ids),
            node=rec.node,
            time=rec.time,
            count=rec.count,
        )

    def stats(self) -> Dict[str, int]:
        return {
            "facts": len(self._facts),
            "records": len(self._records),
            "live_records": sum(
                1 for r in self._by_id.values() if r.count > 0
            ),
            "events": self.events,
            "floored": self.floored,
            "arrivals": len(self.arrivals),
        }

    # ------------------------------------------------------------------
    # Recorder factory
    # ------------------------------------------------------------------
    def recorder(self, node: Optional[str] = None,
                 clock: Optional[Callable[[], float]] = None,
                 dedup: bool = False) -> "ProvenanceRecorder":
        return ProvenanceRecorder(self, node=node, clock=clock, dedup=dedup)

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"ProvenanceStore(facts={s['facts']}, records={s['records']}, "
            f"live={s['live_records']}, events={s['events']})"
        )


class ProvenanceRecorder:
    """One engine's (or node's) handle on a shared store.

    Binds the node name and clock once so the engine hot paths pass only
    what varies per firing.  The engines hold ``provenance=None`` when
    capture is off; every hook site is guarded by that single ``None``
    check, which is the entire cost of the feature when disabled.
    """

    __slots__ = ("store", "node", "clock", "dedup")

    def __init__(self, store: ProvenanceStore, node: Optional[str] = None,
                 clock: Optional[Callable[[], float]] = None,
                 dedup: bool = False):
        self.store = store
        self.node = node
        self.clock = clock
        self.dedup = dedup

    def now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def bind(self, clock: Optional[Callable[[], float]] = None,
             dedup: Optional[bool] = None) -> "ProvenanceRecorder":
        """A derived recorder on the same store with ``clock`` / ``dedup``
        overridden.  Engines bind their own clock and capture semantics
        through this instead of mutating the recorder they were handed,
        so one recorder can safely be shared across runs."""
        return ProvenanceRecorder(
            self.store,
            node=self.node,
            clock=self.clock if clock is None else clock,
            dedup=self.dedup if dedup is None else dedup,
        )

    def capture(self, crule, bindings: Dict[str, object], head: Tuple,
                sign: int, functions: Dict) -> Optional[int]:
        """Record one rule firing: the body facts are re-grounded from
        the solution bindings (see ``CompiledRule.ground_body``), so the
        join executors themselves stay provenance-free."""
        clock = self.clock
        return self.store.record(
            crule.label,
            Fact(crule.head.pred, head),
            crule.ground_body(bindings, functions),
            sign,
            node=self.node,
            time=clock() if clock is not None else 0.0,
            dedup=self.dedup,
        )

    def record_fact(self, rule: str, head: Fact, body: Sequence[Fact],
                    sign: int) -> Optional[int]:
        """Record a firing whose body facts are already ground (cache
        hits, synthesized derivations)."""
        return self.store.record(rule, head, body, sign, node=self.node,
                                 time=self.now())

    def base(self, fact: Fact, weight: int) -> None:
        self.store.record_base(fact, weight, node=self.node, time=self.now())

    def retracted(self, fact: Fact) -> None:
        self.store.retract_fact(fact)

    def arrival(self, fact: Fact, prov_id: Optional[int]) -> None:
        self.store.note_arrival(fact, prov_id, self.node or "?", self.now())

    def register_views(self, preds) -> None:
        self.store.view_preds.update(preds)

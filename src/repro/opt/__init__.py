"""Query optimizations from Section 5: aggregate selections (+ the
arg-min advertising view), cost-based hybrid search; result caching and
message sharing live in the runtime transport/config layer."""

from repro.opt import aggsel, costbased

__all__ = ["aggsel", "costbased"]

"""Cost-based rewrites (Section 5.3).

The optimizer statistic is the neighborhood function N(X, r) (see
:mod:`repro.topology.neighborhood`).  For a single (src, dst) path
query, the three strategies cost approximately:

* top-down   N(src, dist)      -- flood from the source;
* bottom-up  N(dst, dist)      -- flood from the destination;
* hybrid     N(src, rs) + N(dst, rd) with rs + rd = dist, minimized.

"The optimal strategy is actually a hybrid scheme that 'splits' the
search radius dist(s,d) between s and d ... at the end of this process,
both the TD and the BU search have intersected in at least one network
node, which can easily assemble the shortest (s,d) path."

The paper does not evaluate this section ("we do not evaluate the above
concepts in our experiments below"); we provide the statistic, the
optimizer, and an ablation benchmark quantifying the hybrid advantage
on our overlays -- marked as an extension in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.topology.neighborhood import (
    hop_distances,
    neighborhood_function,
    optimal_split,
    search_costs,
)
from repro.topology.overlay import Overlay


@dataclass
class HybridStudy:
    """Aggregate TD/BU/hybrid message-cost comparison over random pairs."""

    pairs: int
    td_total: int = 0
    bu_total: int = 0
    hybrid_total: int = 0
    samples: List[Dict[str, int]] = field(default_factory=list)

    @property
    def hybrid_vs_best_pure(self) -> float:
        best_pure = min(self.td_total, self.bu_total)
        return self.hybrid_total / best_pure if best_pure else 1.0

    def report(self) -> str:
        return (
            f"hybrid search ablation over {self.pairs} (src,dst) pairs: "
            f"TD={self.td_total}  BU={self.bu_total}  "
            f"hybrid={self.hybrid_total}  "
            f"(hybrid / best-pure = {self.hybrid_vs_best_pure:.2f})"
        )


def hybrid_study(
    overlay: Overlay, pairs: int = 50, seed: int = 11
) -> HybridStudy:
    """Estimate message costs for TD / BU / hybrid over random pairs."""
    rng = random.Random(seed)
    study = HybridStudy(pairs=pairs)
    nodes = list(overlay.nodes)
    for _ in range(pairs):
        src, dst = rng.sample(nodes, 2)
        costs = search_costs(overlay, src, dst)
        study.td_total += costs["td"]
        study.bu_total += costs["bu"]
        study.hybrid_total += costs["hybrid"]
        study.samples.append(costs)
    return study


def recommend_strategy(overlay: Overlay, src: str, dst: str) -> str:
    """The optimizer's pick for one query: 'td', 'bu' or 'hybrid'."""
    costs = search_costs(overlay, src, dst)
    rs, rd, _cost = optimal_split(overlay, src, dst)
    if rd == 0:
        return "td"
    if rs == 0:
        return "bu"
    best = min(("td", "bu", "hybrid"), key=lambda k: costs[k])
    return best


def zone_radius(overlay: Overlay, node: str, budget: int) -> int:
    """A ZRP-style zone radius: the largest r whose zone (N(node, r))
    stays within the given node budget (Section 5.3's discussion of
    Zone Routing Protocols adapting k from the neighborhood
    statistic)."""
    nf = neighborhood_function(overlay, node)
    radius = 0
    for r, count in enumerate(nf):
        if count <= budget:
            radius = r
        else:
            break
    return radius

"""Cost-based rewrites and statistics (Section 5.3).

Two kinds of optimizer statistics live here:

* :class:`StatsCatalog` -- per-relation cardinality estimates used by
  the compiled join plans (:mod:`repro.engine.rules`) to order body
  literals by selectivity, in the spirit of the section's "the
  optimizations of Section 5 can be recast as cost-based decisions".
* the neighborhood function N(X, r) (below), the paper's own statistic
  for hybrid search-strategy selection.

The optimizer statistic is the neighborhood function N(X, r) (see
:mod:`repro.topology.neighborhood`).  For a single (src, dst) path
query, the three strategies cost approximately:

* top-down   N(src, dist)      -- flood from the source;
* bottom-up  N(dst, dist)      -- flood from the destination;
* hybrid     N(src, rs) + N(dst, rd) with rs + rd = dist, minimized.

"The optimal strategy is actually a hybrid scheme that 'splits' the
search radius dist(s,d) between s and d ... at the end of this process,
both the TD and the BU search have intersected in at least one network
node, which can easily assemble the shortest (s,d) path."

The paper does not evaluate this section ("we do not evaluate the above
concepts in our experiments below"); we provide the statistic, the
optimizer, and an ablation benchmark quantifying the hybrid advantage
on our overlays -- marked as an extension in EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.topology.neighborhood import (
    neighborhood_function,
    optimal_split,
    search_costs,
)
from repro.topology.overlay import Overlay


class StatsCatalog:
    """Relation-cardinality statistics for join ordering.

    The catalog answers one question for the plan compiler: *given an
    indexed lookup that pins ``bound_count`` of a literal's ``arity``
    positions, roughly how many candidate tuples come back?*  The
    estimate assumes attribute values are uniformly distributed, so
    each additional bound position shaves an equal factor off the
    relation's row count (``rows ** ((arity - bound) / arity)``).

    Unknown relations fall back to ``default_rows`` -- plans are
    typically compiled at engine construction, before derived tables
    have any rows, so the default keeps base-table sizes (loaded ahead
    of time) comparable with not-yet-materialized derived tables.
    """

    DEFAULT_ROWS = 1000.0

    def __init__(self, sizes: Optional[Dict[str, float]] = None,
                 default_rows: float = DEFAULT_ROWS):
        self.sizes: Dict[str, float] = dict(sizes or {})
        self.default_rows = default_rows
        #: Relation -> cumulative weighted commit+retraction activity,
        #: fed by the metrics registry (``Cluster.refresh_stats``) so a
        #: live deployment's churn is visible to cost decisions.
        self.churn: Dict[str, float] = {}

    @classmethod
    def from_database(cls, db, default_rows: float = DEFAULT_ROWS) -> "StatsCatalog":
        """Snapshot current table sizes from a ``Database``-like object
        (anything with a ``tables`` mapping of sized values).  Empty
        tables keep the default estimate: at plan-compile time an empty
        derived table says nothing about its eventual size."""
        sizes = {}
        for name, table in db.tables.items():
            if len(table):
                sizes[name] = float(len(table))
        return cls(sizes, default_rows=default_rows)

    def refresh(self, sizes: Optional[Dict[str, float]] = None,
                churn: Optional[Dict[str, float]] = None) -> None:
        """Fold live observations into the catalog: current table
        cardinalities and cumulative commit/retraction churn per
        relation (both from a deployment's metrics snapshot).  Existing
        entries for relations absent from the update are kept -- a
        refresh is incremental, not a reset."""
        if sizes:
            for pred, rows in sizes.items():
                self.sizes[pred] = float(rows)
        if churn:
            for pred, activity in churn.items():
                self.churn[pred] = float(activity)

    def churn_of(self, pred: str) -> float:
        """Cumulative weighted commit+retraction activity observed for
        ``pred`` (0.0 when never refreshed)."""
        return self.churn.get(pred, 0.0)

    def table_rows(self, pred: str) -> float:
        return self.sizes.get(pred, self.default_rows)

    def estimated_candidates(self, pred: str, arity: int, bound_count: int) -> float:
        rows = self.table_rows(pred)
        if arity <= 0 or bound_count >= arity:
            return 1.0
        if bound_count <= 0:
            return rows
        return rows ** ((arity - bound_count) / arity)


@dataclass
class HybridStudy:
    """Aggregate TD/BU/hybrid message-cost comparison over random pairs."""

    pairs: int
    td_total: int = 0
    bu_total: int = 0
    hybrid_total: int = 0
    samples: List[Dict[str, int]] = field(default_factory=list)

    @property
    def hybrid_vs_best_pure(self) -> float:
        best_pure = min(self.td_total, self.bu_total)
        return self.hybrid_total / best_pure if best_pure else 1.0

    def report(self) -> str:
        return (
            f"hybrid search ablation over {self.pairs} (src,dst) pairs: "
            f"TD={self.td_total}  BU={self.bu_total}  "
            f"hybrid={self.hybrid_total}  "
            f"(hybrid / best-pure = {self.hybrid_vs_best_pure:.2f})"
        )


def hybrid_study(
    overlay: Overlay, pairs: int = 50, seed: int = 11
) -> HybridStudy:
    """Estimate message costs for TD / BU / hybrid over random pairs."""
    rng = random.Random(seed)
    study = HybridStudy(pairs=pairs)
    nodes = list(overlay.nodes)
    for _ in range(pairs):
        src, dst = rng.sample(nodes, 2)
        costs = search_costs(overlay, src, dst)
        study.td_total += costs["td"]
        study.bu_total += costs["bu"]
        study.hybrid_total += costs["hybrid"]
        study.samples.append(costs)
    return study


def recommend_strategy(overlay: Overlay, src: str, dst: str) -> str:
    """The optimizer's pick for one query: 'td', 'bu' or 'hybrid'."""
    costs = search_costs(overlay, src, dst)
    rs, rd, _cost = optimal_split(overlay, src, dst)
    if rd == 0:
        return "td"
    if rs == 0:
        return "bu"
    best = min(("td", "bu", "hybrid"), key=lambda k: costs[k])
    return best


def zone_radius(overlay: Overlay, node: str, budget: int) -> int:
    """A ZRP-style zone radius: the largest r whose zone (N(node, r))
    stays within the given node budget (Section 5.3's discussion of
    Zone Routing Protocols adapting k from the neighborhood
    statistic)."""
    nf = neighborhood_function(overlay, node)
    radius = 0
    for r, count in enumerate(nf):
        if count <= budget:
            radius = r
        else:
            break
    return radius

"""Aggregate selections (Section 5.1.1).

"Aggregate selections are useful when the running state of a monotonic
AGG function can be used to prune query evaluation ... each node only
needs to propagate the most current shortest paths for each destination
to neighbors.  This propagation can be done whenever a shorter path is
derived."

We realize the optimization as a program rewrite.  For a recursive
relation ``r`` that feeds a monotonic aggregate (e.g. ``path`` feeding
``spCost``'s ``min<C>``):

* a *best* view ``r__best`` is introduced, keyed on the aggregate's
  group, holding the group-optimal ``r`` tuple (maintained incrementally
  by the engine's aggregate machinery);
* the occurrences of ``r`` in the bodies of ``r``'s own rules (the
  recursion, i.e. the propagation loop) are redirected to ``r__best``.

The effect is exactly the paper's: only the current best tuple per group
participates in further derivation and is advertised to neighbours; when
a better (or, under deletions, the new best) tuple commits, the keyed
view replaces the old advert, which retracts the stale derivations
downstream.  This is also what makes the dynamic protocol form
confluent: the final advert of every node is its final best, independent
of arrival order.

Aggregate selections are additionally a *termination* device: with the
rewrite, the Figure 1 program terminates even on cyclic graphs with
positive costs (Section 5.1.1), because the best-per-group frontier is
finite and costs cannot decrease forever.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.ndlog.ast import Literal, Materialization, Program, Rule
from repro.ndlog.terms import AggregateSpec, Variable

MONOTONIC_FUNCS = ("min", "max")


@dataclass(frozen=True)
class PruneSpec:
    """A detected aggregate-selection opportunity on relation ``pred``."""

    pred: str
    func: str                      # min / max
    group_positions: Tuple[int, ...]   # positions in ``pred``'s schema
    value_position: int            # cost position in ``pred``'s schema

    @property
    def best_pred(self) -> str:
        return f"{self.pred}__best"

    @property
    def agg_pred(self) -> str:
        return f"{self.pred}__bestval"


def detect(program: Program) -> List[PruneSpec]:
    """Find relations with a monotonic aggregate computed over them.

    The aggregate rule's body must be a single literal over the relation
    (as in SP3); group variables are mapped to their *first* occurrence
    in that literal, which both places the tuple's own location in the
    group (per-node pruning) and matches SP3's (src, dst) grouping.
    """
    specs: List[PruneSpec] = []
    seen = set()
    for rule in program.rules:
        agg = rule.head_aggregate()
        if agg is None:
            continue
        _position, spec = agg
        if spec.func not in MONOTONIC_FUNCS or not spec.var:
            continue
        literals = rule.body_literals
        if len(literals) != 1:
            # Group derivation would need a join; handled conservatively
            # by skipping (the paper's examples are single-literal).
            body_candidates = [
                lit for lit in literals
                if spec.var in lit.variables()
            ]
            if len(body_candidates) != 1:
                continue
            literal = body_candidates[0]
        else:
            literal = literals[0]
        if literal.pred in seen:
            continue

        positions_of: Dict[str, int] = {}
        for index, arg in enumerate(literal.args):
            if isinstance(arg, Variable) and arg.name not in positions_of:
                positions_of[arg.name] = index
        if spec.var not in positions_of:
            continue
        value_position = positions_of[spec.var]

        group_vars = []
        for arg in rule.head.args:
            if isinstance(arg, AggregateSpec):
                continue
            for name in sorted(arg.variables()):
                if name not in group_vars:
                    group_vars.append(name)
        if not all(name in positions_of for name in group_vars):
            continue
        group_positions = tuple(positions_of[name] for name in group_vars)
        seen.add(literal.pred)
        specs.append(
            PruneSpec(
                pred=literal.pred,
                func=spec.func,
                group_positions=group_positions,
                value_position=value_position,
            )
        )
    return specs


def rewrite(program: Program, specs: Optional[Sequence[PruneSpec]] = None) -> Program:
    """Apply aggregate selections for every (or the given) spec."""
    if specs is None:
        specs = detect(program)
    result = Program(
        rules=list(program.rules),
        facts=list(program.facts),
        materializations=dict(program.materializations),
        query=program.query,
        name=f"{program.name}_aggsel" if program.name else "aggsel",
    )
    for spec in specs:
        result = _apply_one(result, spec)
    return result


def _apply_one(program: Program, spec: PruneSpec) -> Program:
    arity = program.predicates().get(spec.pred)
    if arity is None:
        raise PlanError(f"aggregate selection on unknown relation {spec.pred!r}")

    # Fresh variables V0..V{arity-1} name the relation's attributes.
    variables = [Variable(f"AS{i}") for i in range(arity)]
    variables[0] = Variable("AS0", location=True)

    # r__best(full args) :- r(full args), maintained as an arg-min view:
    # one witness tuple per group, replaced only on a *strict*
    # improvement (ties keep the incumbent -- a same-cost alternative is
    # no improvement and advertising it would churn the network).
    body_literal = Literal(spec.pred, tuple(variables))
    best_rule = Rule(
        head=Literal(spec.best_pred, tuple(variables)),
        body=(body_literal,),
        label=f"{spec.pred}_aggsel_b",
        argmin=(spec.group_positions, spec.value_position, spec.func),
    )

    # Redirect the recursion: occurrences of r in bodies of rules whose
    # head is r now read the pruned view.
    new_rules: List[Rule] = []
    for rule in program.rules:
        if rule.head.pred == spec.pred:
            body = tuple(
                item.with_pred(spec.best_pred)
                if isinstance(item, Literal) and item.pred == spec.pred
                else item
                for item in rule.body
            )
            new_rules.append(replace(rule, body=body))
        else:
            new_rules.append(rule)
    new_rules.append(best_rule)

    materializations = dict(program.materializations)
    # The best view replaces per group: key on the group positions.
    materializations[spec.best_pred] = Materialization(
        spec.best_pred,
        keys=tuple(i + 1 for i in spec.group_positions),
    )
    return Program(
        rules=new_rules,
        facts=list(program.facts),
        materializations=materializations,
        query=program.query,
        name=program.name,
    )

"""The Network Datalog (NDlog) language: terms, AST, parser, validator,
builtin functions, and the paper's canonical programs."""

from repro.ndlog.ast import (
    Assignment,
    Condition,
    Literal,
    Materialization,
    Program,
    Rule,
    make_literal,
)
from repro.ndlog.parser import parse, parse_rule
from repro.ndlog.pretty import format_program, format_rule
from repro.ndlog.terms import (
    AggregateSpec,
    BinOp,
    Constant,
    FuncCall,
    NIL,
    Term,
    TupleTerm,
    UnaryOp,
    Variable,
    evaluate,
)
from repro.ndlog.validator import check, is_link_restricted, is_local_rule, validate
from repro.ndlog.functions import default_functions, register

__all__ = [
    "Assignment",
    "Condition",
    "Literal",
    "Materialization",
    "Program",
    "Rule",
    "make_literal",
    "parse",
    "parse_rule",
    "format_program",
    "format_rule",
    "AggregateSpec",
    "BinOp",
    "Constant",
    "FuncCall",
    "NIL",
    "Term",
    "TupleTerm",
    "UnaryOp",
    "Variable",
    "evaluate",
    "check",
    "validate",
    "is_local_rule",
    "is_link_restricted",
    "default_functions",
    "register",
]

"""Builtin ``f_*`` functions available to NDlog programs.

The paper's programs use ``f_concatPath``; declarative routing / overlay
programs built on NDlog additionally need basic list manipulation, which we
provide in the same spirit ("a limited set of function calls ... including
boolean predicates, arithmetic computations and simple list manipulation",
Section 2).

Path vectors are Python tuples of node identifiers.  A link tuple used as a
term (``link(@S,@D,C)``) evaluates to a :class:`ConstructedTuple`; its node
sequence is its first two fields (source and destination addresses).

``f_concatPath(a, b)`` concatenates the node sequences of ``a`` and ``b``,
collapsing a shared junction node, so that all three usages in the paper
work with one definition:

* ``f_concatPath(link(s,d,c), nil)``       -> ``(s, d)``       (rule SP1)
* ``f_concatPath(link(s,z,c), (z,...,d))`` -> ``(s, z, ..., d)`` (rule SP2)
* ``f_concatPath((s,...,z), link(z,d,c))`` -> ``(s, ..., z, d)`` (rule SP2-SD)
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import EvaluationError, SchemaError
from repro.ndlog.terms import ConstructedTuple, NIL

#: Global registry of builtin functions, name -> callable.
REGISTRY: Dict[str, Callable] = {}


def register(name: str):
    """Decorator registering a builtin under ``name`` (must start ``f_``)."""
    if not name.startswith("f_"):
        raise SchemaError(f"builtin names must start with 'f_': {name!r}")

    def wrap(func: Callable) -> Callable:
        REGISTRY[name] = func
        return func

    return wrap


def node_sequence(value) -> Tuple:
    """The node sequence of a path-like value.

    * a path vector (tuple) is its own sequence;
    * a link tuple contributes ``(src, dst)``;
    * ``nil`` contributes the empty sequence;
    * a scalar contributes a singleton sequence.
    """
    if isinstance(value, ConstructedTuple):
        if len(value.values) < 2:
            raise EvaluationError(
                f"tuple term {value.pred!r} needs >=2 fields to act as a link"
            )
        return (value.values[0], value.values[1])
    if isinstance(value, tuple):
        return value
    return (value,)


@register("f_concatPath")
def f_concat_path(first, second) -> Tuple:
    """Concatenate two path-like values, merging a shared junction node."""
    left = node_sequence(first)
    right = node_sequence(second)
    if left and right and left[-1] == right[0]:
        return left + right[1:]
    return left + right


@register("f_member")
def f_member(path, item) -> int:
    """1 if ``item`` occurs in ``path``, else 0 (P2 convention)."""
    if not isinstance(path, tuple):
        raise EvaluationError("f_member expects a list as first argument")
    return 1 if item in path else 0


@register("f_size")
def f_size(path) -> int:
    """Number of elements in a list."""
    if not isinstance(path, tuple):
        raise EvaluationError("f_size expects a list")
    return len(path)


@register("f_first")
def f_first(path):
    """First element of a non-empty list."""
    if not isinstance(path, tuple) or not path:
        raise EvaluationError("f_first expects a non-empty list")
    return path[0]


@register("f_last")
def f_last(path):
    """Last element of a non-empty list."""
    if not isinstance(path, tuple) or not path:
        raise EvaluationError("f_last expects a non-empty list")
    return path[-1]


@register("f_init")
def f_init(item) -> Tuple:
    """Singleton list containing ``item``."""
    return (item,)


@register("f_append")
def f_append(path, item) -> Tuple:
    """List with ``item`` appended."""
    if not isinstance(path, tuple):
        raise EvaluationError("f_append expects a list")
    return path + (item,)


@register("f_prepend")
def f_prepend(item, path) -> Tuple:
    """List with ``item`` prepended."""
    if not isinstance(path, tuple):
        raise EvaluationError("f_prepend expects a list")
    return (item,) + path


@register("f_reverse")
def f_reverse(path) -> Tuple:
    """Reversed copy of a list."""
    if not isinstance(path, tuple):
        raise EvaluationError("f_reverse expects a list")
    return tuple(reversed(path))


@register("f_prevhop")
def f_prevhop(path, node):
    """The element immediately before ``node`` in ``path``.

    Used to route answer tuples back along the reverse of a discovered
    path (query-result caching, Section 5.2).
    """
    if not isinstance(path, tuple):
        raise EvaluationError("f_prevhop expects a list")
    try:
        index = path.index(node)
    except ValueError:
        raise EvaluationError(f"{node!r} not on path {path!r}") from None
    if index == 0:
        return node
    return path[index - 1]


@register("f_subpath")
def f_subpath(path, node) -> Tuple:
    """The suffix of ``path`` starting at ``node`` (inclusive).

    Subpaths of shortest paths are themselves shortest, so this is the
    value cached at intermediate nodes (Section 5.2).
    """
    if not isinstance(path, tuple):
        raise EvaluationError("f_subpath expects a list")
    try:
        index = path.index(node)
    except ValueError:
        raise EvaluationError(f"{node!r} not on path {path!r}") from None
    return path[index:]


@register("f_min")
def f_min(a, b):
    """Binary minimum."""
    return a if a <= b else b


@register("f_max")
def f_max(a, b):
    """Binary maximum."""
    return a if a >= b else b


def default_functions() -> Dict[str, Callable]:
    """A fresh copy of the builtin registry (callers may extend it)."""
    return dict(REGISTRY)


# Re-export for convenience in user programs.
__all__ = ["REGISTRY", "register", "default_functions", "node_sequence", "NIL"]

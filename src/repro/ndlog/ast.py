"""Abstract syntax tree for NDlog programs.

A program (Definition 6 of the paper) is a set of rules plus optional
``materialize`` declarations (primary keys / lifetimes for stored tables),
ground facts, and a query literal.

Body items come in three kinds:

* :class:`Literal` -- a predicate occurrence.  ``link_literal=True`` when
  written ``#link(...)`` (Definition 4).
* :class:`Assignment` -- ``P = expr`` / ``C := expr``.  When the left-hand
  variable is already bound at runtime this degenerates to an equality
  check, matching Datalog unification semantics.
* :class:`Condition` -- a boolean expression such as ``C < 10`` or
  ``f_member(P, S) == 0``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import SchemaError
from repro.ndlog.terms import (
    AggregateSpec,
    Constant,
    Term,
    Variable,
)

INFINITY = float("inf")


@dataclass(frozen=True)
class Literal:
    """A predicate occurrence ``pred(arg0, arg1, ...)``.

    By NDlog convention the location specifier is ``args[0]``.
    """

    pred: str
    args: Tuple[Term, ...]
    link_literal: bool = False
    negated: bool = False

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def location(self) -> Term:
        """The location specifier term (first argument)."""
        if not self.args:
            raise SchemaError(f"predicate {self.pred!r} has no arguments")
        return self.args[0]

    def variables(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def with_pred(self, pred: str) -> "Literal":
        return replace(self, pred=pred)

    def __repr__(self) -> str:
        prefix = "!" if self.negated else ""
        hash_mark = "#" if self.link_literal else ""
        return f"{prefix}{hash_mark}{self.pred}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class Assignment:
    """``var = expr`` body item."""

    var: Variable
    expr: Term

    def variables(self) -> frozenset:
        return self.var.variables() | self.expr.variables()

    def __repr__(self) -> str:
        return f"{self.var!r} = {self.expr!r}"


@dataclass(frozen=True)
class Condition:
    """A boolean expression body item."""

    expr: Term

    def variables(self) -> frozenset:
        return self.expr.variables()

    def __repr__(self) -> str:
        return repr(self.expr)


BodyItem = Union[Literal, Assignment, Condition]


@dataclass(frozen=True)
class Rule:
    """A single NDlog rule ``head :- body.`` with an optional label.

    ``delete=True`` marks a *delete rule* (an extension used by the
    incremental-maintenance machinery; not part of the paper's surface
    syntax).

    ``argmin`` is an engine annotation (set by the aggregate-selections
    rewrite, not by surface syntax): ``(group_positions, value_position,
    func)`` makes the rule maintain one *witness tuple* per group -- the
    head receives only the group-optimal body tuple, and ties keep the
    incumbent.
    """

    head: Literal
    body: Tuple[BodyItem, ...]
    label: str = ""
    delete: bool = False
    argmin: Optional[Tuple[Tuple[int, ...], int, str]] = None

    @property
    def body_literals(self) -> Tuple[Literal, ...]:
        return tuple(item for item in self.body if isinstance(item, Literal))

    @property
    def is_fact(self) -> bool:
        return not self.body

    def head_aggregate(self) -> Optional[Tuple[int, AggregateSpec]]:
        """Return ``(position, spec)`` if the head contains an aggregate."""
        for idx, arg in enumerate(self.head.args):
            if isinstance(arg, AggregateSpec):
                return idx, arg
        return None

    def variables(self) -> frozenset:
        out = self.head.variables()
        for item in self.body:
            out |= item.variables()
        return out

    def __repr__(self) -> str:
        label = f"{self.label}: " if self.label else ""
        if not self.body:
            return f"{label}{self.head!r}."
        body = ", ".join(map(repr, self.body))
        return f"{label}{self.head!r} :- {body}."


@dataclass(frozen=True)
class Materialization:
    """A ``materialize(pred, lifetime, size, keys(...))`` declaration.

    ``keys`` holds 1-based attribute positions, following P2 convention.
    ``lifetime`` is seconds, or ``INFINITY`` for hard state.
    ``max_size`` bounds the table cardinality (``INFINITY`` = unbounded).
    """

    pred: str
    lifetime: float = INFINITY
    max_size: float = INFINITY
    keys: Tuple[int, ...] = ()

    def key_indexes(self) -> Tuple[int, ...]:
        """0-based primary-key positions (empty = all attributes)."""
        return tuple(k - 1 for k in self.keys)

    def __repr__(self) -> str:
        life = "infinity" if self.lifetime == INFINITY else repr(self.lifetime)
        size = "infinity" if self.max_size == INFINITY else repr(self.max_size)
        keys = ", ".join(map(str, self.keys))
        return f"materialize({self.pred}, {life}, {size}, keys({keys}))."


@dataclass
class Program:
    """A parsed NDlog program."""

    rules: List[Rule] = field(default_factory=list)
    facts: List[Literal] = field(default_factory=list)
    materializations: Dict[str, Materialization] = field(default_factory=dict)
    query: Optional[Literal] = None
    name: str = ""

    def predicates(self) -> Dict[str, int]:
        """Map every predicate to its arity; raise on inconsistent use."""
        arities: Dict[str, int] = {}

        def note(pred: str, arity: int) -> None:
            seen = arities.get(pred)
            if seen is None:
                arities[pred] = arity
            elif seen != arity:
                raise SchemaError(
                    f"predicate {pred!r} used with arity {arity} and {seen}"
                )

        for rule in self.rules:
            note(rule.head.pred, rule.head.arity)
            for lit in rule.body_literals:
                note(lit.pred, lit.arity)
        for fact in self.facts:
            note(fact.pred, fact.arity)
        return arities

    def idb_predicates(self) -> frozenset:
        """Predicates that appear in some rule head (derived relations)."""
        return frozenset(r.head.pred for r in self.rules if r.body)

    def edb_predicates(self) -> frozenset:
        """Predicates only ever stored, never derived."""
        return frozenset(self.predicates()) - self.idb_predicates()

    def link_predicates(self) -> frozenset:
        """Predicates used as link literals (``#link`` style) anywhere."""
        preds = set()
        for rule in self.rules:
            for lit in rule.body_literals:
                if lit.link_literal:
                    preds.add(lit.pred)
        return frozenset(preds)

    def rules_for(self, pred: str) -> List[Rule]:
        return [r for r in self.rules if r.head.pred == pred]

    def rename_predicates(self, mapping_or_suffix) -> "Program":
        """Return a copy with predicates renamed.

        Accepts either a ``dict`` mapping old to new names, or a string
        suffix appended to every predicate.  Used to run several copies
        of the same query concurrently (Section 6.4 of the paper).
        """
        if isinstance(mapping_or_suffix, str):
            suffix = mapping_or_suffix
            preds = set(self.predicates())
            mapping = {p: p + suffix for p in preds}
        else:
            mapping = dict(mapping_or_suffix)

        def rename_lit(lit: Literal) -> Literal:
            return lit.with_pred(mapping.get(lit.pred, lit.pred))

        def rename_rule(rule: Rule) -> Rule:
            body = tuple(
                rename_lit(item) if isinstance(item, Literal) else item
                for item in rule.body
            )
            return replace(rule, head=rename_lit(rule.head), body=body)

        return Program(
            rules=[rename_rule(r) for r in self.rules],
            facts=[rename_lit(f) for f in self.facts],
            materializations={
                mapping.get(p, p): replace(m, pred=mapping.get(p, p))
                for p, m in self.materializations.items()
            },
            query=rename_lit(self.query) if self.query else None,
            name=self.name,
        )

    def merged_with(self, other: "Program", name: str = "") -> "Program":
        """Union of two programs (rules, facts, declarations)."""
        materializations = dict(self.materializations)
        for pred, mat in other.materializations.items():
            if pred in materializations and materializations[pred] != mat:
                raise SchemaError(f"conflicting materialize({pred}) declarations")
            materializations[pred] = mat
        return Program(
            rules=list(itertools.chain(self.rules, other.rules)),
            facts=list(itertools.chain(self.facts, other.facts)),
            materializations=materializations,
            query=self.query or other.query,
            name=name or self.name,
        )

    def __repr__(self) -> str:
        parts: List[str] = [repr(m) for m in self.materializations.values()]
        parts += [f"{f!r}." for f in self.facts]
        parts += [repr(r) for r in self.rules]
        if self.query is not None:
            parts.append(f"Query: {self.query!r}.")
        return "\n".join(parts)


def make_literal(pred: str, *args, link: bool = False) -> Literal:
    """Convenience constructor used by tests and rewrites.

    Strings starting with an uppercase letter become variables; ``@``
    prefixes mark location terms; everything else becomes a constant.
    """
    terms: List[Term] = []
    for arg in args:
        if isinstance(arg, Term):
            terms.append(arg)
        elif isinstance(arg, str) and arg.startswith("@"):
            name = arg[1:]
            if name[:1].isupper():
                terms.append(Variable(name, location=True))
            else:
                terms.append(Constant(name, location=True))
        elif isinstance(arg, str) and arg[:1].isupper():
            terms.append(Variable(arg))
        else:
            terms.append(Constant(arg))
    return Literal(pred, tuple(terms), link_literal=link)

"""NDlog program validation (Definitions 1-6 of the paper).

A valid NDlog program satisfies four syntactic constraints on top of
Datalog (Definition 6):

1. **Location specificity** -- every predicate's first attribute is a
   location specifier (an ``@``-marked term).
2. **Address type safety** -- a variable used as an address type anywhere
   in a rule is used as an address type everywhere in that rule.
3. **Stored link relations** -- link relations never appear in the head of
   a rule with a non-empty body.
4. **Link-restriction** -- every non-local rule is link-restricted
   (Definition 5): exactly one link literal, and every other predicate
   (head included) is located at the link's source or destination field.

The validator also enforces basic sanity: consistent arities, aggregates
only in heads, no negation (deferred to future work in the paper), bound
head variables, and safe conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import NDlogValidationError
from repro.ndlog.ast import Assignment, Condition, Program, Rule
from repro.ndlog.terms import AggregateSpec, Constant, Term, Variable


@dataclass
class ValidationReport:
    """Outcome of validation: collected errors and derived classifications."""

    errors: List[str] = field(default_factory=list)
    local_rules: List[str] = field(default_factory=list)
    link_restricted_rules: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def _location_name(term: Term):
    """The comparison key of a location term: variable name or constant."""
    if isinstance(term, Variable):
        return ("var", term.name)
    if isinstance(term, Constant):
        return ("const", term.value)
    return ("expr", repr(term))


def is_local_rule(rule: Rule) -> bool:
    """Definition 3: all predicates (head included) share one location."""
    locations = {_location_name(rule.head.location)}
    for literal in rule.body_literals:
        locations.add(_location_name(literal.location))
    return len(locations) == 1


def is_link_restricted(rule: Rule) -> bool:
    """Definition 5: local, or exactly one link literal with all other
    location specifiers drawn from the link's source/destination fields."""
    if is_local_rule(rule):
        return True
    links = [lit for lit in rule.body_literals if lit.link_literal]
    if len(links) != 1:
        return False
    link = links[0]
    if link.arity < 2:
        return False
    allowed = {_location_name(link.args[0]), _location_name(link.args[1])}
    for literal in rule.body_literals:
        if literal is link:
            continue
        if _location_name(literal.location) not in allowed:
            return False
    return _location_name(rule.head.location) in allowed


def _address_usage(rule: Rule) -> Dict[str, Set[bool]]:
    """For each variable, the set of 'used as address?' flags in the rule."""
    usage: Dict[str, Set[bool]] = {}

    def note_term(term: Term, in_location_position: bool) -> None:
        if isinstance(term, Variable):
            usage.setdefault(term.name, set()).add(
                term.location or in_location_position
            )
            return
        # Nested terms (function args etc.) count with their own markers.
        for attr in ("args", "left", "right", "operand", "expr"):
            child = getattr(term, attr, None)
            if child is None:
                continue
            if isinstance(child, tuple):
                for sub in child:
                    note_term(sub, False)
            elif isinstance(child, Term):
                note_term(child, False)

    for literal in (rule.head, *rule.body_literals):
        for index, arg in enumerate(literal.args):
            note_term(arg, index == 0)
    for item in rule.body:
        if isinstance(item, Assignment):
            note_term(item.var, False)
            note_term(item.expr, False)
        elif isinstance(item, Condition):
            note_term(item.expr, False)
    return usage


def validate(program: Program, strict_address_types: bool = False,
             distributed: bool = True) -> ValidationReport:
    """Validate ``program`` and return a :class:`ValidationReport`.

    ``strict_address_types`` defaults to ``False`` here and in
    :func:`check` (the two entry points used to disagree; off is the
    one the paper's program style needs): a variable may appear both
    with and without ``@`` as long as the ``@``-form appears in a
    location position (the paper's own examples write
    ``f_concatPath(link(@S,@D,C), nil)``, reusing address variables
    inside function arguments).  Per-occurrence strict checking is the
    job of the ndlint ``types`` analysis (:mod:`repro.analysis`),
    which unifies column types across *all* rules and reports genuine
    address/value conflicts as ND101 errors -- a sharper check than
    this rule-local flag ever was.  ``strict_address_types=True``
    restores the old behaviour: any mixed use inside one rule is an
    error.

    With ``distributed=False`` the NDlog-specific constraints
    (Definitions 1-6: location specificity, address type safety,
    link-restriction) are skipped -- the mode the compiler uses for
    location-free plain-Datalog programs -- while the plain-Datalog
    sanity checks (arity consistency, rule safety, aggregate placement,
    no negation, ground facts) still apply.
    """
    report = ValidationReport()
    errors = report.errors

    try:
        program.predicates()
    except Exception as exc:  # SchemaError carries the message we want.
        errors.append(str(exc))

    link_preds = program.link_predicates()

    for rule in program.rules:
        name = rule.label or repr(rule.head)

        # Aggregates only in heads; at most one per head.
        agg_count = sum(
            isinstance(arg, AggregateSpec) for arg in rule.head.args
        )
        if agg_count > 1:
            errors.append(f"{name}: multiple aggregates in head")
        for literal in rule.body_literals:
            if any(isinstance(arg, AggregateSpec) for arg in literal.args):
                errors.append(f"{name}: aggregate in rule body")
            if literal.negated:
                errors.append(
                    f"{name}: negation is not supported (future work in the paper)"
                )

        if distributed:
            # Constraint 1: location specificity.
            for literal in (rule.head, *rule.body_literals):
                if not literal.args:
                    errors.append(
                        f"{name}: {literal.pred} has no location specifier"
                    )
                    continue
                loc = literal.args[0]
                is_marked = (isinstance(loc, (Variable, Constant))
                             and loc.location)
                if not is_marked:
                    errors.append(
                        f"{name}: first attribute of {literal.pred} is not "
                        f"a location specifier (@...)"
                    )

            # Constraint 2: address type safety.
            usage = _address_usage(rule)
            for var, flags in usage.items():
                if len(flags) > 1 and strict_address_types:
                    errors.append(
                        f"{name}: variable {var} used both as address and "
                        f"non-address type"
                    )

        # Constraint 3: stored link relations.
        if rule.body and rule.head.pred in link_preds:
            errors.append(
                f"{name}: link relation {rule.head.pred} derived by a rule "
                f"(link relations must be stored)"
            )

        if distributed:
            # Constraint 4: link restriction.
            if is_local_rule(rule):
                report.local_rules.append(name)
            elif is_link_restricted(rule):
                report.link_restricted_rules.append(name)
            else:
                errors.append(f"{name}: non-local rule is not link-restricted")

        # Safety: head variables must be bound by positive body literals
        # or assignments.
        bound: Set[str] = set()
        for literal in rule.body_literals:
            bound |= literal.variables()
        for item in rule.body:
            if isinstance(item, Assignment):
                bound |= item.var.variables()
        head_vars = set()
        for arg in rule.head.args:
            if isinstance(arg, AggregateSpec):
                head_vars |= arg.variables()
            else:
                head_vars |= arg.variables()
        unbound = head_vars - bound
        if unbound and rule.body:
            errors.append(
                f"{name}: head variables {sorted(unbound)} not bound in body"
            )

    # Facts must be ground.
    for fact in program.facts:
        if fact.variables():
            errors.append(f"fact {fact!r} is not ground")

    return report


def check(program: Program, strict_address_types: bool = False) -> Program:
    """Validate and return ``program``; raise on any error.

    This is the entry point used by the compiler pipeline.  Address-type
    strictness defaults to off, matching both :func:`validate` and the
    paper's own program style; cross-rule address/value conflicts are
    caught by the ndlint ``types`` analysis instead (see
    :func:`validate`).
    """
    report = validate(program, strict_address_types=strict_address_types)
    if not report.ok:
        raise NDlogValidationError("; ".join(report.errors))
    return program

"""Pretty-printer emitting parseable NDlog source.

``parse(format_program(p))`` reproduces ``p`` structurally; the property
tests rely on this round-trip.
"""

from __future__ import annotations

from typing import List

from repro.errors import ReproError
from repro.ndlog.ast import (
    Assignment,
    Condition,
    INFINITY,
    Literal,
    Materialization,
    Program,
    Rule,
)
from repro.ndlog.terms import (
    AggregateSpec,
    BinOp,
    Constant,
    FuncCall,
    NIL,
    Term,
    TupleTerm,
    UnaryOp,
    Variable,
)


def format_value(value) -> str:
    """Render a constant value as NDlog source."""
    if value == NIL and isinstance(value, tuple):
        return "nil"
    if isinstance(value, tuple):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if value == INFINITY:
            return "infinity"
        return repr(value)
    if isinstance(value, str):
        if value.isidentifier() and value[0].islower():
            return value
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    raise ReproError(f"cannot format constant {value!r}")


def format_term(term: Term) -> str:
    if isinstance(term, Variable):
        return ("@" if term.location else "") + term.name
    if isinstance(term, Constant):
        if term.location:
            return "@" + str(term.value)
        return format_value(term.value)
    if isinstance(term, AggregateSpec):
        return f"{term.func}<{term.var or '*'}>"
    if isinstance(term, FuncCall):
        return f"{term.name}({', '.join(format_term(a) for a in term.args)})"
    if isinstance(term, TupleTerm):
        return f"{term.pred}({', '.join(format_term(a) for a in term.args)})"
    if isinstance(term, BinOp):
        return f"({format_term(term.left)} {term.op} {format_term(term.right)})"
    if isinstance(term, UnaryOp):
        return f"{term.op}{format_term(term.operand)}"
    raise ReproError(f"cannot format term {term!r}")


def format_literal(literal: Literal) -> str:
    hash_mark = "#" if literal.link_literal else ""
    args = ", ".join(format_term(a) for a in literal.args)
    return f"{hash_mark}{literal.pred}({args})"


def format_body_item(item) -> str:
    if isinstance(item, Literal):
        return format_literal(item)
    if isinstance(item, Assignment):
        return f"{item.var.name} := {format_term(item.expr)}"
    if isinstance(item, Condition):
        return format_term(item.expr)
    raise ReproError(f"cannot format body item {item!r}")


def format_rule(rule: Rule) -> str:
    label = f"{rule.label}: " if rule.label else ""
    head = format_literal(rule.head)
    if not rule.body:
        return f"{label}{head}."
    body = ", ".join(format_body_item(i) for i in rule.body)
    return f"{label}{head} :- {body}."


def format_materialization(mat: Materialization) -> str:
    life = "infinity" if mat.lifetime == INFINITY else repr(mat.lifetime)
    size = "infinity" if mat.max_size == INFINITY else repr(mat.max_size)
    keys = ", ".join(str(k) for k in mat.keys)
    return f"materialize({mat.pred}, {life}, {size}, keys({keys}))."


def format_program(program: Program) -> str:
    lines: List[str] = []
    for mat in program.materializations.values():
        lines.append(format_materialization(mat))
    for fact in program.facts:
        lines.append(format_literal(fact) + ".")
    for rule in program.rules:
        lines.append(format_rule(rule))
    if program.query is not None:
        lines.append(f"Query: {format_literal(program.query)}.")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Provenance rendering
# ----------------------------------------------------------------------
def _safe_value(value) -> str:
    """``format_value`` with a repr fallback for runtime-only values
    that have no source form (e.g.
    :class:`~repro.ndlog.terms.ConstructedTuple`, which real table rows
    and wire payloads carry)."""
    try:
        return format_value(value)
    except ReproError:
        return repr(value)


def format_fact(fact) -> str:
    """Render a ground :class:`~repro.engine.facts.Fact` as source-style
    text (``pred(v1, v2, ...)``)."""
    return f"{fact.pred}({', '.join(_safe_value(v) for v in fact.args)})"


def format_delta(delta) -> str:
    """Render a weighted :class:`~repro.engine.facts.Delta` as
    ``+2 pred(v1, ...)@ts`` -- the Z-set reading: the fact, the signed
    multiplicity it contributes, and the logical timestamp."""
    return f"{delta.weight:+d} {format_fact(delta.fact)}@{delta.ts}"


def format_derivation(tree, indent: str = "") -> str:
    """Render a :class:`~repro.provenance.query.DerivationTree` as an
    indented proof tree.

    Each line shows the fact, then how it holds: ``(base)`` for leaves,
    ``<- rule @ node`` for rule firings, ``(...)`` for cycle/depth
    truncations.  Accepts any object with the tree's attributes (no
    import of :mod:`repro.provenance` -- this module stays a leaf).
    """
    if tree is None:
        return indent + "(no derivation recorded)"
    lines: List[str] = []
    _format_tree(tree, indent, lines)
    return "\n".join(lines)


def _format_tree(tree, indent: str, lines: List[str]) -> None:
    label = format_fact(tree.fact)
    if tree.truncated:
        lines.append(f"{indent}{label}   (see above; cycle truncated)")
        return
    if tree.rule is None:
        lines.append(f"{indent}{label}   (base)")
        return
    where = f" @ {tree.node}" if tree.node else ""
    extra = (f", {tree.alternatives} derivations"
             if tree.alternatives > 1 else "")
    lines.append(f"{indent}{label}   <- {tree.rule}{where}{extra}")
    for child in tree.children:
        _format_tree(child, indent + "  ", lines)


def format_why_not(report, indent: str = "") -> str:
    """Render a :class:`~repro.provenance.query.WhyNotReport` as an
    indented failure analysis."""
    pattern = ", ".join(
        "_" if value is None else _safe_value(value)
        for value in report.args
    )
    head = f"{indent}why not {report.pred}({pattern})?"
    lines = [head]
    if report.present:
        lines.append(f"{indent}  -> present (a matching tuple exists)")
        return "\n".join(lines)
    if report.is_base:
        lines.append(
            f"{indent}  -> base relation: no rule derives "
            f"{report.pred}; the fact was never inserted"
        )
        return "\n".join(lines)
    for failure in report.failures:
        if failure.status == "head-mismatch":
            lines.append(
                f"{indent}  rule {failure.rule}: head cannot match the "
                f"requested tuple"
            )
        elif failure.status == "satisfiable":
            lines.append(
                f"{indent}  rule {failure.rule}: body is satisfiable -- "
                f"the tuple should be derivable (engine inconsistency?)"
            )
        else:
            lines.append(
                f"{indent}  rule {failure.rule}: blocked on "
                f"{failure.blocker}"
            )
            if failure.nested is not None:
                lines.append(format_why_not(failure.nested, indent + "    "))
    return "\n".join(lines)


def format_diagnostic(diag, verbose: bool = False) -> str:
    """One ndlint finding, gcc-style::

        warning ND201 [termination] rule SP2: recursive rule grows ...
    """
    anchor = f" rule {diag.rule}" if diag.rule else (
        f" relation {diag.pred}" if diag.pred else "")
    lines = [f"{diag.severity} {diag.code} [{diag.analysis}]"
             f"{anchor}: {diag.message}"]
    if verbose and diag.span:
        lines.append(f"    | {diag.span}")
    if diag.hint:
        lines.append(f"    = hint: {diag.hint}")
    return "\n".join(lines)


def format_analysis_report(report, verbose: bool = False) -> str:
    """A full ndlint report: header, findings (most severe first), and
    the per-severity tally."""
    title = report.program_name or "<program>"
    lines = [f"ndlint report for {title}",
             f"  analyses: {', '.join(report.analyses)}"]
    if not report.diagnostics:
        lines.append("  clean: no findings")
        return "\n".join(lines)
    lines.append("")
    for diag in report.diagnostics:
        for line in format_diagnostic(diag, verbose=verbose).splitlines():
            lines.append(f"  {line}")
    counts = report.counts()
    tally = ", ".join(f"{counts[name]} {name}"
                      for name in ("error", "warning", "info")
                      if counts.get(name))
    lines.append("")
    lines.append(f"  {len(report.diagnostics)} finding(s): {tally}")
    return "\n".join(lines)

"""Pretty-printer emitting parseable NDlog source.

``parse(format_program(p))`` reproduces ``p`` structurally; the property
tests rely on this round-trip.
"""

from __future__ import annotations

from typing import List

from repro.errors import ReproError
from repro.ndlog.ast import (
    Assignment,
    Condition,
    INFINITY,
    Literal,
    Materialization,
    Program,
    Rule,
)
from repro.ndlog.terms import (
    AggregateSpec,
    BinOp,
    Constant,
    FuncCall,
    NIL,
    Term,
    TupleTerm,
    UnaryOp,
    Variable,
)


def format_value(value) -> str:
    """Render a constant value as NDlog source."""
    if value == NIL and isinstance(value, tuple):
        return "nil"
    if isinstance(value, tuple):
        return "[" + ", ".join(format_value(v) for v in value) + "]"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        if value == INFINITY:
            return "infinity"
        return repr(value)
    if isinstance(value, str):
        if value.isidentifier() and value[0].islower():
            return value
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    raise ReproError(f"cannot format constant {value!r}")


def format_term(term: Term) -> str:
    if isinstance(term, Variable):
        return ("@" if term.location else "") + term.name
    if isinstance(term, Constant):
        if term.location:
            return "@" + str(term.value)
        return format_value(term.value)
    if isinstance(term, AggregateSpec):
        return f"{term.func}<{term.var or '*'}>"
    if isinstance(term, FuncCall):
        return f"{term.name}({', '.join(format_term(a) for a in term.args)})"
    if isinstance(term, TupleTerm):
        return f"{term.pred}({', '.join(format_term(a) for a in term.args)})"
    if isinstance(term, BinOp):
        return f"({format_term(term.left)} {term.op} {format_term(term.right)})"
    if isinstance(term, UnaryOp):
        return f"{term.op}{format_term(term.operand)}"
    raise ReproError(f"cannot format term {term!r}")


def format_literal(literal: Literal) -> str:
    hash_mark = "#" if literal.link_literal else ""
    args = ", ".join(format_term(a) for a in literal.args)
    return f"{hash_mark}{literal.pred}({args})"


def format_body_item(item) -> str:
    if isinstance(item, Literal):
        return format_literal(item)
    if isinstance(item, Assignment):
        return f"{item.var.name} := {format_term(item.expr)}"
    if isinstance(item, Condition):
        return format_term(item.expr)
    raise ReproError(f"cannot format body item {item!r}")


def format_rule(rule: Rule) -> str:
    label = f"{rule.label}: " if rule.label else ""
    head = format_literal(rule.head)
    if not rule.body:
        return f"{label}{head}."
    body = ", ".join(format_body_item(i) for i in rule.body)
    return f"{label}{head} :- {body}."


def format_materialization(mat: Materialization) -> str:
    life = "infinity" if mat.lifetime == INFINITY else repr(mat.lifetime)
    size = "infinity" if mat.max_size == INFINITY else repr(mat.max_size)
    keys = ", ".join(str(k) for k in mat.keys)
    return f"materialize({mat.pred}, {life}, {size}, keys({keys}))."


def format_program(program: Program) -> str:
    lines: List[str] = []
    for mat in program.materializations.values():
        lines.append(format_materialization(mat))
    for fact in program.facts:
        lines.append(format_literal(fact) + ".")
    for rule in program.rules:
        lines.append(format_rule(rule))
    if program.query is not None:
        lines.append(f"Query: {format_literal(program.query)}.")
    return "\n".join(lines) + "\n"

"""Terms and expressions of the NDlog language.

A *term* is anything that may appear as a predicate argument: variables,
constants, arithmetic/boolean expressions, builtin function calls, tuple
constructors (``link(@S,@D,C)`` used as a function argument), and aggregate
specifications (``min<C>``, head-only).

Terms are immutable and hashable so they can be used as dictionary keys and
compared structurally in tests.

Address values (the contents of a location specifier) are ordinary Python
strings at runtime; what makes a term an *address type* is the ``@`` marker
recorded on the term (``location=True``), which the validator uses to
enforce address type safety (Definition 6.2 of the paper).
"""

from __future__ import annotations

import operator as _operator
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import EvaluationError

#: Aggregate function names accepted in rule heads (``min<C>`` etc.).
AGGREGATE_FUNCS = ("min", "max", "count", "sum", "avg")

#: The distinguished empty-list constant. Path vectors are Python tuples.
NIL: tuple = ()


class Term:
    """Base class for all NDlog terms."""

    __slots__ = ()

    def variables(self) -> frozenset:
        """Return the set of variable names occurring in this term."""
        return frozenset()


@dataclass(frozen=True)
class Variable(Term):
    """A logic variable.  ``location=True`` when written ``@X``."""

    name: str
    location: bool = field(default=False, compare=False)

    def variables(self) -> frozenset:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return ("@" if self.location else "") + self.name


@dataclass(frozen=True)
class Constant(Term):
    """A constant value: number, string atom, address, or list.

    ``location=True`` when written ``@addr`` (an address constant).
    """

    value: object
    location: bool = field(default=False, compare=False)

    def __repr__(self) -> str:
        prefix = "@" if self.location else ""
        if self.value == NIL:
            return prefix + "nil"
        return prefix + repr(self.value)


@dataclass(frozen=True)
class AggregateSpec(Term):
    """An aggregate field in a rule head, e.g. ``min<C>``.

    ``func`` is one of :data:`AGGREGATE_FUNCS`; ``var`` is the aggregated
    variable name (empty for ``count<*>``).
    """

    func: str
    var: str

    def variables(self) -> frozenset:
        return frozenset((self.var,)) if self.var else frozenset()

    def __repr__(self) -> str:
        return f"{self.func}<{self.var or '*'}>"


@dataclass(frozen=True)
class FuncCall(Term):
    """A builtin function application, e.g. ``f_concatPath(X, P)``."""

    name: str
    args: Tuple[Term, ...]

    def variables(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class TupleTerm(Term):
    """A tuple constructor used as a term, e.g. ``link(@S,@D,C)`` inside
    ``f_concatPath(link(@S,@D,C), nil)`` in rule SP1 of the paper.

    Evaluates to a :class:`ConstructedTuple` value.
    """

    pred: str
    args: Tuple[Term, ...]

    def variables(self) -> frozenset:
        out: frozenset = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def __repr__(self) -> str:
        return f"{self.pred}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class BinOp(Term):
    """A binary arithmetic or comparison expression."""

    op: str
    left: Term
    right: Term

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class UnaryOp(Term):
    """A unary expression (negation / logical not)."""

    op: str
    operand: Term

    def variables(self) -> frozenset:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


@dataclass(frozen=True)
class ConstructedTuple:
    """Runtime value of a :class:`TupleTerm`: a named tuple of values.

    Builtin list functions (``f_concatPath``) understand these; e.g. the
    node sequence of ``link(a, b, 5)`` is ``(a, b)``.
    """

    pred: str
    values: Tuple[object, ...]

    def __repr__(self) -> str:
        return f"{self.pred}{self.values!r}"


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}

_COMPARE = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_BOOL = {
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}

#: C-level equivalents of _ARITH/_COMPARE used by :func:`compile_term`.
_OPERATOR_C = {
    "+": _operator.add,
    "-": _operator.sub,
    "*": _operator.mul,
    "/": _operator.truediv,
    "%": _operator.mod,
    "==": _operator.eq,
    "!=": _operator.ne,
    "<": _operator.lt,
    "<=": _operator.le,
    ">": _operator.gt,
    ">=": _operator.ge,
}


def evaluate(term: Term, bindings: dict, functions: dict) -> object:
    """Evaluate ``term`` under ``bindings`` using the builtin ``functions``.

    ``bindings`` maps variable names to runtime values; ``functions`` maps
    builtin names (``f_...``) to Python callables.

    Raises :class:`EvaluationError` on unbound variables or unknown
    functions so that program bugs surface loudly rather than silently
    producing wrong tuples.
    """
    if isinstance(term, Constant):
        return term.value
    if isinstance(term, Variable):
        try:
            return bindings[term.name]
        except KeyError:
            raise EvaluationError(f"unbound variable {term.name!r}") from None
    if isinstance(term, BinOp):
        left = evaluate(term.left, bindings, functions)
        right = evaluate(term.right, bindings, functions)
        op = term.op
        if op in _ARITH:
            return _ARITH[op](left, right)
        if op in _COMPARE:
            return _COMPARE[op](left, right)
        if op in _BOOL:
            return _BOOL[op](left, right)
        raise EvaluationError(f"unknown operator {op!r}")
    if isinstance(term, UnaryOp):
        value = evaluate(term.operand, bindings, functions)
        if term.op == "-":
            return -value
        if term.op == "!":
            return not value
        raise EvaluationError(f"unknown unary operator {term.op!r}")
    if isinstance(term, FuncCall):
        func = functions.get(term.name)
        if func is None:
            raise EvaluationError(f"unknown function {term.name!r}")
        args = [evaluate(a, bindings, functions) for a in term.args]
        return func(*args)
    if isinstance(term, TupleTerm):
        values = tuple(evaluate(a, bindings, functions) for a in term.args)
        return ConstructedTuple(term.pred, values)
    if isinstance(term, AggregateSpec):
        raise EvaluationError("aggregate specs cannot be evaluated directly")
    raise EvaluationError(f"cannot evaluate term {term!r}")


def compile_term(term: Term):
    """Compile ``term`` into a closure ``fn(bindings, functions)``.

    Semantically identical to :func:`evaluate`, but the type dispatch
    happens once, here, instead of per evaluation -- the compiled join
    plans (:mod:`repro.engine.rules`) call these closures in their hot
    loops.  Raises :class:`EvaluationError` for terms that can never be
    evaluated (aggregate specs, unknown operators).
    """
    if isinstance(term, Constant):
        value = term.value
        return lambda bindings, functions: value
    if isinstance(term, Variable):
        name = term.name

        def var_fn(bindings, functions):
            try:
                return bindings[name]
            except KeyError:
                raise EvaluationError(
                    f"unbound variable {name!r}"
                ) from None

        return var_fn
    if isinstance(term, BinOp):
        left = compile_term(term.left)
        right = compile_term(term.right)
        op = term.op
        # C-level operator functions where available (one Python frame
        # instead of two per evaluation).
        fn = _OPERATOR_C.get(op) or _BOOL.get(op)
        if fn is None:
            raise EvaluationError(f"unknown operator {op!r}")
        return lambda bindings, functions: fn(
            left(bindings, functions), right(bindings, functions)
        )
    if isinstance(term, UnaryOp):
        operand = compile_term(term.operand)
        if term.op == "-":
            return lambda bindings, functions: -operand(bindings, functions)
        if term.op == "!":
            return lambda bindings, functions: not operand(bindings, functions)
        raise EvaluationError(f"unknown unary operator {term.op!r}")
    if isinstance(term, FuncCall):
        name = term.name
        arg_fns = tuple(compile_term(arg) for arg in term.args)

        def _resolve(functions):
            func = functions.get(name)
            if func is None:
                raise EvaluationError(f"unknown function {name!r}")
            return func

        # Specialize the common small arities: no argument-list frame.
        if len(arg_fns) == 1:
            arg0 = arg_fns[0]
            return lambda bindings, functions: _resolve(functions)(
                arg0(bindings, functions)
            )
        if len(arg_fns) == 2:
            arg0, arg1 = arg_fns
            return lambda bindings, functions: _resolve(functions)(
                arg0(bindings, functions), arg1(bindings, functions)
            )

        def call_fn(bindings, functions):
            return _resolve(functions)(
                *[fn(bindings, functions) for fn in arg_fns]
            )

        return call_fn
    if isinstance(term, TupleTerm):
        pred = term.pred
        arg_fns = tuple(compile_term(arg) for arg in term.args)
        return lambda bindings, functions: ConstructedTuple(
            pred, tuple(fn(bindings, functions) for fn in arg_fns)
        )
    if isinstance(term, AggregateSpec):
        raise EvaluationError("aggregate specs cannot be evaluated directly")
    raise EvaluationError(f"cannot evaluate term {term!r}")

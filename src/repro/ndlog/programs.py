"""Canonical NDlog programs from the paper, plus standard test programs.

Each builder returns a freshly parsed :class:`~repro.ndlog.ast.Program`.
The shortest-path program appears in three forms:

* :func:`shortest_path` -- the literal Figure 1 program (SP1-SP4).  On a
  cyclic graph it only terminates when aggregate selections are enabled,
  exactly as discussed in Sections 2 and 5.1.1 of the paper.
* :func:`shortest_path_safe` -- adds the ``f_member`` cycle guard to SP2,
  so it terminates under any evaluation strategy (this is the guard the
  path-vector protocol the query models would carry).
* :func:`shortest_path_dynamic` -- the protocol form used for the dynamic
  experiments (Figures 13/14): cycle guard plus
  ``materialize(path, keys(1,2,3))`` so each (src, dst, nexthop) slot
  holds the neighbour's latest advertisement, enabling eventual
  consistency under deletions and cost increases.
"""

from __future__ import annotations

from repro.ndlog.ast import Program
from repro.ndlog.parser import parse

SHORTEST_PATH = """
SP1: path(@S, @D, @D, P, C) :- #link(@S, @D, C),
     P := f_concatPath(link(@S, @D, C), nil).
SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1),
     path(@Z, @D, @Z2, P2, C2), C := C1 + C2,
     P := f_concatPath(link(@S, @Z, C1), P2).
SP3: spCost(@S, @D, min<C>) :- path(@S, @D, @Z, P, C).
SP4: shortestPath(@S, @D, P, C) :- spCost(@S, @D, C), path(@S, @D, @Z, P, C).
Query: shortestPath(@S, @D, P, C).
"""

SHORTEST_PATH_SAFE = """
SP1: path(@S, @D, @D, P, C) :- #link(@S, @D, C),
     P := f_concatPath(link(@S, @D, C), nil).
SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1),
     path(@Z, @D, @Z2, P2, C2), f_member(P2, S) == 0, C := C1 + C2,
     P := f_concatPath(link(@S, @Z, C1), P2).
SP3: spCost(@S, @D, min<C>) :- path(@S, @D, @Z, P, C).
SP4: shortestPath(@S, @D, P, C) :- spCost(@S, @D, C), path(@S, @D, @Z, P, C).
Query: shortestPath(@S, @D, P, C).
"""

SHORTEST_PATH_DYNAMIC = """
materialize(path, infinity, infinity, keys(1, 2, 3)).
SP1: path(@S, @D, @D, P, C) :- #link(@S, @D, C),
     P := f_concatPath(link(@S, @D, C), nil).
SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1),
     path(@Z, @D, @Z2, P2, C2), f_member(P2, S) == 0, C := C1 + C2,
     P := f_concatPath(link(@S, @Z, C1), P2).
SP3: spCost(@S, @D, min<C>) :- path(@S, @D, @Z, P, C).
SP4: shortestPath(@S, @D, P, C) :- spCost(@S, @D, C), path(@S, @D, @Z, P, C).
Query: shortestPath(@S, @D, P, C).
"""

MAGIC_DST = """
SP1D: path(@S, @D, @D, P, C) :- magicDst(@D), #link(@S, @D, C),
      P := f_concatPath(link(@S, @D, C), nil).
SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1),
     path(@Z, @D, @Z2, P2, C2), f_member(P2, S) == 0, C := C1 + C2,
     P := f_concatPath(link(@S, @Z, C1), P2).
SP3: spCost(@S, @D, min<C>) :- path(@S, @D, @Z, P, C).
SP4: shortestPath(@S, @D, P, C) :- spCost(@S, @D, C), path(@S, @D, @Z, P, C).
Query: shortestPath(@S, @D, P, C).
"""

MAGIC_SRC_DST = """
SP1SD: pathDst(@D, @S, @D, P, C) :- magicSrc(@S), #link(@S, @D, C),
       P := f_concatPath(link(@S, @D, C), nil).
SP2SD: pathDst(@D, @S, @Z, P, C) :- pathDst(@Z, @S, @Z1, P1, C1),
       #link(@Z, @D, C2), f_member(P1, D) == 0, C := C1 + C2,
       P := f_concatPath(P1, link(@Z, @D, C2)).
SP3SD: spCost(@D, @S, min<C>) :- magicDst(@D), pathDst(@D, @S, @Z, P, C).
SP4SD: shortestPath(@D, @S, P, C) :- spCost(@D, @S, C),
       pathDst(@D, @S, @Z, P, C).
Query: shortestPath(@D, @S, P, C).
"""

MULTI_QUERY_MAGIC = """
MQ1: pathQ(@D, Qid, @Dst, P, C) :- magicQuery(@S, Qid, @Dst), #link(@S, @D, C),
     P := f_concatPath(link(@S, @D, C), nil).
MQ2: pathQ(@D, Qid, @Dst, P, C) :- pathQ(@Z, Qid, @Dst, P1, C1),
     #link(@Z, @D, C2), Z != Dst, f_member(P1, D) == 0,
     C := C1 + C2, P := f_concatPath(P1, link(@Z, @D, C2)).
MQ3: qCost(@Dst, Qid, min<C>) :- pathQ(@Dst, Qid, @Dst, P, C).
MQ4: answer(@Dst, Qid, P, C) :- qCost(@Dst, Qid, C), pathQ(@Dst, Qid, @Dst, P, C).
MQ5: answer(@N, Qid, P, C) :- answer(@M, Qid, P, C), #link(@M, @N, C2),
     N == f_prevhop(P, M), M != f_first(P).
MQ6: ansCost(@N, Qid, min<C>) :- answer(@N, Qid, P, C), N == f_first(P).
MQ7: queryResult(@N, Qid, P, C) :- ansCost(@N, Qid, C),
     answer(@N, Qid, P, C), N == f_first(P).
Query: queryResult(@N, Qid, P, C).
"""

REACHABILITY = """
R1: reach(@S, @D) :- #link(@S, @D, C).
R2: reach(@S, @D) :- #link(@S, @Z, C), reach(@Z, @D).
Query: reach(@S, @D).
"""

DISTANCE_VECTOR = """
DV1: route(@S, @D, @D, C) :- #link(@S, @D, C).
DV2: route(@S, @D, @Z, C) :- #link(@S, @Z, C1), route(@Z, @D, @Z2, C2),
     S != D, C := C1 + C2, C < 16.
DV3: bestCost(@S, @D, min<C>) :- route(@S, @D, @Z, C).
DV4: bestRoute(@S, @D, @Z, C) :- bestCost(@S, @D, C), route(@S, @D, @Z, C).
Query: bestRoute(@S, @D, @Z, C).
"""

TRANSITIVE_CLOSURE = """
T1: tc(X, Y) :- edge(X, Y).
T2: tc(X, Z) :- edge(X, Y), tc(Y, Z).
Query: tc(X, Y).
"""

TRANSITIVE_CLOSURE_NONLINEAR = """
T1: tc(X, Y) :- edge(X, Y).
T2: tc(X, Z) :- tc(X, Y), tc(Y, Z).
Query: tc(X, Y).
"""

SAME_GENERATION = """
S1: sg(X, X) :- person(X).
S2: sg(X, Y) :- parent(X, Xp), sg(Xp, Yp), parent(Y, Yp).
Query: sg(X, Y).
"""


def shortest_path() -> Program:
    """Figure 1 of the paper, verbatim (modulo ``:=`` for assignments)."""
    return parse(SHORTEST_PATH, name="shortest_path")


def shortest_path_safe() -> Program:
    """Figure 1 plus a cycle guard on SP2 (terminates without pruning)."""
    return parse(SHORTEST_PATH_SAFE, name="shortest_path_safe")


def shortest_path_dynamic() -> Program:
    """Protocol form for dynamic networks (Figures 13/14); see module doc."""
    return parse(SHORTEST_PATH_DYNAMIC, name="shortest_path_dynamic")


def magic_dst() -> Program:
    """Section 5.1.2's SP1-D rewrite: paths only for ``magicDst`` targets."""
    return parse(MAGIC_DST, name="magic_dst")


def magic_src_dst() -> Program:
    """The magic-shortest-path query (SP1-SD..SP4-SD): top-down search
    filtered by both ``magicSrc`` and ``magicDst``."""
    return parse(MAGIC_SRC_DST, name="magic_src_dst")


def multi_query_magic() -> Program:
    """Multi-query form of the magic-shortest-path program.

    Each query is a ``magicQuery(@src, qid, @dst)`` fact; ``pathQ`` tuples
    carry the query id and intended destination, the destination derives
    the ``answer`` and rule MQ5 routes it back hop-by-hop along the
    discovered path's reverse (enabling the result caching of Section
    5.2).  Used by the Figure 11 experiment.
    """
    return parse(MULTI_QUERY_MAGIC, name="multi_query_magic")


def reachability() -> Program:
    """Two-rule network reachability (terminates on cyclic graphs)."""
    return parse(REACHABILITY, name="reachability")


def distance_vector() -> Program:
    """Distance-vector routing with a RIP-style hop bound of 16.

    Without a path vector there is nothing to guard cycles with, so the
    relation keeps set semantics (full-tuple key; the C < 16 bound makes
    the domain finite) -- keyed "latest advert wins" slots would
    count-to-infinity around cycles, which is exactly the pathology path
    vectors exist to prevent (Section 2.3).
    """
    return parse(DISTANCE_VECTOR, name="distance_vector")


def transitive_closure() -> Program:
    """Classic linear transitive closure (plain Datalog, for engine tests)."""
    return parse(TRANSITIVE_CLOSURE, name="transitive_closure")


def transitive_closure_nonlinear() -> Program:
    """Non-linear transitive closure (exercises Theorem 2's timestamp
    discipline: two recursive literals in one body)."""
    return parse(TRANSITIVE_CLOSURE_NONLINEAR, name="transitive_closure_nonlinear")


def same_generation() -> Program:
    """The classic same-generation query (plain Datalog, for magic-sets
    tests)."""
    return parse(SAME_GENERATION, name="same_generation")

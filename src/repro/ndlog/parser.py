"""Recursive-descent parser for NDlog.

Produces :class:`repro.ndlog.ast.Program` objects.  The parser is
deliberately permissive about layout (rules may span lines, labels are
optional) but strict about structure; malformed input raises
:class:`repro.errors.NDlogSyntaxError` with position information.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import NDlogSyntaxError
from repro.ndlog import lexer
from repro.ndlog.ast import (
    Assignment,
    Condition,
    INFINITY,
    Literal,
    Materialization,
    Program,
    Rule,
)
from repro.ndlog.terms import (
    AGGREGATE_FUNCS,
    AggregateSpec,
    BinOp,
    Constant,
    FuncCall,
    NIL,
    Term,
    TupleTerm,
    UnaryOp,
    Variable,
)

#: Comparison operators usable at the top of a condition.
_CMP_OPS = ("==", "!=", "<=", ">=", "<", ">")


class Parser:
    def __init__(self, source: str):
        self.tokens = lexer.tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token utilities
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> lexer.Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> lexer.Token:
        token = self._peek()
        if token.kind != lexer.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Optional[lexer.Token] = None):
        token = token or self._peek()
        raise NDlogSyntaxError(message, token.line, token.column)

    def _expect(self, value: str) -> lexer.Token:
        token = self._next()
        if token.value != value:
            self._error(f"expected {value!r}, found {token.value!r}", token)
        return token

    def _at(self, value: str, offset: int = 0) -> bool:
        return self._peek(offset).value == value

    # ------------------------------------------------------------------
    # Program structure
    # ------------------------------------------------------------------
    def parse_program(self, name: str = "") -> Program:
        program = Program(name=name)
        while self._peek().kind != lexer.EOF:
            self._parse_statement(program)
        return program

    def _parse_statement(self, program: Program) -> None:
        token = self._peek()
        if token.kind == lexer.IDENT and token.value == "materialize":
            program.materializations.update([self._parse_materialize()])
            return

        label = ""
        # A leading ``name:`` (not ``:-``) is a rule label or the Query marker.
        if token.kind in (lexer.IDENT, lexer.VARIABLE) and self._at(":", 1):
            label = self._next().value
            self._expect(":")

        if label.lower() == "query":
            literal = self._parse_literal()
            self._expect(".")
            program.query = literal
            return

        head = self._parse_literal(allow_aggregates=True)
        if self._at(":-"):
            self._next()
            body = self._parse_body()
            self._expect(".")
            program.rules.append(Rule(head=head, body=tuple(body), label=label))
        else:
            self._expect(".")
            program.facts.append(head)

    def _parse_materialize(self) -> Tuple[str, Materialization]:
        self._expect("materialize")
        self._expect("(")
        pred_token = self._next()
        if pred_token.kind != lexer.IDENT:
            self._error("materialize expects a predicate name", pred_token)
        pred = pred_token.value

        lifetime = INFINITY
        max_size = INFINITY
        keys: Tuple[int, ...] = ()
        # Remaining arguments: optional lifetime, size, then keys(...).
        scalars: List[float] = []
        while self._at(","):
            self._next()
            token = self._peek()
            if token.value == "keys":
                self._next()
                self._expect("(")
                key_list: List[int] = []
                while not self._at(")"):
                    number = self._next()
                    if number.kind != lexer.NUMBER:
                        self._error("keys(...) expects integers", number)
                    key_list.append(int(number.value))
                    if self._at(","):
                        self._next()
                self._expect(")")
                keys = tuple(key_list)
            elif token.value == "infinity":
                self._next()
                scalars.append(INFINITY)
            elif token.kind == lexer.NUMBER:
                self._next()
                scalars.append(float(token.value))
            else:
                self._error("unexpected materialize argument", token)
        self._expect(")")
        self._expect(".")
        if scalars:
            lifetime = scalars[0]
        if len(scalars) > 1:
            max_size = scalars[1]
        return pred, Materialization(pred, lifetime, max_size, keys)

    # ------------------------------------------------------------------
    # Rule bodies
    # ------------------------------------------------------------------
    def _parse_body(self) -> List[object]:
        items: List[object] = [self._parse_body_item()]
        while self._at(","):
            self._next()
            items.append(self._parse_body_item())
        return items

    def _parse_body_item(self) -> object:
        token = self._peek()
        # Link literal: ``#link(...)``.
        if token.value == "#":
            return self._parse_literal()
        # Negated literal: ``!pred(...)`` (reserved for future work, parsed
        # so the validator can reject it with a clear message).
        if token.value == "!" and self._peek(1).kind == lexer.IDENT and self._at("(", 2):
            self._next()
            literal = self._parse_literal()
            return Literal(literal.pred, literal.args, literal.link_literal, negated=True)
        # Assignment: ``Var = expr`` or ``Var := expr``.
        if token.kind == lexer.VARIABLE and (
            (self._at("=", 1) and not self._at("==", 1)) or self._at(":=", 1)
        ):
            var = Variable(self._next().value)
            self._next()  # '=' or ':='
            expr = self._parse_expression()
            return Assignment(var, expr)
        # Ordinary literal: lowercase name followed by '(' and not a
        # builtin function call (functions start with ``f_``).
        if (
            token.kind == lexer.IDENT
            and self._at("(", 1)
            and not token.value.startswith("f_")
        ):
            return self._parse_literal()
        # Anything else is a boolean condition.
        return Condition(self._parse_expression())

    # ------------------------------------------------------------------
    # Literals
    # ------------------------------------------------------------------
    def _parse_literal(self, allow_aggregates: bool = False) -> Literal:
        link = False
        if self._at("#"):
            self._next()
            link = True
        pred_token = self._next()
        if pred_token.kind != lexer.IDENT:
            self._error("expected predicate name", pred_token)
        self._expect("(")
        args: List[Term] = []
        while not self._at(")"):
            args.append(self._parse_literal_arg(allow_aggregates))
            if self._at(","):
                self._next()
        self._expect(")")
        return Literal(pred_token.value, tuple(args), link_literal=link)

    def _parse_literal_arg(self, allow_aggregates: bool) -> Term:
        token = self._peek()
        if (
            allow_aggregates
            and token.kind == lexer.IDENT
            and token.value in AGGREGATE_FUNCS
            and self._at("<", 1)
        ):
            func = self._next().value
            self._expect("<")
            if self._at("*"):
                self._next()
                var = ""
            else:
                var_token = self._next()
                if var_token.kind != lexer.VARIABLE:
                    self._error("aggregate expects a variable", var_token)
                var = var_token.value
            self._expect(">")
            return AggregateSpec(func, var)
        return self._parse_expression()

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> Term:
        return self._parse_or()

    def _parse_or(self) -> Term:
        left = self._parse_and()
        while self._at("||"):
            self._next()
            left = BinOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Term:
        left = self._parse_comparison()
        while self._at("&&"):
            self._next()
            left = BinOp("&&", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Term:
        left = self._parse_additive()
        for op in _CMP_OPS:
            if self._at(op):
                self._next()
                return BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Term:
        left = self._parse_multiplicative()
        while self._at("+") or self._at("-"):
            op = self._next().value
            left = BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> Term:
        left = self._parse_unary()
        while self._at("*") or self._at("/") or self._at("%"):
            op = self._next().value
            left = BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Term:
        if self._at("-"):
            self._next()
            return UnaryOp("-", self._parse_unary())
        if self._at("!"):
            self._next()
            return UnaryOp("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Term:
        token = self._peek()

        if token.value == "(":
            self._next()
            expr = self._parse_expression()
            self._expect(")")
            return expr

        if token.value == "[":
            return self._parse_list()

        if token.value == "@":
            self._next()
            inner = self._next()
            if inner.kind == lexer.VARIABLE:
                return Variable(inner.value, location=True)
            if inner.kind == lexer.IDENT:
                return Constant(inner.value, location=True)
            if inner.kind == lexer.NUMBER:
                return Constant(_number(inner.value), location=True)
            self._error("expected address after '@'", inner)

        if token.kind == lexer.NUMBER:
            self._next()
            return Constant(_number(token.value))

        if token.kind == lexer.STRING:
            self._next()
            return Constant(token.value)

        if token.kind == lexer.VARIABLE:
            self._next()
            return Variable(token.value)

        if token.kind == lexer.IDENT:
            self._next()
            name = token.value
            if name == "nil":
                return Constant(NIL)
            if name == "true":
                return Constant(True)
            if name == "false":
                return Constant(False)
            if name == "infinity":
                return Constant(INFINITY)
            if self._at("("):
                self._next()
                args: List[Term] = []
                while not self._at(")"):
                    args.append(self._parse_expression())
                    if self._at(","):
                        self._next()
                self._expect(")")
                if name.startswith("f_"):
                    return FuncCall(name, tuple(args))
                # ``link(@S,@D,C)`` used as a term (rule SP1 in the paper).
                return TupleTerm(name, tuple(args))
            # A bare atom.
            return Constant(name)

        self._error(f"unexpected token {token.value!r}", token)

    def _parse_list(self) -> Term:
        self._expect("[")
        values: List[object] = []
        while not self._at("]"):
            item = self._parse_expression()
            if not isinstance(item, Constant):
                self._error("list literals may contain only constants")
            values.append(item.value)
            if self._at(","):
                self._next()
        self._expect("]")
        return Constant(tuple(values))


def _number(text: str):
    return float(text) if "." in text else int(text)


def parse(source: str, name: str = "") -> Program:
    """Parse NDlog ``source`` text into a :class:`Program`."""
    return Parser(source).parse_program(name=name)


def parse_rule(source: str) -> Rule:
    """Parse a single rule (convenience for tests and rewrites)."""
    program = parse(source)
    if len(program.rules) != 1:
        raise NDlogSyntaxError("expected exactly one rule")
    return program.rules[0]

"""Tokenizer for NDlog source text.

The surface syntax follows the paper (and P2's OverLog dialect closely
enough to express every program in the paper):

* rules             ``SP1: path(@S,@D,@D,P,C) :- #link(@S,@D,C), ... .``
* queries           ``Query: shortestPath(@S,@D,P,C).``
* declarations      ``materialize(link, infinity, infinity, keys(1,2)).``
* facts             ``link(@a, @b, 5).``
* comments          ``/* ... */``, ``// ...`` and ``% ...``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import NDlogSyntaxError

# Token kinds.
IDENT = "IDENT"          # lowercase-initial identifier (predicate / atom / function)
VARIABLE = "VARIABLE"    # uppercase-initial identifier
NUMBER = "NUMBER"
STRING = "STRING"
PUNCT = "PUNCT"          # punctuation and operators
EOF = "EOF"

#: Multi-character operators, longest first so the scanner is greedy.
_MULTI_OPS = (":-", ":=", "==", "!=", "<=", ">=", "&&", "||")
_SINGLE_OPS = "()[]{}<>,.@#=+-*/%!:?"


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


class Lexer:
    """A hand-rolled scanner producing :class:`Token` objects."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> NDlogSyntaxError:
        return NDlogSyntaxError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "%":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            line, column = self.line, self.column
            if self.pos >= len(self.source):
                yield Token(EOF, "", line, column)
                return
            char = self._peek()

            if char.isdigit() or (char == "." and self._peek(1).isdigit()):
                yield self._number(line, column)
                continue
            if char.isalpha() or char == "_":
                yield self._identifier(line, column)
                continue
            if char == '"' or char == "'":
                yield self._string(char, line, column)
                continue

            matched = False
            for op in _MULTI_OPS:
                if self.source.startswith(op, self.pos):
                    self._advance(len(op))
                    yield Token(PUNCT, op, line, column)
                    matched = True
                    break
            if matched:
                continue
            if char in _SINGLE_OPS:
                self._advance()
                yield Token(PUNCT, char, line, column)
                continue
            raise self._error(f"unexpected character {char!r}")

    def _number(self, line: int, column: int) -> Token:
        start = self.pos
        seen_dot = False
        while self.pos < len(self.source):
            char = self._peek()
            if char.isdigit():
                self._advance()
            elif char == "." and not seen_dot and self._peek(1).isdigit():
                seen_dot = True
                self._advance()
            else:
                break
        return Token(NUMBER, self.source[start:self.pos], line, column)

    def _identifier(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self.source[start:self.pos]
        kind = VARIABLE if text[0].isupper() else IDENT
        return Token(kind, text, line, column)

    def _string(self, quote: str, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            char = self._peek()
            if char == quote:
                self._advance()
                return Token(STRING, "".join(chars), line, column)
            if char == "\\":
                self._advance()
                escape = self._peek()
                mapping = {"n": "\n", "t": "\t", "\\": "\\", quote: quote}
                chars.append(mapping.get(escape, escape))
                self._advance()
            else:
                chars.append(char)
                self._advance()


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` fully, returning the token list (EOF included)."""
    return list(Lexer(source).tokens())

"""repro -- a reproduction of "Declarative Networking: Language, Execution
and Optimization" (Loo et al., SIGMOD 2006).

The package implements the NDlog language, centralized and relaxed
semi-naive evaluation (SN / BSN / PSN), distributed execution over a
simulated network with rule localization, incremental view maintenance
under network dynamics, and the paper's query optimizations, together
with an experiment harness that regenerates every figure of the paper's
evaluation section.

The public surface is the staged lifecycle of :mod:`repro.api` -- one
front door from source text to a live (simulated) declarative network:

Quickstart::

    import repro

    compiled = repro.compile('''
        SP1: path(@S, @D, @D, P, C) :- #link(@S, @D, C),
             P := f_concatPath(link(@S, @D, C), nil).
        SP2: path(@S, @D, @Z, P, C) :- #link(@S, @Z, C1),
             path(@Z, @D, @Z2, P2, C2), f_member(P2, S) == 0,
             C := C1 + C2, P := f_concatPath(link(@S, @Z, C1), P2).
        SP3: spCost(@S, @D, min<C>) :- path(@S, @D, @Z, P, C).
        SP4: shortestPath(@S, @D, P, C) :- spCost(@S, @D, C),
             path(@S, @D, @Z, P, C).
        Query: shortestPath(@S, @D, P, C).
    ''')
    print(compiled.explain())                 # pass diffs + join plans
    result = compiled.run(engine="psn",
                          facts={"link": [("a", "b", 1), ("b", "c", 2)]})
    print(result.rows("shortestPath"))

    deployment = compiled.deploy(n_nodes=24, degree=3)  # distributed
    deployment.advance()                                # run to quiescence
    print(deployment.query_rows())

    live = compiled.deploy(n_nodes=8, target="live",    # wall clock,
                           channels="udp")              # real sockets
    live.converge(timeout=30.0)
    print(live.query_rows())

Compile with ``provenance=True`` and any run or deployment records
rule-level derivation provenance: ``result.why(pred, row)`` /
``deployment.why(...)`` return derivation trees, ``why_not(...)``
explains absent tuples by failed-body analysis, and
``deployment.audit()`` cross-checks derivation counts against the
graph (see :mod:`repro.provenance` and ``examples/why_routing.py``).

Deployments can also be stress-tested: ``deploy(..., chaos=schedule,
reliable=True)`` injects a seeded fault plan (drops, duplication,
reordering, corruption, partitions, crashes, clock skew -- see
:mod:`repro.chaos`) while the ack/retransmit transport restores the
delivery guarantees the paper's theorems assume; a
:class:`~repro.chaos.ChaosMonitor` checks the post-chaos fixpoint
against a fault-free reference (``examples/chaos_routing.py``).

Observability rides the same switches: ``deploy(..., metrics=True,
trace=True, profile=True)`` wires a per-(node, rule, relation) metrics
registry (``deployment.metrics()`` snapshots, Prometheus text via
``metrics_text()``), delta-propagation tracing with ids piggybacked on
the wire (``save_trace(path)`` exports Chrome trace-event JSON;
``python -m repro.obs`` summarizes it), and per-strand CPU profiling
(``deployment.profile().report()``; ``explain(timings=True)`` adds
per-pass compile timings) -- see :mod:`repro.obs` and
``examples/observability.py``.

See ``examples/`` for full walkthroughs on simulated topologies and
``examples/live_routing.py`` for the live asyncio/UDP target.
"""

from repro import ndlog  # noqa: F401
from repro.analysis import AnalysisReport, Diagnostic, analyze
from repro.chaos import ChaosMonitor, ChaosSchedule  # noqa: F401
from repro.api import (
    DEFAULT_REGISTRY,
    CompiledProgram,
    Deployment,
    Pass,
    PassRegistry,
    compile,
)
from repro.engine import Database
from repro.ndlog import parse, programs, validate  # noqa: F401
from repro.provenance import (  # noqa: F401
    AuditReport,
    DerivationTree,
    ProvenanceStore,
    WhyNotReport,
)
from repro.runtime import Cluster, LiveDeployment, RuntimeConfig

__all__ = [
    "compile",
    "CompiledProgram",
    "Deployment",
    "LiveDeployment",
    "Pass",
    "PassRegistry",
    "DEFAULT_REGISTRY",
    "Database",
    "parse",
    "validate",
    "programs",
    "Cluster",
    "RuntimeConfig",
    "ChaosSchedule",
    "ChaosMonitor",
    "ProvenanceStore",
    "DerivationTree",
    "WhyNotReport",
    "AuditReport",
    "analyze",
    "AnalysisReport",
    "Diagnostic",
]

__version__ = "1.1.0"

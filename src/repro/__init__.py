"""repro -- a reproduction of "Declarative Networking: Language, Execution
and Optimization" (Loo et al., SIGMOD 2006).

The package implements the NDlog language, centralized and relaxed
semi-naive evaluation (SN / BSN / PSN), distributed execution over a
simulated network with rule localization, incremental view maintenance
under network dynamics, and the paper's query optimizations, together
with an experiment harness that regenerates every figure of the paper's
evaluation section.

Quickstart::

    from repro.ndlog import programs
    from repro.engine import Database, seminaive

    program = programs.shortest_path_safe()
    db = Database.for_program(program)
    db.load_facts("link", [("a", "b", 1), ("b", "c", 2)])
    result = seminaive.evaluate(program, db)
    print(result.table("shortestPath").rows())

See ``examples/`` for distributed runs on simulated topologies.
"""

from repro import ndlog  # noqa: F401
from repro.ndlog import programs  # noqa: F401  (re-export for convenience)

__version__ = "1.0.0"

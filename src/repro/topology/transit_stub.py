"""GT-ITM-style transit-stub underlay topologies.

Section 6.1 of the paper: "we use transit-stub topologies generated
using GT-ITM ... four transit nodes, eight nodes per stub and three
stubs per transit node.  Latency between transit nodes is 50 ms, latency
between transit nodes and their stub nodes is 10 ms, and latency between
any two nodes in the same stub is 2 ms."

GT-ITM itself is a C package; this module generates graphs with the same
structural parameters and latency classes (see DESIGN.md substitutions).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class Underlay:
    """An undirected latency-weighted graph."""

    nodes: List[str] = field(default_factory=list)
    edges: Dict[Tuple[str, str], float] = field(default_factory=dict)
    stub_nodes: List[str] = field(default_factory=list)
    transit_nodes: List[str] = field(default_factory=list)

    def add_edge(self, a: str, b: str, latency: float) -> None:
        key = (a, b) if a <= b else (b, a)
        existing = self.edges.get(key)
        if existing is None or latency < existing:
            self.edges[key] = latency

    def neighbors(self, node: str):
        for (a, b), latency in self.edges.items():
            if a == node:
                yield b, latency
            elif b == node:
                yield a, latency

    def adjacency(self) -> Dict[str, List[Tuple[str, float]]]:
        adj: Dict[str, List[Tuple[str, float]]] = {n: [] for n in self.nodes}
        for (a, b), latency in self.edges.items():
            adj[a].append((b, latency))
            adj[b].append((a, latency))
        return adj

    def latencies_from(self, source: str) -> Dict[str, float]:
        """Single-source shortest latency (Dijkstra)."""
        adj = self.adjacency()
        dist = {source: 0.0}
        heap = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nxt, w in adj[node]:
                nd = d + w
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    heapq.heappush(heap, (nd, nxt))
        return dist

    def is_connected(self) -> bool:
        if not self.nodes:
            return True
        return len(self.latencies_from(self.nodes[0])) == len(self.nodes)


def transit_stub(
    transits: int = 4,
    stubs_per_transit: int = 3,
    nodes_per_stub: int = 8,
    transit_latency: float = 0.050,
    stub_gateway_latency: float = 0.010,
    intra_stub_latency: float = 0.002,
    intra_stub_edge_prob: float = 0.3,
    seed: int = 0,
) -> Underlay:
    """Generate a transit-stub underlay with the paper's parameters.

    With the defaults this yields 4 transit + 4*3*8 = 96 stub nodes
    (100 total), matching Section 6.1.  Latencies are in seconds.
    """
    rng = random.Random(seed)
    underlay = Underlay()

    transit_ids = [f"t{i}" for i in range(transits)]
    underlay.nodes.extend(transit_ids)
    underlay.transit_nodes.extend(transit_ids)
    # Transit domain: a clique (GT-ITM uses a dense random graph; at four
    # nodes a clique is the faithful choice).
    for i, a in enumerate(transit_ids):
        for b in transit_ids[i + 1:]:
            underlay.add_edge(a, b, transit_latency)

    for t_index, transit in enumerate(transit_ids):
        for s_index in range(stubs_per_transit):
            stub_ids = [
                f"s{t_index}_{s_index}_{k}" for k in range(nodes_per_stub)
            ]
            underlay.nodes.extend(stub_ids)
            underlay.stub_nodes.extend(stub_ids)
            # Stub domain: a ring plus random chords (connected, sparse).
            for k, node in enumerate(stub_ids):
                underlay.add_edge(
                    node, stub_ids[(k + 1) % len(stub_ids)], intra_stub_latency
                )
            for i, a in enumerate(stub_ids):
                for b in stub_ids[i + 2:]:
                    if rng.random() < intra_stub_edge_prob:
                        underlay.add_edge(a, b, intra_stub_latency)
            # Gateway edge to the transit node.
            gateway = rng.choice(stub_ids)
            underlay.add_edge(gateway, transit, stub_gateway_latency)
    return underlay

"""The neighborhood function statistic N(X, r) -- Section 5.3.

"N(X,r) is the number of distinct network nodes within r hops of node X
... a natural generalization of the size of the transitive closure of a
node."  It drives the cost-based hybrid rewrite: a top-down search from
``s`` costs roughly N(s, dist(s,d)) messages, bottom-up costs
N(d, dist(s,d)), and the optimal strategy splits the radius:

    (rs, rd) = argmin_{rs + rd = dist(s,d)} N(s, rs) + N(d, rd).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from repro.topology.overlay import Overlay


def hop_distances(overlay: Overlay, source: str) -> Dict[str, int]:
    """BFS hop counts from ``source`` over the overlay."""
    adj = overlay.adjacency()
    dist = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for nxt in adj[node]:
            if nxt not in dist:
                dist[nxt] = dist[node] + 1
                frontier.append(nxt)
    return dist


def neighborhood_function(overlay: Overlay, node: str) -> List[int]:
    """``N(node, r)`` for r = 0..eccentricity, as a cumulative list.

    ``result[r]`` counts distinct nodes within r hops (node included),
    matching the transitive-closure generalization in the paper.
    """
    dist = hop_distances(overlay, node)
    radius = max(dist.values(), default=0)
    counts = [0] * (radius + 1)
    for d in dist.values():
        counts[d] += 1
    cumulative = []
    running = 0
    for count in counts:
        running += count
        cumulative.append(running)
    return cumulative


def neighborhood_at(overlay: Overlay, node: str, r: int) -> int:
    """``N(node, r)`` for one radius (clamped to the eccentricity)."""
    n_function = neighborhood_function(overlay, node)
    return n_function[min(r, len(n_function) - 1)]


def hop_distance(overlay: Overlay, a: str, b: str) -> int:
    dist = hop_distances(overlay, a)
    if b not in dist:
        raise ValueError(f"{b} unreachable from {a}")
    return dist[b]


def optimal_split(
    overlay: Overlay, src: str, dst: str
) -> Tuple[int, int, int]:
    """The paper's hybrid search split.

    Returns ``(rs, rd, cost)`` minimizing ``N(src, rs) + N(dst, rd)``
    subject to ``rs + rd = dist(src, dst)``.
    """
    distance = hop_distance(overlay, src, dst)
    n_src = neighborhood_function(overlay, src)
    n_dst = neighborhood_function(overlay, dst)

    def at(nf: List[int], r: int) -> int:
        return nf[min(r, len(nf) - 1)]

    best = None
    for rs in range(distance + 1):
        rd = distance - rs
        cost = at(n_src, rs) + at(n_dst, rd)
        if best is None or cost < best[2]:
            best = (rs, rd, cost)
    return best


def search_costs(overlay: Overlay, src: str, dst: str) -> Dict[str, int]:
    """Message-cost estimates for the three strategies of Section 5.3:
    pure top-down (flood from src), pure bottom-up (flood from dst), and
    the optimal hybrid split.  'Each node only forwards the query message
    once', so cost = nodes reached."""
    distance = hop_distance(overlay, src, dst)
    n_src = neighborhood_function(overlay, src)
    n_dst = neighborhood_function(overlay, dst)

    def at(nf, r):
        return nf[min(r, len(nf) - 1)]

    _rs, _rd, hybrid = optimal_split(overlay, src, dst)
    return {
        "dist": distance,
        "td": at(n_src, distance),
        "bu": at(n_dst, distance),
        "hybrid": hybrid,
    }

"""Topology substrate: GT-ITM-style transit-stub underlays, overlays
with random neighbour selection, and the neighborhood function N(X,r)."""

from repro.topology.neighborhood import (
    hop_distance,
    hop_distances,
    neighborhood_at,
    neighborhood_function,
    optimal_split,
    search_costs,
)
from repro.topology.overlay import METRICS, Overlay, build_overlay
from repro.topology.transit_stub import Underlay, transit_stub

__all__ = [
    "Underlay",
    "transit_stub",
    "Overlay",
    "build_overlay",
    "METRICS",
    "hop_distance",
    "hop_distances",
    "neighborhood_at",
    "neighborhood_function",
    "optimal_split",
    "search_costs",
]

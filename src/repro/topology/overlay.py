"""Overlay networks over a transit-stub underlay.

Section 6.1: "We construct an overlay network over the base GT-ITM
topology where each node is assigned to one of the stub nodes ... and
picks four randomly selected neighbors.  Each node has four link tuples,
one for each neighbor.  Each link tuple has metrics that include latency
(based on the underlying GT-ITM topology), reliability (link loss
correlated with latency), and a randomly generated value."

Links are bidirectional (Section 2.1's constraint), so a node that was
*picked* by others may end up with more than four link tuples -- exactly
as in P2, where the neighbor sets are unioned.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import NetworkError
from repro.topology.transit_stub import Underlay, transit_stub

#: The four link metrics benchmarked in Section 6 (graph labels).
METRICS = ("hopcount", "latency", "reliability", "random")


@dataclass
class Overlay:
    nodes: List[str]
    host: Dict[str, str]                      # overlay node -> stub node
    links: Dict[Tuple[str, str], Dict[str, float]]  # undirected, a<b keyed

    def neighbors(self, node: str) -> List[str]:
        out = []
        for a, b in self.links:
            if a == node:
                out.append(b)
            elif b == node:
                out.append(a)
        return out

    def degree(self, node: str) -> int:
        return len(self.neighbors(node))

    def adjacency(self) -> Dict[str, List[str]]:
        adj: Dict[str, List[str]] = {n: [] for n in self.nodes}
        for a, b in self.links:
            adj[a].append(b)
            adj[b].append(a)
        return adj

    def link_metrics(self, a: str, b: str) -> Dict[str, float]:
        key = (a, b) if a <= b else (b, a)
        try:
            return self.links[key]
        except KeyError:
            raise NetworkError(f"no overlay link {a}-{b}") from None

    def link_rows(self, metric: str) -> List[Tuple[str, str, float]]:
        """``link(@src, @dst, cost)`` rows, both directions."""
        if metric not in METRICS:
            raise NetworkError(f"unknown metric {metric!r}")
        rows = []
        for (a, b), metrics in sorted(self.links.items()):
            cost = metrics[metric]
            rows.append((a, b, cost))
            rows.append((b, a, cost))
        return rows

    def is_connected(self) -> bool:
        if not self.nodes:
            return True
        adj = self.adjacency()
        seen = {self.nodes[0]}
        frontier = [self.nodes[0]]
        while frontier:
            node = frontier.pop()
            for nxt in adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self.nodes)


def build_overlay(
    underlay: Underlay = None,
    n_nodes: int = 100,
    degree: int = 4,
    seed: int = 0,
    max_attempts: int = 50,
) -> Overlay:
    """Build a connected overlay: ``n_nodes`` overlay nodes hosted on
    random stub nodes, each picking ``degree`` random neighbors."""
    if underlay is None:
        underlay = transit_stub(seed=seed)
    rng = random.Random(seed * 7919 + 13)
    for attempt in range(max_attempts):
        overlay = _try_build(underlay, n_nodes, degree, rng)
        if overlay.is_connected():
            return overlay
    raise NetworkError(
        f"could not build a connected overlay in {max_attempts} attempts"
    )


def _try_build(
    underlay: Underlay, n_nodes: int, degree: int, rng: random.Random
) -> Overlay:
    names = [f"n{i}" for i in range(n_nodes)]
    host = {name: rng.choice(underlay.stub_nodes) for name in names}

    pairs = set()
    for name in names:
        candidates = [other for other in names if other != name]
        for neighbor in rng.sample(candidates, min(degree, len(candidates))):
            pairs.add((name, neighbor) if name <= neighbor else (neighbor, name))

    # Latencies between host stub nodes (single Dijkstra per source host).
    latency_cache: Dict[str, Dict[str, float]] = {}
    links: Dict[Tuple[str, str], Dict[str, float]] = {}
    for a, b in sorted(pairs):
        host_a, host_b = host[a], host[b]
        if host_a not in latency_cache:
            latency_cache[host_a] = underlay.latencies_from(host_a)
        latency_s = latency_cache[host_a].get(host_b)
        if latency_s is None:
            raise NetworkError(f"underlay not connected: {host_a} {host_b}")
        latency_ms = max(1.0, round(latency_s * 1000.0, 3))
        links[(a, b)] = {
            "hopcount": 1,
            "latency": latency_ms,
            # Loss correlated with latency; the metric minimized is the
            # (scaled) loss cost, so it correlates with latency too.
            "reliability": round(latency_ms * rng.uniform(0.8, 1.2), 3),
            "random": rng.randint(1, 100),
        }
    return Overlay(nodes=names, host=host, links=links)

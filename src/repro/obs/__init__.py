"""Observability subsystem: metrics registry, delta-propagation
tracing and profiling hooks.

Enable per deployment::

    deployment = compiled.deploy(overlay, metrics=True, trace=True,
                                 profile=True)
    ...
    snap = deployment.metrics()          # MetricsSnapshot
    print(deployment.metrics_text())     # Prometheus text exposition
    print(deployment.profile().report()) # per-strand CPU time
    deployment.save_trace("trace.json")  # Chrome trace-event JSON

``python -m repro.obs trace.json`` summarizes a saved trace file.

Everything here follows the provenance recorder's cost discipline: a
deployment built without these flags holds ``None`` in every hook slot
and pays one attribute check per hot site.
"""

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, NodeMetrics
from repro.obs.profile import Profiler
from repro.obs.trace import (
    NodeTracer,
    TraceEvent,
    Tracer,
    load_trace,
    render_trace,
    summarize_trace,
)

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "NodeMetrics",
    "NodeTracer",
    "Profiler",
    "TraceEvent",
    "Tracer",
    "load_trace",
    "render_trace",
    "summarize_trace",
]

"""Metrics registry: counters and gauges keyed by (node, rule, relation).

The paper's whole evaluation (Figures 7-14) is about *observing* a
running declarative network -- per-node bandwidth, convergence CDFs,
aggregate communication work.  This module gives the runtime one
registry those observations hang off, following the provenance
recorder's cost discipline:

* **Push counters** exist only where the engine cannot reconstruct the
  number afterwards: per-rule firings/inferences (the strand loop),
  per-relation weighted commits/retractions (the commit hook), per-link
  retransmits (the reliable transport), queue-depth high-water marks
  (the node scheduler).  Every push site is guarded by a single
  ``None`` check, so a deployment built without ``metrics=True`` pays
  one attribute read per site and nothing else.
* Everything else is **pulled** at snapshot time from state the engine
  already keeps: engine step/inference/cancellation counters, queue
  lengths, table cardinalities, aggregate-view change counters,
  :class:`~repro.net.stats.TrafficStats` wire totals.

Snapshots feed live churn back into the optimizer's
:class:`~repro.opt.costbased.StatsCatalog` (see
``Cluster.refresh_stats``) -- the ROADMAP's adaptive-cost-model input.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class NodeMetrics:
    """Per-node push counters.  Handed to the node's engine at
    construction; the engine only ever does dict bumps on it."""

    __slots__ = ("node", "rule_firings", "rule_inferences", "commits",
                 "retractions", "queue_peak")

    def __init__(self, node: str):
        self.node = node
        #: rule label -> productive strand invocations.
        self.rule_firings: Dict[str, int] = {}
        #: rule label -> successful body instantiations.
        self.rule_inferences: Dict[str, int] = {}
        #: relation -> weighted derivations that became visible
        #: (a ``+k`` burst counts ``k``, not 1).
        self.commits: Dict[str, int] = {}
        #: relation -> weighted derivations that left visibility.
        self.retractions: Dict[str, int] = {}
        #: High-water mark of the delta queue, sampled per CPU tick.
        self.queue_peak = 0


class MetricsSnapshot:
    """A point-in-time reading of every counter a deployment exposes.

    ``nodes``/``rules``/``relations`` are plain dicts (see
    ``Cluster.metrics_snapshot`` docs and the README counter table);
    :meth:`counter_totals` flattens the order-independent counters for
    sim-vs-live equivalence checks and :meth:`to_prometheus` renders
    the whole snapshot as a Prometheus text exposition.
    """

    def __init__(
        self,
        nodes: Dict[str, Dict[str, float]],
        rules: Dict[Tuple[str, str], Dict[str, int]],
        relations: Dict[Tuple[str, str], Dict[str, float]],
        transport: Dict[str, float],
        links: Dict[Tuple[str, str], int],
        faults: Dict[str, int],
    ):
        self.nodes = nodes
        #: (node, rule label) -> {"firings", "inferences"}.
        self.rules = rules
        #: (node, relation) -> {"commits", "retractions", "rows",
        #: "view_changes"}.
        self.relations = relations
        self.transport = transport
        #: (src, dst) -> retransmits on that link (reliable transport).
        self.links = links
        self.faults = faults

    # -- aggregations --------------------------------------------------
    def rule_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-rule firings/inferences summed over nodes."""
        totals: Dict[str, Dict[str, int]] = {}
        for (_node, rule), counts in self.rules.items():
            slot = totals.setdefault(rule, {"firings": 0, "inferences": 0})
            slot["firings"] += counts["firings"]
            slot["inferences"] += counts["inferences"]
        return totals

    def relation_totals(self) -> Dict[str, Dict[str, float]]:
        """Per-relation counters summed over nodes."""
        totals: Dict[str, Dict[str, float]] = {}
        for (_node, pred), counts in self.relations.items():
            slot = totals.setdefault(
                pred,
                {"commits": 0, "retractions": 0, "rows": 0,
                 "view_changes": 0},
            )
            for key, value in counts.items():
                slot[key] += value
        return totals

    def churn(self) -> Dict[str, float]:
        """Relation -> cumulative weighted commits + retractions: the
        live activity feed for :class:`StatsCatalog.refresh`."""
        out: Dict[str, float] = {}
        for pred, counts in self.relation_totals().items():
            out[pred] = counts["commits"] + counts["retractions"]
        return out

    def counter_totals(self) -> Dict[str, float]:
        """The order-independent counters: identical across sim and
        live targets for the same program + workload (gauges like queue
        peaks and chunk-dependent netting are excluded -- they measure
        scheduling, not meaning)."""
        totals: Dict[str, float] = {}
        for (node, rule), counts in sorted(self.rules.items()):
            totals[f"firings:{node}:{rule}"] = counts["firings"]
            totals[f"inferences:{node}:{rule}"] = counts["inferences"]
        for (node, pred), counts in sorted(self.relations.items()):
            totals[f"commits:{node}:{pred}"] = counts["commits"]
            totals[f"retractions:{node}:{pred}"] = counts["retractions"]
            totals[f"rows:{node}:{pred}"] = counts["rows"]
        totals["messages"] = self.transport.get("messages", 0)
        totals["netdeltas_shipped"] = self.transport.get(
            "netdeltas_shipped", 0
        )
        return totals

    # -- exposition ----------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition (one scrape body)."""
        lines: List[str] = []

        def family(name: str, kind: str, help_text: str,
                   samples: List[Tuple[str, float]]) -> None:
            if not samples:
                return
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                rendered = f"{value:g}"
                lines.append(f"{name}{labels} {rendered}")

        family(
            "ndlog_rule_firings_total", "counter",
            "Productive strand invocations per (node, rule).",
            [(f'{{node="{n}",rule="{r}"}}', c["firings"])
             for (n, r), c in sorted(self.rules.items())],
        )
        family(
            "ndlog_rule_inferences_total", "counter",
            "Successful body instantiations per (node, rule).",
            [(f'{{node="{n}",rule="{r}"}}', c["inferences"])
             for (n, r), c in sorted(self.rules.items())],
        )
        family(
            "ndlog_commits_total", "counter",
            "Weighted derivations that became visible per (node, relation).",
            [(f'{{node="{n}",relation="{p}"}}', c["commits"])
             for (n, p), c in sorted(self.relations.items())],
        )
        family(
            "ndlog_retractions_total", "counter",
            "Weighted derivations that left visibility per (node, relation).",
            [(f'{{node="{n}",relation="{p}"}}', c["retractions"])
             for (n, p), c in sorted(self.relations.items())],
        )
        family(
            "ndlog_table_rows", "gauge",
            "Visible rows per (node, relation).",
            [(f'{{node="{n}",relation="{p}"}}', c["rows"])
             for (n, p), c in sorted(self.relations.items()) if c["rows"]],
        )
        family(
            "ndlog_view_changes_total", "counter",
            "Aggregate/arg-extreme group-value transitions per (node, view).",
            [(f'{{node="{n}",relation="{p}"}}', c["view_changes"])
             for (n, p), c in sorted(self.relations.items())
             if c["view_changes"]],
        )
        for gauge, kind, help_text in (
            ("steps", "counter", "Deltas consumed off the queue."),
            ("inferences", "counter", "Total body instantiations."),
            ("netted", "counter",
             "Deltas annihilated by Z-set folding at the queue."),
            ("queue_depth", "gauge", "Current delta-queue length."),
            ("queue_peak", "gauge", "High-water delta-queue length."),
            ("fixpoint_batches", "counter",
             "CPU ticks' worth of deltas processed by the node loop."),
            ("cache_hits", "counter", "Query-result cache hits."),
        ):
            family(
                f"ndlog_{gauge}" + ("_total" if kind == "counter" else ""),
                kind, help_text,
                [(f'{{node="{n}"}}', counts[gauge])
                 for n, counts in sorted(self.nodes.items())],
            )
        family(
            "ndlog_fold_ratio", "gauge",
            "Fraction of consumed deltas annihilated by batch folding.",
            [(f'{{node="{n}"}}', counts["fold_ratio"])
             for n, counts in sorted(self.nodes.items())],
        )
        family(
            "ndlog_link_retransmits_total", "counter",
            "Reliable-transport retransmissions per directed link.",
            [(f'{{src="{s}",dst="{d}"}}', count)
             for (s, d), count in sorted(self.links.items())],
        )
        family(
            "ndlog_faults_injected_total", "counter",
            "Chaos-harness fault injections by kind.",
            [(f'{{kind="{k}"}}', count)
             for k, count in sorted(self.faults.items())],
        )
        family(
            "ndlog_transport", "counter",
            "Cluster-wide wire counters, labelled by counter name.",
            [(f'{{counter="{k}"}}', value)
             for k, value in sorted(self.transport.items())],
        )
        return "\n".join(lines) + "\n"


class MetricsRegistry:
    """One registry per deployment: hands out per-node
    :class:`NodeMetrics` holders and assembles snapshots."""

    def __init__(self):
        self.nodes: Dict[str, NodeMetrics] = {}
        #: (src, dst) -> reliable-transport retransmits on that link.
        self.link_retransmits: Dict[Tuple[str, str], int] = {}

    def node(self, name: str) -> NodeMetrics:
        metrics = self.nodes.get(name)
        if metrics is None:
            metrics = self.nodes[name] = NodeMetrics(name)
        return metrics

    def snapshot(self, cluster) -> MetricsSnapshot:
        """Assemble a snapshot by merging the push counters with a pull
        over the cluster's engines and wire stats."""
        nodes: Dict[str, Dict[str, float]] = {}
        rules: Dict[Tuple[str, str], Dict[str, int]] = {}
        relations: Dict[Tuple[str, str], Dict[str, float]] = {}
        for name, engine in cluster.nodes.items():
            pushed = self.nodes.get(name)
            steps = engine.steps
            netted = engine.cancelled
            nodes[name] = {
                "steps": steps,
                "inferences": engine.inferences,
                "netted": netted,
                "queue_depth": len(engine.queue),
                "queue_peak": pushed.queue_peak if pushed else 0,
                "fixpoint_batches": getattr(
                    engine, "deltas_processed", steps
                ),
                "cache_hits": getattr(engine, "cache_hits", 0),
                "fold_ratio": (netted / steps) if steps else 0.0,
            }
            if pushed is not None:
                for rule, count in pushed.rule_firings.items():
                    rules[(name, rule)] = {
                        "firings": count,
                        "inferences": pushed.rule_inferences.get(rule, 0),
                    }
            preds = set(engine.db.tables)
            if pushed is not None:
                preds.update(pushed.commits)
                preds.update(pushed.retractions)
            for pred in preds:
                table = engine.db.tables.get(pred)
                entry = {
                    "commits": pushed.commits.get(pred, 0) if pushed else 0,
                    "retractions": (
                        pushed.retractions.get(pred, 0) if pushed else 0
                    ),
                    "rows": len(table) if table is not None else 0,
                    "view_changes": 0,
                }
                relations[(name, pred)] = entry
            for pred, view in engine.views.items():
                slot = relations.setdefault(
                    (name, pred),
                    {"commits": 0, "retractions": 0, "rows": 0,
                     "view_changes": 0},
                )
                slot["view_changes"] += view.changes
            for pred, view in engine.argmin_views.items():
                slot = relations.setdefault(
                    (name, pred),
                    {"commits": 0, "retractions": 0, "rows": 0,
                     "view_changes": 0},
                )
                slot["view_changes"] += view.changes
        stats = cluster.stats
        transport = {
            "messages": stats.messages,
            "bytes": sum(size for _, _, size in stats.records),
            "netdeltas_shipped": stats.netdeltas_shipped,
            "netdeltas_coalesced": stats.netdeltas_coalesced,
            "retransmits": stats.retransmits,
            "acks_sent": stats.acks_sent,
            "dup_dropped": stats.dup_dropped,
            "reorders_healed": stats.reorders_healed,
            "dead_link_drops": stats.dead_link_drops,
            "links_torn_down": stats.links_torn_down,
            "dropped_no_link": stats.dropped_no_link,
            "malformed_dropped": stats.malformed_dropped,
            "stray_datagrams": stats.stray_datagrams,
        }
        return MetricsSnapshot(
            nodes=nodes,
            rules=rules,
            relations=relations,
            transport=transport,
            links=dict(self.link_retransmits),
            faults=dict(stats.faults_injected),
        )

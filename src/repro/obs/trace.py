"""Delta-propagation tracing: causally-linked spans across the network.

A *trace id* is minted when a base fact is injected into an engine and
rides along every queued delta derived from it -- through rule firings
(``derive``), Z-set annihilation (``net``), the wire (``ship`` /
``receive``, piggybacked on :class:`~repro.net.message.NetDelta` next
to ``prov``), and table visibility transitions (``commit``).  The
result answers "where did this delta's latency go?" across a rule
firing, a wire hop and a remote commit -- on the simulator (virtual
timestamps) and on live inproc/UDP targets (wall timestamps) alike.

Events are recorded through per-node :class:`NodeTracer` handles bound
off one shared :class:`Tracer`, mirroring the provenance recorder: the
engine holds ``None`` when tracing is off, so every hot site is a
single ``None`` check.

Export is Chrome trace-event JSON (``chrome://tracing`` /
https://ui.perfetto.dev): one process per node, one instant event per
span, and flow arrows linking each ``ship`` to its ``receive``.
``python -m repro.obs trace.json`` summarizes a saved file.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple


class TraceEvent(NamedTuple):
    """One span: a moment in a delta's life, stamped with the deployment
    clock (virtual seconds on the simulator, wall seconds live)."""

    ts: float
    trace: Optional[int]        # None for fault events outside any flow
    kind: str                   # inject|derive|net|ship|receive|commit|...
    node: Optional[str]
    pred: Optional[str]
    args: Optional[Tuple]
    weight: Optional[int]
    src: Optional[str]
    dst: Optional[str]


class NodeTracer:
    """Per-node recording handle; every method is one list append."""

    __slots__ = ("tracer", "node")

    def __init__(self, tracer: "Tracer", node: Optional[str]):
        self.tracer = tracer
        self.node = node

    def mint(self, fact, weight: int) -> int:
        """Mint a fresh trace id for a base-fact injection and record
        the root ``inject`` span."""
        tracer = self.tracer
        trace = tracer.mint()
        tracer.events.append(TraceEvent(
            tracer.now(), trace, "inject", self.node,
            fact.pred, fact.args, weight, None, None,
        ))
        return trace

    def derive(self, fact, weight: int, trace: int) -> None:
        tracer = self.tracer
        tracer.events.append(TraceEvent(
            tracer.now(), trace, "derive", self.node,
            fact.pred, fact.args, weight, None, None,
        ))

    def net(self, fact, weight: int, trace: int) -> None:
        """A queued delta annihilated by Z-set folding before commit."""
        tracer = self.tracer
        tracer.events.append(TraceEvent(
            tracer.now(), trace, "net", self.node,
            fact.pred, fact.args, weight, None, None,
        ))

    def commit(self, fact, weight: int, trace: int) -> None:
        tracer = self.tracer
        tracer.events.append(TraceEvent(
            tracer.now(), trace, "commit", self.node,
            fact.pred, fact.args, weight, None, None,
        ))

    def receive(self, fact, weight: int, trace: int,
                origin: Optional[str]) -> None:
        tracer = self.tracer
        tracer.events.append(TraceEvent(
            tracer.now(), trace, "receive", self.node,
            fact.pred, fact.args, weight, origin, self.node,
        ))


class Tracer:
    """The shared, deployment-wide event log.

    ``now`` is the deployment clock (``cluster.clock.now``), so sim
    traces carry virtual time and live traces wall time; the exported
    span *graph* is identical either way (see :meth:`span_graph`).
    """

    __slots__ = ("now", "events", "_next")

    def __init__(self, now: Callable[[], float]):
        self.now = now
        self.events: List[TraceEvent] = []
        self._next = 0

    def mint(self) -> int:
        self._next += 1
        return self._next

    def recorder(self, node: Optional[str] = None) -> NodeTracer:
        """A per-node handle stamping events with ``node``."""
        return NodeTracer(self, node)

    def ship(self, delta, src: str, dst: str) -> None:
        """A traced :class:`NetDelta` put on the wire (recorded per
        transmission, so retransmits show as repeated ship spans)."""
        self.events.append(TraceEvent(
            self.now(), delta.trace, "ship", src,
            delta.pred, delta.args, delta.weight, src, dst,
        ))

    def netted(self, delta, node: str) -> None:
        """A buffered traced delta coalesced away before transmission."""
        self.events.append(TraceEvent(
            self.now(), delta.trace, "net", node,
            delta.pred, delta.args, delta.weight, None, None,
        ))

    def fault(self, kind: str, src: Optional[str],
              dst: Optional[str]) -> None:
        """A chaos injection or watchdog link teardown, interleaved
        with the delta spans it affected (satellite: faults in traces)."""
        self.events.append(TraceEvent(
            self.now(), None, kind, src, None, None, None, src, dst,
        ))

    # -- analysis ------------------------------------------------------
    def span_graph(self) -> Dict[int, Tuple]:
        """trace id -> the causal span set with timestamps stripped.

        Each span is ``(kind, node, pred, args, weight, src, dst)``;
        the per-trace collection is sorted canonically, so two runs of
        the same program + workload on different targets (sim, inproc,
        UDP) produce *equal* graphs even though their clocks and
        interleavings differ."""
        graph: Dict[int, List[Tuple]] = {}
        for ev in self.events:
            if ev.trace is None:
                continue
            graph.setdefault(ev.trace, []).append(
                (ev.kind, ev.node, ev.pred, ev.args, ev.weight,
                 ev.src, ev.dst)
            )
        return {trace: tuple(sorted(spans, key=repr))
                for trace, spans in graph.items()}

    def trace_of(self, pred: str, args: Tuple) -> Optional[int]:
        """The trace id minted for the injection of ``pred(args)``."""
        args = tuple(args)
        for ev in self.events:
            if ev.kind == "inject" and ev.pred == pred and ev.args == args:
                return ev.trace
        return None

    # -- export --------------------------------------------------------
    def to_chrome(self) -> Dict:
        """Render as Chrome trace-event JSON (the ``traceEvents`` array
        format).  Nodes become processes, trace ids become threads, and
        every ship/receive pair is linked with a flow arrow."""
        events: List[Dict] = []
        pids: Dict[str, int] = {}

        def pid_of(node: Optional[str]) -> int:
            name = node if node is not None else "<cluster>"
            pid = pids.get(name)
            if pid is None:
                pid = pids[name] = len(pids) + 1
                events.append({
                    "ph": "M", "name": "process_name", "pid": pid,
                    "tid": 0, "args": {"name": name},
                })
            return pid

        flow_next = 0
        # (trace, pred, args, dst) -> pending flow ids, FIFO.
        flows: Dict[Tuple, List[int]] = {}
        for ev in self.events:
            pid = pid_of(ev.node)
            ts = round(ev.ts * 1e6, 3)
            entry = {
                "name": f"{ev.kind} {ev.pred}" if ev.pred else ev.kind,
                "cat": ev.kind, "ph": "i", "s": "t",
                "ts": ts, "pid": pid, "tid": ev.trace or 0,
                "args": {
                    "trace": ev.trace, "kind": ev.kind, "node": ev.node,
                    "pred": ev.pred,
                    "fact": list(ev.args) if ev.args else None,
                    "weight": ev.weight, "src": ev.src, "dst": ev.dst,
                },
            }
            events.append(entry)
            if ev.trace is None:
                continue
            if ev.kind == "ship":
                flow_next += 1
                flows.setdefault(
                    (ev.trace, ev.pred, ev.args, ev.dst), []
                ).append(flow_next)
                events.append({
                    "name": "delta", "cat": "flow", "ph": "s",
                    "id": flow_next, "ts": ts, "pid": pid,
                    "tid": ev.trace,
                })
            elif ev.kind == "receive":
                pending = flows.get((ev.trace, ev.pred, ev.args, ev.node))
                if pending:
                    events.append({
                        "name": "delta", "cat": "flow", "ph": "f",
                        "bp": "e", "id": pending.pop(0), "ts": ts,
                        "pid": pid, "tid": ev.trace,
                    })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def save(self, path: str) -> str:
        """Write the Chrome trace-event JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)
        return path


def load_trace(path: str) -> Dict:
    """Load a saved Chrome trace-event JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def summarize_trace(trace: Dict) -> str:
    """A text summary of a loaded Chrome trace: event totals, time
    span, per-kind and per-node counts, busiest trace ids."""
    events = trace.get("traceEvents", [])
    spans = [ev for ev in events if ev.get("ph") == "i"]
    names = {
        ev["pid"]: ev["args"]["name"]
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    lines = [f"events: {len(spans)}"]
    if spans:
        first = min(ev["ts"] for ev in spans)
        last = max(ev["ts"] for ev in spans)
        lines.append(f"span: {(last - first) / 1e3:.3f} ms")
    by_kind: Dict[str, int] = {}
    by_node: Dict[str, int] = {}
    by_trace: Dict[int, int] = {}
    for ev in spans:
        by_kind[ev.get("cat", "?")] = by_kind.get(ev.get("cat", "?"), 0) + 1
        node = names.get(ev.get("pid"), str(ev.get("pid")))
        by_node[node] = by_node.get(node, 0) + 1
        trace_id = ev.get("tid", 0)
        if trace_id:
            by_trace[trace_id] = by_trace.get(trace_id, 0) + 1
    lines.append("-- spans by kind --")
    for kind, count in sorted(by_kind.items()):
        lines.append(f"  {kind}: {count}")
    lines.append("-- spans by node --")
    for node, count in sorted(by_node.items()):
        lines.append(f"  {node}: {count}")
    if by_trace:
        lines.append("-- busiest traces --")
        busiest = sorted(by_trace.items(), key=lambda kv: (-kv[1], kv[0]))
        for trace_id, count in busiest[:10]:
            lines.append(f"  trace {trace_id}: {count} spans")
    return "\n".join(lines)


def render_trace(trace: Dict, trace_id: int) -> str:
    """An ordered textual timeline of one trace id's spans."""
    events = trace.get("traceEvents", [])
    names = {
        ev["pid"]: ev["args"]["name"]
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "process_name"
    }
    spans = sorted(
        (ev for ev in events
         if ev.get("ph") == "i" and ev.get("tid") == trace_id),
        key=lambda ev: ev["ts"],
    )
    if not spans:
        return f"trace {trace_id}: no spans"
    start = spans[0]["ts"]
    lines = [f"trace {trace_id}: {len(spans)} spans"]
    for ev in spans:
        args = ev.get("args", {})
        where = names.get(ev.get("pid"), "?")
        fact = args.get("fact")
        detail = f"{args.get('pred')}{tuple(fact)}" if fact else ""
        hop = ""
        if args.get("kind") == "ship":
            hop = f" -> {args.get('dst')}"
        elif args.get("kind") == "receive" and args.get("src"):
            hop = f" <- {args.get('src')}"
        lines.append(
            f"  +{(ev['ts'] - start) / 1e3:9.3f} ms  {where:>10}  "
            f"{args.get('kind', ev.get('cat')):>8}{hop}  {detail}"
        )
    return "\n".join(lines)

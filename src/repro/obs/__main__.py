"""CLI: summarize or render a saved Chrome trace-event JSON file.

Usage::

    python -m repro.obs trace.json             # summary
    python -m repro.obs trace.json --trace 3   # one trace's timeline
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.obs.trace import load_trace, render_trace, summarize_trace


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize or render a delta-propagation trace "
                    "(Chrome trace-event JSON written by save_trace).",
    )
    parser.add_argument("path", help="trace file to read")
    parser.add_argument(
        "--trace", type=int, default=None, metavar="ID",
        help="render the ordered timeline of one trace id",
    )
    args = parser.parse_args(argv)
    trace = load_trace(args.path)
    if args.trace is not None:
        print(render_trace(trace, args.trace))
    else:
        print(summarize_trace(trace))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

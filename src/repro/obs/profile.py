"""Profiling hooks: per-rule / per-strand CPU time.

A :class:`Profiler` accumulates wall-clock seconds spent inside each
rule strand's firing loop (join probing, head instantiation, emission)
keyed by ``(rule label, driving predicate)`` -- the strand identity of
Figure 3.  The engine times a firing only when a profiler is attached
(one ``None`` check per strand invocation), so the disabled path costs
nothing.

Compile-time companion: every optimizer pass records its elapsed time
on its :class:`~repro.api.PassSnapshot`, surfaced by
``CompiledProgram.explain(timings=True)``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class Profiler:
    """Accumulated strand timings; ``add`` is the engine's hot call."""

    __slots__ = ("strands",)

    def __init__(self):
        #: (rule label, driver pred) -> [seconds, invocations].
        self.strands: Dict[Tuple[str, str], List] = {}

    def add(self, rule: str, driver: str, seconds: float) -> None:
        slot = self.strands.get((rule, driver))
        if slot is None:
            self.strands[(rule, driver)] = [seconds, 1]
        else:
            slot[0] += seconds
            slot[1] += 1

    def merge(self, other: "Profiler") -> None:
        """Fold another profiler's strand totals into this one (used to
        aggregate per-node profilers into a deployment report)."""
        for key, (seconds, calls) in other.strands.items():
            slot = self.strands.get(key)
            if slot is None:
                self.strands[key] = [seconds, calls]
            else:
                slot[0] += seconds
                slot[1] += calls

    def rows(self) -> List[Tuple[str, str, float, int]]:
        """``(rule, driver, seconds, invocations)`` rows, most
        expensive strand first."""
        return sorted(
            ((rule, driver, seconds, calls)
             for (rule, driver), (seconds, calls) in self.strands.items()),
            key=lambda row: -row[2],
        )

    def rule_totals(self) -> Dict[str, float]:
        """Rule label -> total seconds across its strands."""
        totals: Dict[str, float] = {}
        for (rule, _driver), (seconds, _calls) in self.strands.items():
            totals[rule] = totals.get(rule, 0.0) + seconds
        return totals

    def total_seconds(self) -> float:
        return sum(seconds for seconds, _ in self.strands.values())

    def report(self) -> str:
        """A text table of strand timings."""
        rows = self.rows()
        if not rows:
            return "no strand timings recorded\n"
        lines = [f"{'rule':<12} {'driver':<16} {'calls':>8} "
                 f"{'total ms':>10} {'us/call':>9}"]
        for rule, driver, seconds, calls in rows:
            per_call = (seconds / calls * 1e6) if calls else 0.0
            lines.append(
                f"{rule:<12} {driver:<16} {calls:>8} "
                f"{seconds * 1e3:>10.3f} {per_call:>9.2f}"
            )
        lines.append(f"total: {self.total_seconds() * 1e3:.3f} ms")
        return "\n".join(lines) + "\n"

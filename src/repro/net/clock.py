"""The clock seam: one timer contract for virtual and wall-clock time.

Everything above the network substrate -- node CPU ticks, transport
flush windows, soft-state expiry sweeps, workload drivers -- schedules
work through four verbs: ``now`` / ``at`` / ``after`` / ``post``.  The
:class:`Clock` base pins that contract down so the same runtime code
executes unchanged on either implementation:

* :class:`~repro.net.sim.Simulator` -- deterministic virtual time, the
  substrate for every reproduced experiment (results are byte-identical
  run to run);
* :class:`WallClock` -- real time over a running asyncio event loop,
  the substrate for the live deployment target
  (:mod:`repro.runtime.live`).

The semantic difference callers may observe: virtual time only moves
when an event fires, so ``at(now)`` is exact; wall time moves on its
own, so a wall timer may fire a little late (the event loop's timer
resolution) and ``at`` clamps already-past times to "as soon as
possible" instead of raising.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Tuple

from repro.errors import NetworkError


class Clock:
    """Timer contract shared by the simulator and the wall clock.

    ``now`` is seconds on the clock's own axis (virtual seconds, or
    wall seconds since the clock was created).  ``at`` schedules at an
    absolute time on that axis and returns a cancellable handle;
    ``after`` is relative; ``post`` is fire-and-forget ``after`` (no
    handle, not cancellable).  ``pending`` counts scheduled-but-unfired
    events -- the quiescence test both execution targets share.
    """

    now: float

    def at(self, time: float, callback: Callable[[], None]):
        raise NotImplementedError

    def after(self, delay: float, callback: Callable[[], None]):
        raise NotImplementedError

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        raise NotImplementedError

    @property
    def pending(self) -> int:
        raise NotImplementedError


class WallTimer:
    """Cancellation handle for one :class:`WallClock` timer."""

    __slots__ = ("cancelled", "_clock", "_handle")

    def __init__(self, clock: "WallClock"):
        self.cancelled = False
        self._clock = clock
        self._handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
        self._clock._pending -= 1


class WallClock(Clock):
    """Real time over the running asyncio event loop.

    ``now`` starts at 0.0 when the clock is created, so programs
    written against virtual timestamps (workload bursts at t=2.0,
    refreshers every 0.5s) run unchanged in wall time.  Callback
    exceptions are captured on :attr:`failures` rather than left to the
    loop's exception handler, so the live runtime can surface them at
    :meth:`~repro.runtime.live.LiveDeployment.stop` time.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None):
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._pending = 0
        self.events_processed = 0
        #: ``(now, exception)`` pairs from callbacks that raised.
        self.failures: List[Tuple[float, BaseException]] = []

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    def _fire(self, timer: Optional[WallTimer],
              callback: Callable[[], None]) -> None:
        if timer is not None:
            if timer.cancelled:
                return
            timer.cancelled = True  # fired; cancel() must not double-count
        self._pending -= 1
        self.events_processed += 1
        try:
            callback()
        except BaseException as exc:  # noqa: BLE001 -- surfaced at stop()
            self.failures.append((self.now, exc))

    def at(self, time: float, callback: Callable[[], None]) -> WallTimer:
        """Schedule at absolute clock time ``time``; times already past
        fire as soon as possible (wall time cannot be rewound, so the
        simulator's in-the-past error has no useful analogue)."""
        return self.after(max(0.0, time - self.now), callback)

    def after(self, delay: float, callback: Callable[[], None]) -> WallTimer:
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        timer = WallTimer(self)
        self._pending += 1
        timer._handle = self._loop.call_later(
            delay, self._fire, timer, callback
        )
        return timer

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        self._pending += 1
        self._loop.call_later(delay, self._fire, None, callback)

    @property
    def pending(self) -> int:
        return self._pending

"""Network substrate: deterministic discrete-event simulation with FIFO
links, a byte-accurate message size model, and traffic accounting."""

from repro.net.link import DEFAULT_BANDWIDTH_BPS, LinkChannel
from repro.net.message import HEADER_BYTES, Message, NetDelta, single, tuple_size
from repro.net.sim import Simulator
from repro.net.stats import ResultTracker, TrafficStats

__all__ = [
    "Simulator",
    "LinkChannel",
    "DEFAULT_BANDWIDTH_BPS",
    "Message",
    "NetDelta",
    "single",
    "tuple_size",
    "HEADER_BYTES",
    "TrafficStats",
    "ResultTracker",
]

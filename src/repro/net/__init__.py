"""Network substrate: a shared clock/channel seam with two execution
targets -- deterministic discrete-event simulation (virtual time, FIFO
links) and live asyncio delivery (wall clock, in-process queues or real
UDP datagrams) -- plus a byte-accurate message size model and traffic
accounting."""

from repro.net.channel import DEFAULT_BANDWIDTH_BPS, Channel
from repro.net.clock import Clock, WallClock
from repro.net.link import LinkChannel
from repro.net.live import (
    QueueChannel,
    UdpChannel,
    UdpFabric,
    decode_message,
    encode_message,
)
from repro.net.message import HEADER_BYTES, Message, NetDelta, single, tuple_size
from repro.net.sim import Simulator
from repro.net.stats import ResultTracker, TrafficStats

__all__ = [
    "Clock",
    "Simulator",
    "WallClock",
    "Channel",
    "LinkChannel",
    "QueueChannel",
    "UdpChannel",
    "UdpFabric",
    "encode_message",
    "decode_message",
    "DEFAULT_BANDWIDTH_BPS",
    "Message",
    "NetDelta",
    "single",
    "tuple_size",
    "HEADER_BYTES",
    "TrafficStats",
    "ResultTracker",
]

"""The channel seam: one link contract for simulated and live delivery.

A :class:`Channel` is one overlay link between two node addresses.  The
base class owns everything both worlds share -- endpoint validation and
the link *emulation model* (store-and-forward bandwidth queueing,
constant propagation latency, Bernoulli loss) -- while subclasses
decide how an arrival actually reaches the destination:

* :class:`~repro.net.link.LinkChannel` -- delivery is a clock timer
  calling straight into the cluster (the simulator substrate, and also
  usable on a wall clock);
* :class:`~repro.net.live.QueueChannel` -- delivery enqueues onto the
  destination node's asyncio inbox, consumed by that node's task;
* :class:`~repro.net.live.UdpChannel` -- delivery is a real UDP
  datagram on localhost; the emulated delay shapes the send time.

Section 4.2 requires that "along any link in the network, there is a
FIFO ordering of messages" (Theorem 4).  The emulation guarantees it
structurally: per-direction departure times are monotone (a shared
transmit queue) and the propagation latency is constant, so arrivals
never reorder.  The asyncio backends preserve it because timers with
nondecreasing deadlines fire in order and UDP on loopback does not
reorder in practice.

That structural guarantee holds only for the pristine channel: a chaos
schedule (:mod:`repro.chaos`) deliberately reorders, duplicates, and
drops messages by wrapping channels in a
:class:`~repro.chaos.ChaosChannel`, and real networks do the same.
When delivery can be faulty, run with ``config.reliable`` -- the
ack/retransmit transport (:mod:`repro.net.reliable`) re-establishes
per-link FIFO exactly-once delivery end to end, which is what Theorem 4
actually needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.net.clock import Clock
from repro.net.message import Message

DEFAULT_BANDWIDTH_BPS = 10_000_000  # 10 Mbps, as in Section 6.1


@dataclass
class Channel:
    """One overlay link between two node addresses."""

    a: str
    b: str
    latency: float                       # seconds, one way
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    loss_rate: float = 0.0               # probability a message is dropped
    metrics: Dict[str, float] = field(default_factory=dict)
    _last_departure: Dict[str, float] = field(default_factory=dict)
    _loss_rng: Optional[random.Random] = field(default=None, repr=False)

    def other_end(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetworkError(f"{node} is not an endpoint of link {self.a}-{self.b}")

    # ------------------------------------------------------------------
    # Shared emulation model
    # ------------------------------------------------------------------
    def _check_endpoints(self, message: Message) -> None:
        if (
            message.src not in (self.a, self.b)
            or self.other_end(message.src) != message.dst
        ):
            raise NetworkError(
                f"message {message.src}->{message.dst} not on link "
                f"{self.a}-{self.b}"
            )

    def _rng_for_loss(self, rng: Optional[random.Random]) -> random.Random:
        """The loss decision always has an rng: the caller's, or a
        per-channel one seeded from the endpoint names -- so a lossy
        channel is deterministic by default rather than silently
        lossless when no rng is threaded through."""
        if rng is not None:
            return rng
        if self._loss_rng is None:
            self._loss_rng = random.Random(f"loss:{self.a}|{self.b}")
        return self._loss_rng

    def plan(
        self,
        clock: Clock,
        message: Message,
        rng: Optional[random.Random] = None,
    ) -> Tuple[float, bool]:
        """Book ``message`` onto the link: validate endpoints, advance
        this direction's transmit queue, and decide loss.  Returns
        ``(arrival_time, lost)``; the booking happens even for lost
        messages (they occupied the wire)."""
        self._check_endpoints(message)
        transmission = message.size * 8.0 / self.bandwidth_bps
        depart = (
            max(clock.now, self._last_departure.get(message.src, 0.0))
            + transmission
        )
        self._last_departure[message.src] = depart
        arrive = depart + self.latency
        lost = (
            self.loss_rate > 0.0
            and self._rng_for_loss(rng).random() < self.loss_rate
        )
        return arrive, lost

    # ------------------------------------------------------------------
    # Delivery (per-backend)
    # ------------------------------------------------------------------
    def transmit(
        self,
        clock: Clock,
        message: Message,
        deliver: Callable[[Message], None],
        rng: Optional[random.Random] = None,
    ) -> float:
        """Queue ``message`` for transmission; returns the arrival time
        (even for lost messages, which simply never deliver)."""
        raise NotImplementedError

"""Traffic accounting: the paper's two communication metrics.

* aggregate communication overhead (MB) -- Figures 11;
* per-node bandwidth over time (kBps) -- Figures 7, 9, 12, 13, 14.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class TrafficStats:
    """Records every sent message as ``(time, bytes)`` per node, plus
    the robustness counters of the reliable transport
    (:mod:`repro.net.reliable`) and the chaos harness
    (:mod:`repro.chaos`)."""

    records: List[Tuple[float, str, int]] = field(default_factory=list)
    dropped_no_link: int = 0
    messages: int = 0
    #: Reliable transport: retransmissions fired / pure acks flushed /
    #: duplicate arrivals discarded / out-of-order arrivals released in
    #: order from the reassembly buffer.
    retransmits: int = 0
    acks_sent: int = 0
    dup_dropped: int = 0
    reorders_healed: int = 0
    #: Sends suppressed because the watchdog declared the peer dead.
    dead_link_drops: int = 0
    #: Links the convergence watchdog tore down (retry budget spent).
    links_torn_down: int = 0
    #: Receive-path hardening: undecodable frames discarded, and
    #: datagrams that arrived with no send on the books.
    malformed_dropped: int = 0
    stray_datagrams: int = 0
    #: Z-set wire accounting: weighted NetDeltas that actually went on a
    #: link, and buffered deltas that were annihilated (or merged away)
    #: by per-message weight coalescing before the send.
    netdeltas_shipped: int = 0
    netdeltas_coalesced: int = 0
    #: Chaos harness: applied faults by kind.
    faults_injected: Dict[str, int] = field(default_factory=dict)

    def record(self, time: float, node: str, nbytes: int) -> None:
        self.records.append((time, node, nbytes))
        self.messages += 1

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        return sum(nbytes for _t, _n, nbytes in self.records)

    def total_mb(self) -> float:
        return self.total_bytes() / 1e6

    def bytes_by_node(self) -> Dict[str, int]:
        out: Dict[str, int] = defaultdict(int)
        for _time, node, nbytes in self.records:
            out[node] += nbytes
        return dict(out)

    # ------------------------------------------------------------------
    # Time series
    # ------------------------------------------------------------------
    def per_node_kbps_series(
        self,
        node_count: int,
        bin_seconds: float = 0.25,
        until: float = 0.0,
    ) -> List[Tuple[float, float]]:
        """Average per-node send bandwidth (kB/s) per time bin.

        This is the y-axis of Figures 7, 9, 12, 13 and 14: total bytes
        sent in the bin, divided by the bin length and the node count.
        """
        if not self.records and not until:
            return []
        end = max(until, max((t for t, _n, _b in self.records), default=0.0))
        bins = int(end / bin_seconds) + 1
        totals = [0.0] * bins
        for time, _node, nbytes in self.records:
            totals[min(int(time / bin_seconds), bins - 1)] += nbytes
        return [
            (
                round((index + 1) * bin_seconds, 9),
                totals[index] / bin_seconds / max(1, node_count) / 1e3,
            )
            for index in range(bins)
        ]

    def peak_per_node_kbps(
        self, node_count: int, bin_seconds: float = 0.25
    ) -> float:
        series = self.per_node_kbps_series(node_count, bin_seconds)
        return max((kbps for _t, kbps in series), default=0.0)

    def bytes_between(self, start: float, end: float) -> int:
        return sum(
            nbytes for time, _n, nbytes in self.records if start <= time < end
        )


@dataclass
class ResultTracker:
    """Tracks when each fact of a watched relation reached its final
    value -- the basis of the '% results over time' curves (Figures 8
    and 10) and of convergence time."""

    watch_pred: str
    last_insert: Dict[Tuple, float] = field(default_factory=dict)
    #: Weighted visibility totals: a ``+k`` burst (k derivations of one
    #: fact committing together) counts ``k``, and a ``-k`` invalidation
    #: counts ``k`` retracted -- the Z-set analogue of the insert/delete
    #: tallies.  ``retracted_weight`` accumulates positively.
    committed_weight: int = 0
    retracted_weight: int = 0

    def on_commit(self, time: float, fact, weight: int) -> None:
        """A weighted visibility transition for ``fact``: ``weight > 0``
        derivations became visible (or refreshed an existing row), or
        ``-weight`` left visibility.  Sign-only callers (the historical
        ``+-1`` contract) flow through unchanged."""
        if fact.pred != self.watch_pred:
            return
        if weight > 0:
            self.committed_weight += weight
            self.last_insert[fact.args] = time
        else:
            self.retracted_weight -= weight
            self.last_insert.pop(fact.args, None)

    def completion_times(self) -> List[float]:
        """Sorted commit times of the surviving (eventual) results."""
        return sorted(self.last_insert.values())

    def convergence_time(self) -> float:
        times = self.completion_times()
        return times[-1] if times else 0.0

    def results_over_time(
        self, points: int = 50
    ) -> List[Tuple[float, float]]:
        """CDF samples ``(time, fraction_of_eventual_results)``."""
        times = self.completion_times()
        if not times:
            return []
        total = len(times)
        end = times[-1]
        samples = []
        for index in range(points + 1):
            # The final sample is pinned to the exact last completion
            # time so the curve always closes at 1.0 (no float rounding).
            t = end if index == points else end * index / points
            done = sum(1 for x in times if x <= t)
            samples.append((round(t, 9), done / total))
        if samples[-1][1] != 1.0:
            samples[-1] = (samples[-1][0], 1.0)
        return samples

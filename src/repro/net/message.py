"""Messages and the on-wire size model.

The paper's primary communication metric is bytes transferred (aggregate
MB and per-node kBps).  We charge each tuple a header plus a simple
per-field encoding; the absolute constants are unimportant for shape
reproduction, but path vectors must grow with hop count (longer paths
cost more to ship), which this model captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ndlog.terms import ConstructedTuple

#: Fixed per-message overhead (transport headers etc.).
HEADER_BYTES = 20
#: Per-delta overhead when several deltas share one message (sharing).
DELTA_HEADER_BYTES = 4


def value_size(value) -> int:
    """Encoded size of one field value, in bytes."""
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return max(4, len(value))
    if isinstance(value, tuple):
        return 4 + sum(value_size(item) for item in value)
    if isinstance(value, ConstructedTuple):
        return 4 + sum(value_size(item) for item in value.values)
    return 8


def tuple_size(pred: str, args: Tuple) -> int:
    """Size of one tuple payload (without the message header)."""
    return len(pred) + sum(value_size(value) for value in args)


@dataclass(frozen=True)
class NetDelta:
    """One weighted tuple (a Z-set entry) as shipped over a link:
    ``weight`` derivations of ``(pred, args)`` asserted (``> 0``) or
    withdrawn (``< 0``).  The historical unit deltas are the ``+-1``
    special case, and :attr:`sign` keeps the direction-only view for
    call sites that branch on it.

    ``prov`` is an optional provenance tag: the derivation id (in the
    deployment's shared provenance store) of the rule firing that
    produced this tuple at the sender, piggybacked so the receiving
    node can link its materialization back to the producing derivation.
    ``trace`` is the delta-propagation trace id (:mod:`repro.obs`)
    piggybacked the same way, so a trace's causal spans continue across
    the wire.  Both are observability metadata: excluded from equality
    and from the byte model (the paper's communication metric predates
    them)."""

    pred: str
    args: Tuple
    weight: int
    prov: Optional[int] = field(default=None, compare=False)
    trace: Optional[int] = field(default=None, compare=False)

    @property
    def sign(self) -> int:
        return 1 if self.weight > 0 else -1

    def payload_size(self) -> int:
        # Cached: the fields are frozen, and the size walk recurses
        # through the whole path vector -- a top cost of the simulation
        # when recomputed per read (every message is sized at least
        # twice: once for the traffic stats, once for the link model).
        size = self.__dict__.get("_payload_size")
        if size is None:
            size = DELTA_HEADER_BYTES + tuple_size(self.pred, self.args)
            self.__dict__["_payload_size"] = size
        return size


@dataclass
class Message:
    """A network message: one or more deltas from ``src`` to ``dst``.

    Multiple deltas in one message model the opportunistic message
    sharing of Section 5.2: ``shared_fields`` are charged once.
    ``deltas`` and ``shared_bytes`` must not be mutated after the first
    ``size`` read (construction sites build messages whole).

    ``seq``/``ack`` are the reliable transport's per-direction sequence
    number and piggybacked cumulative ack (:mod:`repro.net.reliable`);
    a pure ack has ``ack`` set, ``seq`` ``None`` and no deltas.  Like
    provenance tags they ride outside the byte model -- the paper's
    communication metric is the protocol payload, and the few bytes of
    transport framing are already covered by ``HEADER_BYTES``.
    """

    src: str
    dst: str
    deltas: Tuple[NetDelta, ...]
    shared_bytes: int = 0
    seq: Optional[int] = None
    ack: Optional[int] = None
    _size: int = field(default=0, repr=False, compare=False)

    @property
    def size(self) -> int:
        if self._size:
            return self._size
        if self.shared_bytes:
            # Shared fields charged once; each member pays only its
            # distinct remainder plus a small delta header.
            distinct = sum(
                max(0, delta.payload_size() - self.shared_bytes)
                for delta in self.deltas
            )
            size = HEADER_BYTES + self.shared_bytes + distinct
        else:
            size = HEADER_BYTES + sum(d.payload_size() for d in self.deltas)
        self._size = size
        return size


def coalesce(deltas: Iterable[NetDelta]) -> Tuple[NetDelta, ...]:
    """Net a delta stream by Z-set addition: same-``(pred, args)``
    entries merge into one carrying the summed weight (first-seen
    order, zero sums dropped, latest non-``None`` provenance and trace
    tags kept).  Applied per message before send, so a link flap
    buffered within one flush interval ships nothing at all."""
    net: Dict[Tuple[str, Tuple], List] = {}
    order: List[Tuple[str, Tuple]] = []
    for delta in deltas:
        key = (delta.pred, delta.args)
        entry = net.get(key)
        if entry is None:
            net[key] = [delta.weight, delta.prov, delta.trace]
            order.append(key)
        else:
            entry[0] += delta.weight
            if delta.prov is not None:
                entry[1] = delta.prov
            if delta.trace is not None:
                entry[2] = delta.trace
    out: List[NetDelta] = []
    for pred, args in order:
        entry = net[(pred, args)]
        if entry[0] != 0:
            out.append(NetDelta(pred, args, entry[0], entry[1], entry[2]))
    return tuple(out)


def single(src: str, dst: str, pred: str, args: Tuple, weight: int) -> Message:
    return Message(src=src, dst=dst, deltas=(NetDelta(pred, args, weight),))

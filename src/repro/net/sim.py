"""Deterministic discrete-event simulator.

Replaces the Emulab testbed as the substrate for the paper's experiments
(see the substitution table in DESIGN.md).  All experiment metrics --
convergence seconds, kBps over time -- are measured in *virtual* time, so
results are reproducible and independent of host speed.

The simulator is the virtual-time implementation of the
:class:`~repro.net.clock.Clock` contract; the live deployment target
runs the same node runtimes on :class:`~repro.net.clock.WallClock`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.clock import Clock


class EventHandle:
    """Returned by :meth:`Simulator.at`; allows cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator(Clock):
    """A minimal event loop: schedule callbacks at virtual times.

    Ties are broken by scheduling order, so runs are fully deterministic.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.events_processed = 0
        # Installed by run(); step() honours it too, so mixed
        # step()/run() use cannot overshoot the cap.
        self._event_limit: Optional[int] = None
        self._event_budget = 0

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.now:
            raise NetworkError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        handle = EventHandle()
        heapq.heappush(self._heap, (time, next(self._sequence), handle, callback))
        return handle

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`after`: no :class:`EventHandle` is
        allocated, so the event cannot be cancelled.  The cheap path for
        high-frequency schedulers (node CPU ticks post one event per
        processed batch)."""
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), None, callback)
        )

    @property
    def pending(self) -> int:
        return len(self._heap)

    def _check_budget(self, item) -> None:
        """Raise the livelock error *before* consuming ``item``: the
        fatal event goes back on the heap and is not counted into
        ``events_processed`` (it never ran)."""
        if (
            self._event_limit is not None
            and self.events_processed >= self._event_limit
        ):
            heapq.heappush(self._heap, item)
            raise NetworkError(
                f"simulation exceeded {self._event_budget} events (livelock?)"
            )

    def step(self) -> bool:
        """Run the next event; returns False when the heap is empty.

        Shares :meth:`run`'s ``max_events`` accounting: once a run has
        installed a budget, stepping past it raises the same livelock
        error instead of silently overshooting the cap.
        """
        while self._heap:
            if self._heap[0][2] is not None and self._heap[0][2].cancelled:
                heapq.heappop(self._heap)
                continue
            item = heapq.heappop(self._heap)
            self._check_budget(item)
            time, _seq, _handle, callback = item
            self.now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run until quiescence (or virtual time ``until``); returns the
        final virtual time.

        ``until`` is an *observation* time, not just a stop condition:
        the clock always advances to ``until`` even when the event heap
        drains earlier, so a quiescent network's ``now`` does not stick
        at the last event time (later ``after()`` calls and soft-state
        expiry sweeps compute against the observed time).

        The loop is inlined rather than delegating to :meth:`step`: the
        batched node runtimes make the event schedule burstier (fewer,
        heavier events), but a large network still pushes millions of
        events through here, so the per-event constant -- one heap pop,
        one cancellation test, one call -- is kept minimal.
        """
        heap = self._heap
        pop = heapq.heappop
        limit = self.events_processed + max_events
        self._event_limit = limit
        self._event_budget = max_events
        while heap:
            if until is not None and heap[0][0] > until:
                if until > self.now:
                    self.now = until
                return self.now
            item = pop(heap)
            if item[2] is not None and item[2].cancelled:
                continue
            if self.events_processed >= limit:
                self._check_budget(item)
            time, _seq, _handle, callback = item
            self.now = time
            self.events_processed += 1
            callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

"""Deterministic discrete-event simulator.

Replaces the Emulab testbed as the substrate for the paper's experiments
(see the substitution table in DESIGN.md).  All experiment metrics --
convergence seconds, kBps over time -- are measured in *virtual* time, so
results are reproducible and independent of host speed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import NetworkError


class EventHandle:
    """Returned by :meth:`Simulator.at`; allows cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A minimal event loop: schedule callbacks at virtual times.

    Ties are broken by scheduling order, so runs are fully deterministic.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.now:
            raise NetworkError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        handle = EventHandle()
        heapq.heappush(self._heap, (time, next(self._sequence), handle, callback))
        return handle

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Run the next event; returns False when the heap is empty."""
        while self._heap:
            time, _seq, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run until quiescence (or virtual time ``until``); returns the
        final virtual time."""
        processed = 0
        while self._heap:
            next_time = self._heap[0][0]
            if until is not None and next_time > until:
                self.now = until
                return self.now
            if not self.step():
                break
            processed += 1
            if processed > max_events:
                raise NetworkError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )
        return self.now

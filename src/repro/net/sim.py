"""Deterministic discrete-event simulator.

Replaces the Emulab testbed as the substrate for the paper's experiments
(see the substitution table in DESIGN.md).  All experiment metrics --
convergence seconds, kBps over time -- are measured in *virtual* time, so
results are reproducible and independent of host speed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import NetworkError


class EventHandle:
    """Returned by :meth:`Simulator.at`; allows cancellation."""

    __slots__ = ("cancelled",)

    def __init__(self):
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A minimal event loop: schedule callbacks at virtual times.

    Ties are broken by scheduling order, so runs are fully deterministic.
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.now:
            raise NetworkError(
                f"cannot schedule at {time} (now is {self.now})"
            )
        handle = EventHandle()
        heapq.heappush(self._heap, (time, next(self._sequence), handle, callback))
        return handle

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`after`: no :class:`EventHandle` is
        allocated, so the event cannot be cancelled.  The cheap path for
        high-frequency schedulers (node CPU ticks post one event per
        processed batch)."""
        if delay < 0:
            raise NetworkError(f"negative delay {delay}")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), None, callback)
        )

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Run the next event; returns False when the heap is empty."""
        while self._heap:
            time, _seq, handle, callback = heapq.heappop(self._heap)
            if handle is not None and handle.cancelled:
                continue
            self.now = time
            self.events_processed += 1
            callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run until quiescence (or virtual time ``until``); returns the
        final virtual time.

        The loop is inlined rather than delegating to :meth:`step`: the
        batched node runtimes make the event schedule burstier (fewer,
        heavier events), but a large network still pushes millions of
        events through here, so the per-event constant -- one heap pop,
        one cancellation test, one call -- is kept minimal.
        """
        heap = self._heap
        pop = heapq.heappop
        limit = self.events_processed + max_events
        while heap:
            if until is not None and heap[0][0] > until:
                self.now = until
                return self.now
            time, _seq, handle, callback = pop(heap)
            if handle is not None and handle.cancelled:
                continue
            self.now = time
            self.events_processed += 1
            if self.events_processed > limit:
                raise NetworkError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )
            callback()
        return self.now

"""Reliable delivery over unreliable links: the protocol state.

One :class:`Flow` per ordered node pair carries both ends' state for
that direction of the conversation -- sender-side sequence numbering,
unacked buffer, and retransmit timer live at ``src``; receiver-side
cumulative cursor, out-of-order reassembly buffer, and delayed-ack
state live at ``dst``.  (The runtime hosts every node in one process,
so co-locating the two ends in one record is bookkeeping, not a
protocol shortcut: nothing crosses the pair except the messages and
acks themselves.)

Design points, all in service of restoring the delivery contract the
paper's theorems assume (per-link FIFO, no loss, no duplication --
Section 4.2 / Theorem 4) on top of a channel that guarantees none of it:

* **Cumulative acks, piggybacked.**  Every data message carries the
  highest in-order sequence received on the reverse direction; a
  direction with no reverse traffic flushes a pure ack after
  ``ack_delay`` (one ack then covers a whole burst).
* **One retransmit timer per direction**, covering the oldest unacked
  message -- TCP's discipline.  Because the receiver reassembles out of
  order, retransmitting the oldest gap makes the cumulative ack jump
  past everything buffered behind it.
* **Exponential backoff with jitter and a retry budget.**  Consecutive
  timeouts without ack progress double the RTO (decorrelated by a
  seeded jitter factor) until the budget exhausts -- at which point the
  peer is declared dead and the convergence watchdog tears the link
  down through the link-update path (see
  :meth:`repro.runtime.cluster.Cluster.fail_link`).
* **Receive-side dedup + in-order release.**  Duplicates (chaos or
  retransmit races) re-ack and drop; gaps buffer until the missing
  sequence arrives, then release in order -- so the engine above still
  observes the FIFO stream Theorem 4 requires.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.net.message import Message

__all__ = ["Flow", "FlowTable"]


class Flow:
    """State for one direction ``src -> dst``."""

    __slots__ = (
        "src", "dst",
        # sender side (at src)
        "next_seq", "unacked", "retries", "rto_base", "rto", "timer",
        "dead",
        # receiver side (at dst)
        "cursor", "ooo", "ack_owed", "ack_timer",
    )

    def __init__(self, src: str, dst: str, rto_base: float):
        self.src = src
        self.dst = dst
        self.next_seq = 1
        #: seq -> Message, insertion (= sequence) ordered.
        self.unacked: "OrderedDict[int, Message]" = OrderedDict()
        self.retries = 0
        self.rto_base = rto_base
        self.rto = rto_base
        self.timer = None
        self.dead = False
        #: Highest sequence delivered in order (cumulative ack value).
        self.cursor = 0
        #: Out-of-order reassembly buffer: seq -> Message.
        self.ooo: Dict[int, Message] = {}
        self.ack_owed = False
        self.ack_timer = None

    # -- sender side ----------------------------------------------------
    def stamp(self, message: Message) -> int:
        """Assign the next sequence number and buffer for retransmit."""
        seq = self.next_seq
        self.next_seq += 1
        self.unacked[seq] = message
        return seq

    def oldest_unacked(self) -> Optional[Message]:
        if not self.unacked:
            return None
        return next(iter(self.unacked.values()))

    def absorb_ack(self, ack: int) -> bool:
        """Drop every buffered message the cumulative ``ack`` covers;
        returns whether anything was newly acknowledged (progress
        resets the backoff)."""
        progressed = False
        while self.unacked and next(iter(self.unacked)) <= ack:
            self.unacked.popitem(last=False)
            progressed = True
        if progressed:
            self.retries = 0
            self.rto = self.rto_base
        return progressed

    def backoff(self, factor: float, cap: float) -> None:
        self.retries += 1
        self.rto = min(self.rto * factor, cap)

    # -- receiver side --------------------------------------------------
    def admit(self, seq: int, message: Message) -> \
            "tuple[List[Message], bool, int]":
        """Classify an arriving sequence.  Returns ``(ready, dup,
        healed)``: the messages releasable in order, whether this was a
        duplicate, and how many buffered out-of-order messages the
        arrival released."""
        if seq <= self.cursor or seq in self.ooo:
            return [], True, 0
        if seq != self.cursor + 1:
            self.ooo[seq] = message
            return [], False, 0
        self.cursor = seq
        ready = [message]
        healed = 0
        while self.cursor + 1 in self.ooo:
            self.cursor += 1
            ready.append(self.ooo.pop(self.cursor))
            healed += 1
        return ready, False, healed

    def cancel_timers(self) -> None:
        for name in ("timer", "ack_timer"):
            handle = getattr(self, name)
            if handle is not None:
                handle.cancel()
                setattr(self, name, None)


class FlowTable:
    """All flows of one cluster, keyed by ordered ``(src, dst)``."""

    def __init__(self, rto_min: float, ack_delay: float):
        self.rto_min = rto_min
        self.ack_delay = ack_delay
        self._flows: Dict[tuple, Flow] = {}

    def get(self, src: str, dst: str,
            latency: float = 0.0) -> Flow:
        key = (src, dst)
        flow = self._flows.get(key)
        if flow is None:
            # A sensible initial RTO: two round trips plus the delayed
            # ack, floored at the configured minimum.
            rto = max(self.rto_min, 4.0 * latency + 2.0 * self.ack_delay)
            flow = Flow(src, dst, rto)
            self._flows[key] = flow
        return flow

    def peek(self, src: str, dst: str) -> Optional[Flow]:
        return self._flows.get((src, dst))

    def values(self):
        return self._flows.values()

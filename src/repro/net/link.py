"""Simulated network links: FIFO, store-and-forward, optional loss.

Section 4.2 requires that "along any link in the network, there is a
FIFO ordering of messages" for distributed eventual consistency
(Theorem 4).  The link model guarantees it structurally: per-direction
departure times are monotone (a shared 10 Mbps transmit queue) and the
propagation latency is constant, so arrivals never reorder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.net.message import Message
from repro.net.sim import Simulator

DEFAULT_BANDWIDTH_BPS = 10_000_000  # 10 Mbps, as in Section 6.1


@dataclass
class LinkChannel:
    """One overlay link between two node addresses."""

    a: str
    b: str
    latency: float                       # seconds, one way
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    loss_rate: float = 0.0               # probability a message is dropped
    metrics: Dict[str, float] = field(default_factory=dict)
    _last_departure: Dict[str, float] = field(default_factory=dict)

    def other_end(self, node: str) -> str:
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise NetworkError(f"{node} is not an endpoint of link {self.a}-{self.b}")

    def transmit(
        self,
        sim: Simulator,
        message: Message,
        deliver: Callable[[Message], None],
        rng: Optional[random.Random] = None,
    ) -> float:
        """Queue ``message`` for transmission; returns the arrival time
        (even for lost messages, which simply never deliver)."""
        if message.src not in (self.a, self.b) or self.other_end(message.src) != message.dst:
            raise NetworkError(
                f"message {message.src}->{message.dst} not on link "
                f"{self.a}-{self.b}"
            )
        transmission = message.size * 8.0 / self.bandwidth_bps
        depart = max(sim.now, self._last_departure.get(message.src, 0.0)) + transmission
        self._last_departure[message.src] = depart
        arrive = depart + self.latency
        if self.loss_rate > 0.0 and rng is not None and rng.random() < self.loss_rate:
            return arrive  # dropped in flight
        sim.at(arrive, lambda: deliver(message))
        return arrive

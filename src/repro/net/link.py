"""Simulated network links: FIFO, store-and-forward, optional loss.

The timing and loss model lives on the shared
:class:`~repro.net.channel.Channel` base (the live channel backends use
the same emulation); this subclass is the clock-timer delivery backend:
an arrival is a scheduled callback straight into the cluster.  On the
virtual :class:`~repro.net.sim.Simulator` that reproduces the paper's
Emulab substrate; the same class runs unmodified on a
:class:`~repro.net.clock.WallClock`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.net.channel import DEFAULT_BANDWIDTH_BPS, Channel
from repro.net.clock import Clock
from repro.net.message import Message

__all__ = ["DEFAULT_BANDWIDTH_BPS", "LinkChannel"]


@dataclass
class LinkChannel(Channel):
    """One overlay link delivering via clock timers."""

    def transmit(
        self,
        clock: Clock,
        message: Message,
        deliver: Callable[[Message], None],
        rng: Optional[random.Random] = None,
    ) -> float:
        """Queue ``message`` for transmission; returns the arrival time
        (even for lost messages, which simply never deliver)."""
        arrive, lost = self.plan(clock, message, rng)
        if not lost:
            clock.at(arrive, lambda: deliver(message))
        return arrive

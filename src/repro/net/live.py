"""Live channel backends: asyncio queues and real UDP datagrams.

Two implementations of the :class:`~repro.net.channel.Channel` contract
for the wall-clock deployment target (:mod:`repro.runtime.live`):

* :class:`QueueChannel` -- in-process: an arrival is enqueued onto the
  destination node's asyncio inbox (the default backend; no sockets, so
  it runs anywhere and is the one used for sim-vs-live equivalence
  testing);
* :class:`UdpChannel` -- each node owns a real UDP datagram socket on
  localhost (one :class:`UdpFabric` per cluster manages the
  endpoints); deltas cross an actual kernel network path.

Both reuse the base class's emulation model, so configured latency,
bandwidth queueing, and loss apply to live runs exactly as they do in
simulation -- the emulated delay shapes *when* the delivery (or the
real ``sendto``) happens.

The wire format is JSON with tagged composites: NDlog values are
strings, numbers, bools, nested tuples (path vectors), and
:class:`~repro.ndlog.terms.ConstructedTuple`; tuples encode as
``{"T": [...]}`` and constructed tuples as ``{"C": pred, "v": [...]}``
so decoding round-trips exactly (JSON alone would flatten tuples into
lists and break hashing/joins on the receiving node).
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.clock import Clock
from repro.net.message import Message, NetDelta
from repro.ndlog.terms import ConstructedTuple

__all__ = [
    "QueueChannel",
    "UdpChannel",
    "UdpFabric",
    "encode_message",
    "decode_message",
]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def _encode_value(value):
    if isinstance(value, tuple):
        return {"T": [_encode_value(item) for item in value]}
    if isinstance(value, ConstructedTuple):
        return {"C": value.pred,
                "v": [_encode_value(item) for item in value.values]}
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    raise NetworkError(
        f"cannot encode {type(value).__name__} value for the wire: {value!r}"
    )


def _decode_value(value):
    if isinstance(value, dict):
        if "T" in value:
            return tuple(_decode_value(item) for item in value["T"])
        if "C" in value:
            return ConstructedTuple(
                value["C"], tuple(_decode_value(item) for item in value["v"])
            )
        raise NetworkError(f"unknown wire tag in {value!r}")
    if isinstance(value, list):  # defensive: plain lists decode as tuples
        return tuple(_decode_value(item) for item in value)
    return value


def encode_message(message: Message) -> bytes:
    # Each delta is [pred, weight, args] with optional trailing
    # elements: the provenance tag of the producing derivation and the
    # delta-propagation trace id (each omitted when absent; a trace
    # with no provenance ships an explicit null in the prov slot).
    # Weight occupies the slot the old format used for the sign, and
    # unit deltas encode identically under both readings, so frames
    # from pre-weight senders decode natively (weight = sign).
    deltas = []
    for delta in message.deltas:
        entry = [delta.pred, delta.weight,
                 [_encode_value(arg) for arg in delta.args]]
        if delta.trace is not None:
            entry.append(delta.prov)
            entry.append(delta.trace)
        elif delta.prov is not None:
            entry.append(delta.prov)
        deltas.append(entry)
    frame = {
        "s": message.src,
        "d": message.dst,
        "h": message.shared_bytes,
        "t": deltas,
    }
    # Reliable-transport framing ("q"uence / "a"ck), omitted when the
    # transport is off so the historical wire layout is untouched.
    if message.seq is not None:
        frame["q"] = message.seq
    if message.ack is not None:
        frame["a"] = message.ack
    return json.dumps(frame, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Decode one wire frame.

    Hardened: a malformed or truncated datagram raises
    :class:`~repro.errors.NetworkError` (never a bare ``KeyError`` /
    ``JSONDecodeError`` / ``UnicodeDecodeError``), so receive paths can
    absorb garbage with one taxonomy-stable except clause instead of
    dying inside ``datagram_received``.

    Weights: slot 1 of each delta entry is the Z-set weight.  Frames
    from pre-weight senders carried the sign there, which reads
    verbatim as a unit weight, so both formats decode through the same
    path.  A zero or non-integer weight has no Z-set meaning and is
    rejected as malformed (counted in ``malformed_dropped``).
    """
    try:
        raw = json.loads(data.decode("utf-8"))
        deltas = []
        for entry in raw["t"]:
            weight = entry[1]
            if weight == 0 or isinstance(weight, bool) \
                    or not isinstance(weight, int):
                raise NetworkError(
                    f"malformed wire delta weight {weight!r} "
                    f"for {entry[0]!r}"
                )
            deltas.append(NetDelta(
                entry[0],
                tuple(_decode_value(arg) for arg in entry[2]),
                weight,
                entry[3] if len(entry) > 3 else None,
                entry[4] if len(entry) > 4 else None,
            ))
        message = Message(src=raw["s"], dst=raw["d"], deltas=tuple(deltas),
                          shared_bytes=raw["h"],
                          seq=raw.get("q"), ack=raw.get("a"))
    except NetworkError:
        raise  # already taxonomied (unknown wire tag)
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        # ValueError covers JSONDecodeError and UnicodeDecodeError.
        raise NetworkError(
            f"malformed wire datagram ({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(message.src, str) or not isinstance(message.dst, str):
        raise NetworkError(
            f"malformed wire datagram (non-string endpoints "
            f"{message.src!r}->{message.dst!r})"
        )
    return message


# ----------------------------------------------------------------------
# In-process backend
# ----------------------------------------------------------------------
@dataclass
class QueueChannel(Channel):
    """In-process live link: the arrival timer hands the message to
    ``deliver``, which (in :class:`~repro.runtime.live.LiveCluster`)
    enqueues it onto the destination node's asyncio inbox.  Unlike the
    simulator link, scheduling tolerates wall time having moved past
    the computed arrival (the delivery then fires as soon as
    possible)."""

    def transmit(
        self,
        clock: Clock,
        message: Message,
        deliver: Callable[[Message], None],
        rng: Optional[random.Random] = None,
    ) -> float:
        arrive, lost = self.plan(clock, message, rng)
        if not lost:
            # post(): delivery is never cancelled, so skip the handle
            # allocation on the per-message hot path.
            clock.post(max(0.0, arrive - clock.now),
                       lambda: deliver(message))
        return arrive


# ----------------------------------------------------------------------
# UDP backend
# ----------------------------------------------------------------------
class _DatagramHandler(asyncio.DatagramProtocol):
    def __init__(self, fabric: "UdpFabric"):
        self.fabric = fabric

    def datagram_received(self, data: bytes, addr) -> None:
        self.fabric._receive(data)


class UdpFabric:
    """One UDP datagram endpoint per node, all on ``host``.

    The fabric owns socket lifecycle and the in-flight datagram count
    (a real datagram is invisible to the clock's ``pending`` between
    ``sendto`` and ``datagram_received``, so quiescence detection needs
    this counter).  UDP is genuinely unreliable: under a hard burst the
    kernel may drop datagrams even on loopback, so the counter can
    leak.  :meth:`settled` therefore treats datagrams outstanding for
    longer than ``loss_grace`` wall seconds as lost -- on loopback a
    real delivery takes microseconds, so the grace only triggers on
    actual loss (which the soft-state model is built to absorb, exactly
    the trade-off of Section 4.2).
    """

    #: Receive-buffer request per socket: a convergence burst can queue
    #: thousands of datagrams on one node before its tick drains them.
    RCVBUF_BYTES = 1 << 20

    def __init__(self, host: str = "127.0.0.1", loss_grace: float = 0.25):
        self.host = host
        self.loss_grace = loss_grace
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self._transports: Dict[str, asyncio.DatagramTransport] = {}
        self.in_flight = 0
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.malformed_dropped = 0
        self.stray_datagrams = 0
        self.last_activity = time.monotonic()
        self.on_message: Optional[Callable[[Message], None]] = None
        #: Cluster traffic stats to mirror the hardening counters into
        #: (set by the live cluster; optional so the fabric stands
        #: alone in unit tests).
        self.stats = None

    async def bind(self, node: str) -> Tuple[str, int]:
        """Open ``node``'s datagram endpoint on an ephemeral port."""
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, self.RCVBUF_BYTES
            )
            sock.setblocking(False)
            sock.bind((self.host, 0))
        except OSError:
            sock.close()
            raise
        transport, _protocol = await loop.create_datagram_endpoint(
            lambda: _DatagramHandler(self), sock=sock
        )
        address = transport.get_extra_info("sockname")[:2]
        self._transports[node] = transport
        self.addresses[node] = address
        return address

    def sendto(self, src: str, dst: str, data: bytes) -> None:
        transport = self._transports.get(src)
        address = self.addresses.get(dst)
        if transport is None or address is None:
            raise NetworkError(
                f"udp endpoint missing for {src!r}->{dst!r} "
                f"(fabric not fully bound?)"
            )
        self.in_flight += 1
        self.datagrams_sent += 1
        self.last_activity = time.monotonic()
        transport.sendto(data, address)

    def _receive(self, data: bytes) -> None:
        if self.in_flight <= 0:
            # A datagram with no send on the books (duplicated by the
            # stack, or sprayed at our port by a stranger) must not
            # push the counter negative -- that would poison ``settled``
            # into reporting quiescence while real sends are in flight.
            self.stray_datagrams += 1
            if self.stats is not None:
                self.stats.stray_datagrams += 1
        else:
            self.in_flight -= 1
        self.datagrams_received += 1
        self.last_activity = time.monotonic()
        try:
            message = decode_message(data)
        except NetworkError:
            # Garbage on the wire is the network's problem, not the
            # node's: count it and keep the receive path alive.
            self.malformed_dropped += 1
            if self.stats is not None:
                self.stats.malformed_dropped += 1
            return
        if self.on_message is not None:
            self.on_message(message)

    @property
    def settled(self) -> bool:
        """No datagrams believed to still be on the wire: either none
        outstanding, or the outstanding ones have been silent past the
        loss grace (kernel-dropped)."""
        if self.in_flight <= 0:
            return True
        return time.monotonic() - self.last_activity >= self.loss_grace

    def close(self) -> None:
        for transport in self._transports.values():
            transport.close()
        self._transports.clear()


@dataclass
class UdpChannel(Channel):
    """Live link over real UDP datagrams on localhost.

    The emulated transmission+latency delay decides when the datagram
    is handed to the kernel; the loopback path itself adds only its
    (microsecond) real latency on top.  ``deliver`` is unused: the real
    delivery happens in the destination endpoint's
    ``datagram_received``, which routes through the fabric's
    ``on_message`` hook.
    """

    fabric: Optional[UdpFabric] = field(default=None, repr=False)

    def transmit(
        self,
        clock: Clock,
        message: Message,
        deliver: Callable[[Message], None],
        rng: Optional[random.Random] = None,
    ) -> float:
        if self.fabric is None:
            raise NetworkError(
                f"UdpChannel {self.a}-{self.b} has no fabric attached"
            )
        arrive, lost = self.plan(clock, message, rng)
        if not lost:
            data = encode_message(message)
            clock.post(
                max(0.0, arrive - clock.now),
                lambda: self.fabric.sendto(message.src, message.dst, data),
            )
        return arrive

"""``python -m repro.lint`` -- the ndlint command-line front end.

Targets may be:

* a path to an ``.ndlog`` source file;
* a path to a ``.py`` file -- every string constant in it that parses
  as an NDlog program (contains a rule) is linted, so example scripts
  with inline ``SOURCE`` blocks are covered;
* the name of a builtin program from :mod:`repro.ndlog.programs`
  (e.g. ``shortest_path``);
* ``--all``: every builtin program plus every program embedded in
  ``examples/*.py``.

By default each program is first compiled through the default pass
pipeline (so aggregate-selection views are in place, exactly as they
would be on deploy) and the *rewritten* form is analyzed; ``--raw``
lints the source program as written.

Exit status: 0 when no finding reaches warning severity, 1 when the
worst finding is a warning, 2 on errors (including unparseable
targets) -- so the CLI doubles as a CI gate.
"""

from __future__ import annotations

import argparse
import ast as python_ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.analysis import ANALYSES, AnalysisReport, analyze, severity_rank
from repro.errors import ReproError
from repro.ndlog import programs
from repro.ndlog.parser import parse
from repro.ndlog.pretty import format_analysis_report

#: Builtin program builders, by CLI name.
BUILTINS = {
    name: getattr(programs, name)
    for name in sorted(dir(programs))
    if not name.startswith("_")
    and name.islower()
    and callable(getattr(programs, name))
    and name not in ("parse",)
    and getattr(programs, name).__module__ == programs.__name__
}


def extract_ndlog_sources(path: Path) -> Iterator[Tuple[str, str]]:
    """Yield ``(name, source)`` for every string constant in a Python
    file that parses as an NDlog program with at least one rule."""
    try:
        tree = python_ast.parse(path.read_text())
    except SyntaxError:
        return
    for node in python_ast.walk(tree):
        if not (isinstance(node, python_ast.Constant)
                and isinstance(node.value, str)):
            continue
        text = node.value
        if ":-" not in text:
            continue
        try:
            program = parse(text)
        except ReproError:
            continue
        if program.rules:
            yield f"{path.stem}:{node.lineno}", text


def _collect(targets: List[str], all_programs: bool,
             examples_dir: Optional[Path]) -> List[Tuple[str, object]]:
    """Resolve CLI targets to ``(name, program_or_source)`` pairs."""
    out: List[Tuple[str, object]] = []
    if all_programs:
        for name, builder in BUILTINS.items():
            out.append((name, builder()))
        if examples_dir and examples_dir.is_dir():
            for path in sorted(examples_dir.glob("*.py")):
                out.extend(extract_ndlog_sources(path))
    for target in targets:
        path = Path(target)
        if path.suffix == ".py" and path.is_file():
            found = list(extract_ndlog_sources(path))
            if not found:
                raise SystemExit(
                    f"lint: no NDlog programs found in {target}")
            out.extend(found)
        elif path.is_file():
            out.append((path.stem, path.read_text()))
        elif target in BUILTINS:
            out.append((target, BUILTINS[target]()))
        else:
            raise SystemExit(
                f"lint: {target!r} is neither a file nor a builtin "
                f"program; builtins: {', '.join(BUILTINS)}"
            )
    return out


def lint_one(name: str, target, passes=None,
             raw: bool = False) -> AnalysisReport:
    """Lint one program: compile through the default pipeline (unless
    ``raw``) and analyze the rewritten form."""
    if raw:
        return analyze(target, passes=passes, name=name)
    from repro import api

    artifact = api.compile(target, strict=False, name=name, lint="off")
    return analyze(artifact, passes=passes, name=name)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="ndlint: static analysis for NDlog programs",
    )
    parser.add_argument("targets", nargs="*",
                        help=".ndlog file, .py file, or builtin name")
    parser.add_argument("--all", action="store_true", dest="all_programs",
                        help="lint every builtin program and examples/")
    parser.add_argument("--passes",
                        help="comma-separated analysis subset "
                             f"(available: {', '.join(ANALYSES)})")
    parser.add_argument("--severity", default="info",
                        choices=("info", "warning", "error"),
                        help="only show findings at or above this level")
    parser.add_argument("--raw", action="store_true",
                        help="lint the program as written (skip the "
                             "default compile pipeline)")
    parser.add_argument("--verbose", action="store_true",
                        help="include rule source spans in findings")
    parser.add_argument("--examples-dir", default="examples",
                        help=argparse.SUPPRESS)
    options = parser.parse_args(argv)
    if not options.targets and not options.all_programs:
        parser.error("no targets given (or use --all)")
    passes = options.passes.split(",") if options.passes else None

    try:
        resolved = _collect(options.targets, options.all_programs,
                            Path(options.examples_dir))
    except ReproError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    worst = -1
    for name, target in resolved:
        try:
            report = lint_one(name, target, passes=passes, raw=options.raw)
        except ReproError as exc:
            print(f"{name}: failed to compile: {exc}", file=sys.stderr)
            worst = max(worst, severity_rank("error"))
            continue
        shown = report.at_least(options.severity)
        if report.diagnostics:
            worst = max(worst,
                        severity_rank(report.max_severity))
        if shown or not report.diagnostics:
            filtered = AnalysisReport(
                program_name=report.program_name or name,
                diagnostics=shown,
                summaries=report.summaries,
                analyses=report.analyses,
            )
            print(format_analysis_report(filtered,
                                         verbose=options.verbose))
            print()

    if worst >= severity_rank("error"):
        return 2
    if worst >= severity_rank("warning"):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Fault injection on the Clock/Channel seams.

The controller never patches runtime internals: it wraps every
:class:`~repro.net.channel.Channel` in a :class:`ChaosChannel` (faults
apply where the message enters the link, so the same code path covers
the simulator, the asyncio-queue backend, and real UDP) and hands
skewed nodes a :class:`SkewedClock` view of the cluster clock.  Crash
state is consulted at three points: message entry (a crashed endpoint
black-holes traffic), message delivery (a message in flight when the
destination dies is lost with it), and the node's CPU tick (a crashed
node's dataflow freezes until its restart).

Every fault decision comes from an RNG seeded from ``(schedule.seed,
fault index, link)``, so a schedule replays the identical fault trace
whenever the underlying message sequence is deterministic -- which the
simulator guarantees.  The applied faults are recorded on
:attr:`ChaosController.trace` and tallied into the cluster's
``stats.faults_injected``.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.chaos.schedule import MESSAGE_KINDS, ChaosSchedule, Fault
from repro.net.channel import Channel
from repro.net.clock import Clock
from repro.net.message import Message

__all__ = ["ChaosController", "ChaosChannel", "SkewedClock"]


class SkewedClock(Clock):
    """A node's drifted view of the shared cluster clock.

    ``now`` is the true timeline (faults and observations stay on one
    axis); every *relative* delay the node schedules is stretched by
    ``drift``, which is how skew manifests: a slow node's CPU ticks,
    soft-state refreshes, and retransmit timers all fire late relative
    to its peers.
    """

    def __init__(self, inner: Clock, drift: float):
        self.inner = inner
        self.drift = drift

    @property
    def now(self) -> float:
        return self.inner.now

    def at(self, time: float, callback: Callable[[], None]):
        delay = max(0.0, time - self.inner.now)
        return self.inner.at(self.inner.now + delay * self.drift, callback)

    def after(self, delay: float, callback: Callable[[], None]):
        return self.inner.after(delay * self.drift, callback)

    def post(self, delay: float, callback: Callable[[], None]) -> None:
        self.inner.post(delay * self.drift, callback)

    @property
    def pending(self) -> int:
        return self.inner.pending


class ChaosController:
    """Holds the schedule, the per-fault RNGs, and the fault trace for
    one cluster run."""

    def __init__(self, cluster, schedule: ChaosSchedule):
        for fault in schedule.faults:
            fault.check()
        self.cluster = cluster
        self.schedule = schedule
        #: Applied faults, ``(time, kind, src, dst)`` -- the replay
        #: fingerprint (identical seeds must produce identical traces).
        self.trace: List[Tuple[float, str, str, str]] = []
        self._rngs: Dict[Tuple[int, str, str], random.Random] = {}
        self._skewed: Dict[str, SkewedClock] = {}
        self.message_faults: List[Tuple[int, Fault]] = [
            (i, f) for i, f in enumerate(schedule.faults)
            if f.kind in MESSAGE_KINDS
        ]
        self.partitions: List[Fault] = [
            f for f in schedule.faults if f.kind == "partition"
        ]
        #: node -> (crash_time, resume_time); resume is +inf when the
        #: crash has no restart.
        self.crashes: Dict[str, Tuple[float, float]] = {
            f.node: (f.start,
                     math.inf if f.restart is None else f.restart)
            for f in schedule.faults if f.kind == "crash"
        }
        self.skews: Dict[str, float] = {
            f.node: f.drift for f in schedule.faults if f.kind == "skew"
        }

    # -- deterministic randomness ---------------------------------------
    def rng_for(self, index: int, a: str, b: str) -> random.Random:
        """One RNG per (fault, link): decisions on one link never
        perturb another link's, so traces stay stable under unrelated
        topology changes."""
        key = (index, a, b) if a <= b else (index, b, a)
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(f"{self.schedule.seed}/{key}")
            self._rngs[key] = rng
        return rng

    def note(self, kind: str, src: str, dst: str) -> None:
        now = self.cluster.clock.now
        self.trace.append((round(now, 9), kind, src, dst))
        tally = self.cluster.stats.faults_injected
        tally[kind] = tally.get(kind, 0) + 1
        tracer = getattr(self.cluster, "tracer", None)
        if tracer is not None:
            # Interleave the fault with the delta spans it affected, so
            # an exported trace shows *why* a flow stalled or repeated.
            tracer.fault("fault:" + kind, src, dst)

    # -- node state -----------------------------------------------------
    def down_until(self, node: str, now: Optional[float] = None) -> \
            Optional[float]:
        """``None`` if ``node`` is up at ``now``; otherwise the time it
        resumes (``inf`` for a crash with no restart)."""
        window = self.crashes.get(node)
        if window is None:
            return None
        crash, resume = window
        if now is None:
            now = self.cluster.clock.now
        if crash <= now < resume:
            return resume
        return None

    def dead_nodes(self, now: float) -> frozenset:
        """Nodes currently down -- excluded from quiescence checks
        (their frozen queues would otherwise hold the run open)."""
        return frozenset(
            node for node in self.crashes if self.down_until(node, now)
        )

    def partitioned(self, src: str, dst: str, now: float) -> bool:
        for fault in self.partitions:
            if fault.active(now) and \
                    (src in fault.nodes) != (dst in fault.nodes):
                return True
        return False

    def blocked(self, src: str, dst: str, now: float) -> bool:
        """True when traffic src->dst black-holes right now (either
        endpoint crashed, or the pair straddles an active partition)."""
        return (
            self.down_until(src, now) is not None
            or self.down_until(dst, now) is not None
            or self.partitioned(src, dst, now)
        )

    def deliverable(self, message: Message) -> bool:
        """Delivery-time guard (the cluster calls this for every
        arrival, on all three backends): a message whose destination
        crashed -- or whose link partitioned -- while it was in flight
        dies on the wire."""
        now = self.cluster.clock.now
        if self.blocked(message.src, message.dst, now):
            self.note("blackhole", message.src, message.dst)
            return False
        return True

    def clock_for(self, node: str) -> Clock:
        drift = self.skews.get(node)
        if drift is None or drift == 1.0:
            return self.cluster.clock
        skewed = self._skewed.get(node)
        if skewed is None:
            skewed = SkewedClock(self.cluster.clock, drift)
            self._skewed[node] = skewed
        return skewed

    def wrap_channels(self, channels: Dict[Tuple[str, str], Channel]) \
            -> None:
        for key, channel in channels.items():
            channels[key] = ChaosChannel(channel, self)


class ChaosChannel:
    """Wraps one channel; faults apply where a message enters the link.

    Everything except :meth:`transmit` delegates to the wrapped channel,
    so the emulation model (latency, bandwidth queueing, configured
    loss) and backend-specific attributes stay untouched.
    """

    def __init__(self, inner: Channel, controller: ChaosController):
        self.inner = inner
        self.controller = controller

    def __getattr__(self, name: str):
        return getattr(self.inner, name)

    def transmit(
        self,
        clock: Clock,
        message: Message,
        deliver: Callable[[Message], None],
        rng: Optional[random.Random] = None,
    ) -> float:
        ctl = self.controller
        now = clock.now
        if ctl.blocked(message.src, message.dst, now):
            ctl.note("blackhole", message.src, message.dst)
            return now
        for index, fault in ctl.message_faults:
            if not fault.active(now) or \
                    not fault.on_link(message.src, message.dst):
                continue
            decide = ctl.rng_for(index, message.src, message.dst)
            if decide.random() >= fault.rate:
                continue
            ctl.note(fault.kind, message.src, message.dst)
            if fault.kind == "drop":
                return now
            if fault.kind == "duplicate":
                # Extra copy now; the original continues through the
                # remaining faults and the normal send below.
                self.inner.transmit(clock, message, deliver, rng=rng)
                continue
            if fault.kind == "reorder":
                hold = decide.uniform(fault.min_delay, fault.max_delay)
                clock.post(
                    hold,
                    lambda: self.inner.transmit(clock, message, deliver,
                                                rng=rng),
                )
                return now + hold
            if fault.kind == "corrupt":
                return self._corrupt(clock, message, rng)
        return self.inner.transmit(clock, message, deliver, rng=rng)

    def _corrupt(self, clock: Clock, message: Message,
                 rng: Optional[random.Random]) -> float:
        """Garble the frame.  On the UDP backend real mangled bytes hit
        the destination socket (exercising ``decode_message``'s
        hardening); elsewhere the wire format is never materialized, so
        the corruption is modeled at its observable outcome: a frame
        that fails validation at the receiver and is discarded."""
        fabric = getattr(self.inner, "fabric", None)
        arrive, lost = self.inner.plan(clock, message, rng)
        if lost:
            return arrive
        if fabric is not None:
            from repro.net.live import encode_message

            data = encode_message(message)
            garbled = b"\xff\xfe" + data[: max(1, len(data) // 2)]
            clock.post(
                max(0.0, arrive - clock.now),
                lambda: fabric.sendto(message.src, message.dst, garbled),
            )
        else:
            self.controller.cluster.stats.malformed_dropped += 1
        return arrive

"""Invariant checking for chaos runs: fixpoint comparison + audit.

A chaos run is only interesting against ground truth.  The monitor
computes it the cheap, deterministic way -- a fault-free virtual-time
run of the same compiled program on the same overlay -- and then checks
a finished (quiescent) chaotic deployment on *any* target against it:

* **fixpoint**: the union of query-predicate rows must match the
  reference exactly (missing rows = lost facts, extra rows = stale
  state that never retracted);
* **provenance**: when the deployment captures provenance, the PR 5
  auditor must report zero mismatches (every surviving tuple has live
  support; counts match where the delivery mode allows exact counting).

``exclude_nodes`` removes crashed-for-good nodes from the comparison:
their frozen tables are expected to disagree.  For scenarios whose
*correct* outcome differs from the fault-free one (e.g. a watchdog
teardown permanently removes a link), pass the post-fault ``topology``
the reference should converge on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

__all__ = ["ChaosMonitor", "ChaosVerdict"]


@dataclass
class ChaosVerdict:
    """Outcome of one :meth:`ChaosMonitor.check`."""

    ok: bool
    fixpoint_match: bool
    missing: frozenset = frozenset()   # in reference, not in deployment
    extra: frozenset = frozenset()     # in deployment, not in reference
    audit_ok: Optional[bool] = None    # None: no provenance captured
    audit_issues: Tuple[str, ...] = ()
    excluded: Tuple[str, ...] = ()
    stats: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        parts = [
            "fixpoint match" if self.fixpoint_match else
            f"fixpoint MISMATCH ({len(self.missing)} missing, "
            f"{len(self.extra)} extra)",
        ]
        if self.audit_ok is not None:
            parts.append("audit clean" if self.audit_ok
                         else f"audit FAILED ({len(self.audit_issues)})")
        if self.excluded:
            parts.append(f"excluding {', '.join(self.excluded)}")
        return "; ".join(parts)


class ChaosMonitor:
    """Fault-free reference oracle for one (program, topology) pair."""

    def __init__(self, compiled, topology, config=None, link_loads=None):
        self.compiled = compiled
        self.topology = topology
        self.config = config
        self.link_loads = link_loads
        #: Cached reference rows, keyed by whether the quiescent
        #: slot-repair sweep was applied (see :meth:`expected`).
        self._reference: Dict[bool, frozenset] = {}
        #: Pre-start workload to replay in the reference run, mirroring
        #: what the checked deployment was given (e.g. magic facts).
        self._injects: list = []

    def inject(self, node: str, pred: str, args: Tuple) -> None:
        self._injects.append((node, pred, tuple(args)))

    def expected(self, repair: bool = False) -> frozenset:
        """Query rows of the fault-free virtual-time run (cached).

        With ``repair=True`` the reference is the *repaired* fixpoint:
        after quiescence the slot-repair sweep runs
        (:meth:`~repro.runtime.cluster.Cluster.repair`).  A watchdog
        teardown triggers that sweep automatically on the checked
        deployment, and repair is part of the convergence semantics --
        so a deployment that tore links must be compared against a
        reference computed under the same semantics."""
        if repair not in self._reference:
            import dataclasses

            from repro.runtime.cluster import Cluster
            from repro.runtime.config import RuntimeConfig

            config = self.config if self.config is not None \
                else RuntimeConfig()
            config = dataclasses.replace(
                config, chaos=None, reliable=False, loss_rate=0.0
            )
            cluster = Cluster(self.topology, self.compiled, config,
                              link_loads=self.link_loads)
            for node, pred, args in self._injects:
                cluster.inject(node, pred, args)
            cluster.run()
            if repair:
                cluster.repair()
            self._reference[repair] = cluster.query_rows()
        return self._reference[repair]

    def check(self, deployment,
              exclude_nodes: Iterable[str] = ()) -> ChaosVerdict:
        """Compare a quiescent deployment (sim or live handle) against
        the reference.  Rows homed at ``exclude_nodes`` (first argument
        = the node, per the localized head convention) are ignored on
        both sides."""
        excluded = tuple(exclude_nodes)
        query_pred = self._query_pred(deployment)
        actual = set()
        nodes = deployment.nodes
        for name, runtime in nodes.items():
            if name in excluded:
                continue
            actual.update(runtime.db.table(query_pred).rows())
        # A deployment whose watchdog tore links down has run the
        # quiescent slot-repair sweep; hold it to the reference
        # computed under the same (repaired) semantics.
        repaired = deployment.stats.links_torn_down > 0
        expected = {
            row for row in self.expected(repair=repaired)
            if not row or row[0] not in excluded
        }
        missing = frozenset(expected - actual)
        extra = frozenset(actual - expected)
        fixpoint_match = not missing and not extra

        audit_ok: Optional[bool] = None
        audit_issues: Tuple[str, ...] = ()
        cluster = getattr(deployment, "cluster", deployment)
        if getattr(cluster, "provenance", None) is not None:
            report = deployment.audit(exclude_nodes=excluded)
            audit_ok = report.ok
            audit_issues = tuple(repr(m) for m in report.mismatches)

        stats = deployment.stats
        return ChaosVerdict(
            ok=fixpoint_match and audit_ok is not False,
            fixpoint_match=fixpoint_match,
            missing=missing,
            extra=extra,
            audit_ok=audit_ok,
            audit_issues=audit_issues,
            excluded=excluded,
            stats={
                "retransmits": stats.retransmits,
                "dup_dropped": stats.dup_dropped,
                "reorders_healed": stats.reorders_healed,
                "links_torn_down": stats.links_torn_down,
                "malformed_dropped": stats.malformed_dropped,
                "faults": sum(stats.faults_injected.values()),
            },
        )

    def _query_pred(self, deployment) -> str:
        cluster = getattr(deployment, "cluster", deployment)
        return cluster.source_program.query.pred

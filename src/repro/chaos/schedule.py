"""The fault-schedule DSL: a serializable list of timed faults.

A :class:`ChaosSchedule` is plain data -- a seed plus a tuple of
:class:`Fault` records -- so the exact scenario that broke a run can be
written to JSON, attached to a bug report, and replayed bit-for-bit
(identical seeds replay identical fault traces on the simulator).

Fault kinds and their windows:

``drop`` / ``duplicate`` / ``reorder`` / ``corrupt``
    Per-message Bernoulli faults with probability ``rate``, applied to
    every message entering a matching link while ``start <= now < end``.
    ``reorder`` holds the message back an extra ``uniform(min_delay,
    max_delay)`` so later traffic on the link overtakes it; ``corrupt``
    garbles the encoded datagram (real bytes on the UDP backend, a
    detected-and-discarded frame elsewhere).
``partition``
    A clean cut: messages between ``nodes`` and the rest of the network
    black-hole during the window, then the cut heals.
``crash``
    Fail-pause at ``start``: the node stops processing and all its
    traffic black-holes; with ``restart`` set it resumes with state
    intact (a process pause/VM migration), without it the node is dead
    for good and only the watchdog's link teardown routes around it.
``skew``
    The node's clock runs ``drift`` times slow (>1) or fast (<1) for
    the whole run: CPU ticks, flush windows, and retransmit timers all
    stretch by the factor.  Windowless -- skew is a property of the
    node, not an event.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Tuple

from repro.errors import NetworkError

#: Fault kinds applied per message on a channel.
MESSAGE_KINDS = ("drop", "duplicate", "reorder", "corrupt")
#: All legal fault kinds.
KINDS = MESSAGE_KINDS + ("partition", "crash", "skew")


@dataclass(frozen=True)
class Fault:
    """One timed fault.  Which optional fields apply depends on
    ``kind`` (see the module docstring); :meth:`check` enforces it."""

    kind: str
    start: float = 0.0
    end: Optional[float] = None            # None = until the run ends
    rate: float = 1.0                      # message kinds: Bernoulli p
    link: Optional[Tuple[str, str]] = None  # message kinds: only this link
    node: Optional[str] = None             # crash / skew
    nodes: Tuple[str, ...] = ()            # partition group
    restart: Optional[float] = None        # crash: resume time
    drift: float = 1.0                     # skew: clock rate multiplier
    min_delay: float = 0.0                 # reorder: extra hold, lower
    max_delay: float = 0.05                # reorder: extra hold, upper

    def check(self) -> None:
        if self.kind not in KINDS:
            raise NetworkError(
                f"unknown fault kind {self.kind!r}; pick from {KINDS}"
            )
        if self.end is not None and self.end < self.start:
            raise NetworkError(
                f"{self.kind} fault window ends before it starts "
                f"({self.start} .. {self.end})"
            )
        if self.kind in MESSAGE_KINDS and not 0.0 <= self.rate <= 1.0:
            raise NetworkError(f"fault rate {self.rate} outside [0, 1]")
        if self.kind == "partition" and not self.nodes:
            raise NetworkError("partition fault needs a non-empty group")
        if self.kind == "crash" and self.node is None:
            raise NetworkError("crash fault needs a node")
        if self.kind == "crash" and self.restart is not None \
                and self.restart < self.start:
            raise NetworkError("crash restart precedes the crash")
        if self.kind == "skew" and (self.node is None or self.drift <= 0):
            raise NetworkError("skew fault needs a node and a drift > 0")
        if self.kind == "reorder" and self.max_delay < self.min_delay:
            raise NetworkError("reorder max_delay < min_delay")

    # -- window / scope tests (used per message by the injector) -------
    def active(self, now: float) -> bool:
        end = math.inf if self.end is None else self.end
        return self.start <= now < end

    def on_link(self, src: str, dst: str) -> bool:
        if self.link is None:
            return True
        a, b = self.link
        return (src, dst) in ((a, b), (b, a))


@dataclass
class ChaosSchedule:
    """A seeded, serializable fault plan.

    Builder style -- each method appends a fault and returns ``self``::

        schedule = (ChaosSchedule(seed=7)
                    .drop(rate=0.2, start=0.0, end=2.0)
                    .partition(["n0", "n1"], start=1.0, end=1.5)
                    .crash("n4", at=0.5, restart=1.2))
    """

    seed: int = 0
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def _add(self, fault: Fault) -> "ChaosSchedule":
        fault.check()
        self.faults = self.faults + (fault,)
        return self

    def drop(self, rate: float, start: float = 0.0,
             end: Optional[float] = None,
             link: Optional[Tuple[str, str]] = None) -> "ChaosSchedule":
        return self._add(Fault("drop", start, end, rate, link))

    def duplicate(self, rate: float, start: float = 0.0,
                  end: Optional[float] = None,
                  link: Optional[Tuple[str, str]] = None) -> "ChaosSchedule":
        return self._add(Fault("duplicate", start, end, rate, link))

    def reorder(self, rate: float, start: float = 0.0,
                end: Optional[float] = None,
                link: Optional[Tuple[str, str]] = None,
                min_delay: float = 0.0,
                max_delay: float = 0.05) -> "ChaosSchedule":
        return self._add(Fault("reorder", start, end, rate, link,
                               min_delay=min_delay, max_delay=max_delay))

    def corrupt(self, rate: float, start: float = 0.0,
                end: Optional[float] = None,
                link: Optional[Tuple[str, str]] = None) -> "ChaosSchedule":
        return self._add(Fault("corrupt", start, end, rate, link))

    def partition(self, nodes: Iterable[str], start: float,
                  end: Optional[float] = None) -> "ChaosSchedule":
        return self._add(Fault("partition", start, end,
                               nodes=tuple(nodes)))

    def crash(self, node: str, at: float,
              restart: Optional[float] = None) -> "ChaosSchedule":
        return self._add(Fault("crash", at, None, node=node,
                               restart=restart))

    def clock_skew(self, node: str, drift: float) -> "ChaosSchedule":
        return self._add(Fault("skew", node=node, drift=drift))

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [
                {k: (list(v) if isinstance(v, tuple) else v)
                 for k, v in asdict(fault).items()}
                for fault in self.faults
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSchedule":
        schedule = cls(seed=int(data.get("seed", 0)))
        for raw in data.get("faults", ()):
            raw = dict(raw)
            if raw.get("link") is not None:
                raw["link"] = tuple(raw["link"])
            raw["nodes"] = tuple(raw.get("nodes") or ())
            try:
                fault = Fault(**raw)
            except TypeError as exc:
                raise NetworkError(f"bad fault record {raw!r}: {exc}") \
                    from exc
            schedule._add(fault)
        return schedule

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise NetworkError(f"malformed chaos schedule JSON: {exc}") \
                from exc
        return cls.from_dict(data)

"""Chaos harness: deterministic, seeded fault injection on the
Clock/Channel seams.

The paper's correctness results lean on delivery assumptions the
runtime otherwise takes on faith -- Theorem 4 requires per-link FIFO
ordering, and bursty-loss recovery is argued only for soft state
(Section 4.2).  This package makes those assumptions *testable*: a
serializable :class:`ChaosSchedule` describes timed faults (message
drop / duplicate / reorder / corrupt, link partitions, node crashes and
restarts, per-node clock skew); a :class:`ChaosController` injects them
identically on the simulator and both live backends by wrapping the
existing channel objects and per-node clocks; and a
:class:`ChaosMonitor` checks the post-chaos fixpoint against a
fault-free reference run plus the provenance auditor.

Pair a schedule with ``reliable=True`` (the ack/retransmit transport in
:mod:`repro.net.reliable`) to restore the FIFO + exactly-once delivery
the theorems assume; run the same schedule without it to watch the
protocol lose facts.
"""

from repro.chaos.inject import ChaosChannel, ChaosController, SkewedClock
from repro.chaos.monitor import ChaosMonitor, ChaosVerdict
from repro.chaos.schedule import Fault, ChaosSchedule

__all__ = [
    "ChaosSchedule",
    "Fault",
    "ChaosController",
    "ChaosChannel",
    "SkewedClock",
    "ChaosMonitor",
    "ChaosVerdict",
]

"""Magic-sets rewriting (Section 5.1.2, [Bancilhon et al. 86]).

"To limit query computation to the relevant portion of the network, we
use a query rewrite technique, called magic sets rewriting."

This module implements the standard adornment-based transformation with
left-to-right sideways information passing:

1. the query literal's constant positions induce a *bound/free*
   adornment on the query predicate;
2. each IDB predicate/adornment pair gets a ``magic_<pred>_<ad>`` seed
   relation holding the bound argument tuples that are actually needed;
3. every rule defining an adorned predicate is guarded by its magic
   literal, and every IDB body literal contributes a *magic rule* that
   forwards the bindings available at its position.

The transformation applies to plain-Datalog programs (location
specifiers pass through untouched as ordinary bound/free argument
positions); the paper's hand-written network variants (``magicDst``,
``magicSrc``) live in :mod:`repro.ndlog.programs` and are what the
distributed experiments execute, exactly as in Section 6.3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import PlanError
from repro.ndlog.ast import Assignment, Literal, Program, Rule
from repro.ndlog.terms import Constant, Term, Variable


def adornment_of(literal: Literal, bound_vars: Set[str]) -> str:
    """'b'/'f' pattern for a literal given the bound variable set."""
    pattern = []
    for arg in literal.args:
        if isinstance(arg, Constant):
            pattern.append("b")
        elif isinstance(arg, Variable):
            pattern.append("b" if arg.name in bound_vars else "f")
        else:
            names = arg.variables()
            pattern.append("b" if names and names <= bound_vars else "f")
    return "".join(pattern)


def _adorned_name(pred: str, adornment: str) -> str:
    return f"{pred}_{adornment}"


def _magic_name(pred: str, adornment: str) -> str:
    return f"magic_{pred}_{adornment}"


def _bound_args(literal: Literal, adornment: str) -> Tuple[Term, ...]:
    return tuple(
        arg for arg, flag in zip(literal.args, adornment) if flag == "b"
    )


def magic_rewrite(program: Program, query: Optional[Literal] = None) -> Program:
    """Rewrite ``program`` for the given query literal.

    The query's ``Constant`` arguments are the bound positions.  Returns
    a new program whose query predicate is the adorned variant; a final
    bridging rule restores the original predicate name so callers can
    compare answer sets directly.
    """
    query = query or program.query
    if query is None:
        raise PlanError("magic rewrite needs a query literal")
    idb = program.idb_predicates()
    if query.pred not in idb:
        raise PlanError(f"query predicate {query.pred!r} is not derived")

    query_adornment = adornment_of(query, set())
    if "b" not in query_adornment:
        # Nothing bound: magic sets degenerate to the original program.
        return program

    rules_by_pred: Dict[str, List[Rule]] = {}
    for rule in program.rules:
        rules_by_pred.setdefault(rule.head.pred, []).append(rule)

    new_rules: List[Rule] = []
    produced: Set[Tuple[str, str]] = set()
    worklist: List[Tuple[str, str]] = [(query.pred, query_adornment)]

    while worklist:
        pred, adornment = worklist.pop()
        if (pred, adornment) in produced:
            continue
        produced.add((pred, adornment))
        for rule_index, rule in enumerate(rules_by_pred.get(pred, ())):
            new_rules.extend(
                _rewrite_rule(rule, adornment, idb, worklist, rule_index)
            )

    # Magic seed: the query's bound constants.
    seed = Literal(
        _magic_name(query.pred, query_adornment),
        _bound_args(query, query_adornment),
    )

    # Bridge the adorned answers back to the original predicate name.
    bridge_head = Literal(query.pred, query.args)
    bridge_body = Literal(_adorned_name(query.pred, query_adornment), query.args)
    bridge = Rule(head=bridge_head, body=(bridge_body,), label="magic_bridge")

    return Program(
        rules=new_rules + [bridge],
        facts=list(program.facts) + [seed],
        materializations=dict(program.materializations),
        query=query,
        name=f"{program.name}_magic" if program.name else "magic",
    )


def _rewrite_rule(
    rule: Rule,
    adornment: str,
    idb: frozenset,
    worklist: List[Tuple[str, str]],
    rule_index: int,
) -> List[Rule]:
    """Adorn one rule and emit its guarded variant plus magic rules."""
    if rule.head_aggregate() is not None:
        raise PlanError(
            "magic rewrite over aggregate heads is not supported; rewrite "
            "below the aggregate instead"
        )
    head = rule.head
    if len(adornment) != head.arity:
        raise PlanError(f"adornment {adornment} does not fit {head.pred}")

    bound_vars: Set[str] = set()
    for arg, flag in zip(head.args, adornment):
        if flag == "b":
            bound_vars |= arg.variables()

    magic_guard = Literal(
        _magic_name(head.pred, adornment), _bound_args(head, adornment)
    )
    out: List[Rule] = []
    new_body: List[object] = [magic_guard]
    for item in rule.body:
        if isinstance(item, Literal) and item.pred in idb:
            item_adornment = adornment_of(item, bound_vars)
            worklist.append((item.pred, item_adornment))
            # Magic rule: what is needed of this literal, given what is
            # known so far (left-to-right SIP).  Skip the degenerate case
            # where the needed bindings are exactly the guard itself.
            if "b" in item_adornment:
                magic_head = Literal(
                    _magic_name(item.pred, item_adornment),
                    _bound_args(item, item_adornment),
                )
                degenerate = (
                    len(new_body) == 1
                    and isinstance(new_body[0], Literal)
                    and new_body[0].pred == magic_head.pred
                    and new_body[0].args == magic_head.args
                )
                if not degenerate:
                    out.append(
                        Rule(
                            head=magic_head,
                            body=tuple(new_body),
                            label=f"magic_{rule.label or rule.head.pred}"
                                  f"_{rule_index}_{len(out)}",
                        )
                    )
            new_body.append(item.with_pred(_adorned_name(item.pred, item_adornment)))
            bound_vars |= item.variables()
        elif isinstance(item, Literal):
            new_body.append(item)
            bound_vars |= item.variables()
        elif isinstance(item, Assignment):
            new_body.append(item)
            bound_vars.add(item.var.name)
        else:
            new_body.append(item)

    out.append(
        Rule(
            head=head.with_pred(_adorned_name(head.pred, adornment)),
            body=tuple(new_body),
            label=f"{rule.label or head.pred}_{adornment}",
        )
    )
    return out

"""Plan generation: rule localization (Algorithm 2), the textual
semi-naive delta rewrite, magic sets, and predicate reordering."""

from repro.planner import magic, reorder, seminaive_rewrite
from repro.planner.localization import is_canonical, localize, localize_rule
from repro.planner.magic import magic_rewrite
from repro.planner.reorder import reorder_program
from repro.planner.seminaive_rewrite import seminaive_rewrite as delta_rewrite

__all__ = [
    "localize",
    "localize_rule",
    "is_canonical",
    "magic",
    "magic_rewrite",
    "reorder",
    "reorder_program",
    "seminaive_rewrite",
    "delta_rewrite",
]

"""The textual semi-naive rewrite (Section 3.1).

The SN engine performs the delta decomposition internally; this module
materializes it as a *program* rewrite for inspection, documentation and
tests -- producing, for rule SP2, exactly the paper's SP2-1::

    d_path_new(@S,@D,@Z,P,C) :- #link(@S,@Z,C1),
        d_path_old(@Z,@D,@Z2,P2,C2), C = C1 + C2, ...

One delta rule is emitted per occurrence of a recursive predicate in a
rule body, following footnote 2's form: occurrences before the delta
position read the ``_old`` relation, the delta position reads the
``_delta`` relation, and later occurrences read the full relation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set

from repro.ndlog.ast import Literal, Program, Rule

DELTA_NEW_PREFIX = "delta_new_"
DELTA_OLD_PREFIX = "delta_old_"
OLD_PREFIX = "old_"


def delta_rules_for(rule: Rule, recursive_preds: Set[str]) -> List[Rule]:
    """The semi-naive delta rules for one rule.

    Non-recursive rules (no recursive body literal) fire only in the
    base case and are returned unchanged.
    """
    recursive_positions = [
        index
        for index, item in enumerate(rule.body)
        if isinstance(item, Literal) and item.pred in recursive_preds
    ]
    if not recursive_positions:
        return [rule]

    out: List[Rule] = []
    for delta_index, position in enumerate(recursive_positions):
        body: List[object] = []
        for index, item in enumerate(rule.body):
            if not isinstance(item, Literal) or item.pred not in recursive_preds:
                body.append(item)
            elif index < position:
                body.append(item.with_pred(OLD_PREFIX + item.pred))
            elif index == position:
                body.append(item.with_pred(DELTA_OLD_PREFIX + item.pred))
            else:
                body.append(item)  # full relation
        head = rule.head.with_pred(DELTA_NEW_PREFIX + rule.head.pred)
        label = rule.label or rule.head.pred
        out.append(
            replace(
                rule,
                head=head,
                body=tuple(body),
                label=f"{label}-{delta_index + 1}",
            )
        )
    return out


def seminaive_rewrite(
    program: Program, recursive_preds: Optional[Set[str]] = None
) -> Program:
    """Emit the delta-rule program for every recursive rule."""
    if recursive_preds is None:
        recursive_preds = set(program.idb_predicates())
    rules: List[Rule] = []
    for rule in program.rules:
        rules.extend(delta_rules_for(rule, recursive_preds))
    return Program(
        rules=rules,
        facts=list(program.facts),
        materializations=dict(program.materializations),
        query=program.query,
        name=f"{program.name}_sn" if program.name else "sn",
    )

"""Rule localization rewrite -- Algorithm 2 of the paper.

A non-local link-restricted rule may reference predicates stored at both
endpoints of its link literal (rule SP2 joins ``#link`` stored at ``@S``
with ``path`` stored at ``@Z``).  Localization rewrites every such rule
into rules whose bodies are evaluable at a single node, with all
communication along links (Claim 1):

* a *send* rule groups the link with the body items at the link's source
  and ships the needed variables to the destination (the paper fuses the
  ``hS``/``hD`` pair into one rule in its SP2a example; we do the same);
* a *final* rule joins the shipped tuple with the destination-side items;
  if the original head lives at the source, the final rule carries a
  reverse ``#link(@D,@S,...)`` literal so the result travels back along
  the same (bidirectional) link -- "the algorithm ... may add a
  #link(@D,@S) to a rewritten rule to allow for backward propagation of
  messages".

After localization every rule satisfies the *canonical form*: its body
has one location, and its head is either local or exactly one link hop
away (see :func:`is_canonical`).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set

from repro.errors import PlanError
from repro.ndlog.ast import (
    Assignment,
    Condition,
    Literal,
    Program,
    Rule,
)
from repro.ndlog.terms import Constant, Term, Variable
from repro.ndlog.validator import is_link_restricted, is_local_rule


def _location_key(term: Term):
    if isinstance(term, Variable):
        return ("var", term.name)
    if isinstance(term, Constant):
        return ("const", term.value)
    raise PlanError(f"location specifier must be a variable or constant: {term!r}")


def _fresh_var(base: str, used: Set[str]) -> Variable:
    name = base
    for counter in itertools.count(2):
        if name not in used:
            used.add(name)
            return Variable(name)
        name = f"{base}{counter}"
    raise AssertionError("unreachable")


def localize_rule(
    rule: Rule,
    index: int,
    used_preds: Set[str],
    materializations: Optional[Dict[str, "Materialization"]] = None,
) -> List[Rule]:
    """Localize one rule; returns replacement rules (possibly just
    ``[rule]`` when it is already canonical).

    When the send rule ships nothing but the link itself (the common
    SP2a/"linkD" case), the mid relation has exactly one row per link
    row, so it is declared with a primary key on its first two fields
    (via ``materializations``, if given): a link-cost update then
    travels as a single replacement message instead of a
    deletion/insertion pair.
    """
    if is_local_rule(rule):
        return [rule]
    if not is_link_restricted(rule):
        raise PlanError(
            f"rule {rule.label or rule.head.pred} is neither local nor "
            f"link-restricted; cannot localize"
        )
    link = next(lit for lit in rule.body_literals if lit.link_literal)
    src_key = _location_key(link.args[0])
    dst_key = _location_key(link.args[1])

    # Partition body items between the link's endpoints.  Assignments and
    # conditions run at the earliest endpoint where their inputs are
    # bound (source first, matching left-to-right evaluation).
    src_items: List[object] = [link]
    dst_items: List[object] = []
    src_bound: Set[str] = set(link.variables())
    for item in rule.body:
        if item is link:
            continue
        if isinstance(item, Literal):
            where = _location_key(item.location)
            if where == src_key:
                src_items.append(item)
                src_bound |= item.variables()
            elif where == dst_key:
                dst_items.append(item)
            else:
                raise PlanError(
                    f"literal {item!r} located off the link endpoints"
                )
        elif isinstance(item, Assignment):
            if not dst_items and item.expr.variables() <= src_bound:
                src_items.append(item)
                src_bound.add(item.var.name)
            else:
                dst_items.append(item)
        elif isinstance(item, Condition):
            if not dst_items and item.variables() <= src_bound:
                src_items.append(item)
            else:
                dst_items.append(item)
        else:
            raise PlanError(f"unsupported body item {item!r}")

    head_key = _location_key(rule.head.location)
    if not dst_items:
        # Body fully evaluable at the source; the head is local or one
        # hop away along the link.  Already canonical.
        return [rule]

    # --------------------------------------------------------------
    # Variables the destination side needs from the source side.
    # --------------------------------------------------------------
    dst_needs: Set[str] = set()
    for item in dst_items:
        dst_needs |= item.variables()
    head_vars: Set[str] = set()
    for arg in rule.head.args:
        head_vars |= arg.variables()
    dst_needs |= head_vars

    link_src_var = link.args[0]
    link_dst_var = link.args[1]
    carried_names = sorted(
        name
        for name in (src_bound & dst_needs)
        - ({link_src_var.name} if isinstance(link_src_var, Variable) else set())
        - ({link_dst_var.name} if isinstance(link_dst_var, Variable) else set())
    )

    base = (rule.label or f"r{index}").lower()
    mid_pred = f"{base}_{rule.head.pred}_mid"
    while mid_pred in used_preds:
        mid_pred += "x"
    used_preds.add(mid_pred)

    # Send rule: evaluate the source-side items at @S, ship the carried
    # variables to @D (location specifier first, then the sender).
    mid_head = Literal(
        mid_pred,
        (
            _as_location(link_dst_var),
            _as_location(link_src_var),
            *(Variable(name) for name in carried_names),
        ),
    )
    send_rule = Rule(
        head=mid_head,
        body=tuple(src_items),
        label=f"{rule.label}a" if rule.label else f"{base}a",
    )
    if materializations is not None and not any(
        isinstance(item, Literal) and item is not link for item in src_items
    ):
        from repro.ndlog.ast import Materialization

        materializations[mid_pred] = Materialization(mid_pred, keys=(1, 2))

    # Final rule: join the shipped tuple with the destination items.
    mid_body = Literal(
        mid_pred,
        (
            _as_location(link_dst_var),
            _as_location(link_src_var),
            *(Variable(name) for name in carried_names),
        ),
    )
    final_body: List[object] = [mid_body]
    if head_key == src_key:
        # Result must travel back to the source: join the reverse link
        # (links are bidirectional, Section 2.1) for backward propagation.
        used_vars = set(rule.variables()) | set(carried_names)
        extra = tuple(
            _fresh_var(f"LZ{i}", used_vars) for i in range(link.arity - 2)
        )
        reverse_link = Literal(
            link.pred,
            (_as_location(link_dst_var), _as_location(link_src_var), *extra),
            link_literal=True,
        )
        final_body.insert(0, reverse_link)
    final_body.extend(dst_items)
    final_rule = Rule(
        head=rule.head,
        body=tuple(final_body),
        label=f"{rule.label}b" if rule.label else f"{base}b",
    )
    return [send_rule, final_rule]


def _as_location(term: Term) -> Term:
    if isinstance(term, Variable):
        return Variable(term.name, location=True)
    if isinstance(term, Constant):
        return Constant(term.value, location=True)
    raise PlanError(f"bad location term {term!r}")


def localize(program: Program) -> Program:
    """Apply Algorithm 2 to every rule of ``program``."""
    used_preds = set(program.predicates())
    rules: List[Rule] = []
    materializations = dict(program.materializations)
    for index, rule in enumerate(program.rules):
        rules.extend(localize_rule(rule, index, used_preds, materializations))
    return Program(
        rules=rules,
        facts=list(program.facts),
        materializations=materializations,
        query=program.query,
        name=f"{program.name}_localized" if program.name else "localized",
    )


# ----------------------------------------------------------------------
# Canonical-form verification (Claim 1)
# ----------------------------------------------------------------------
def rule_execution_site(rule: Rule):
    """The single location key at which a canonical rule body executes."""
    sites = {_location_key(lit.location) for lit in rule.body_literals}
    if len(sites) != 1:
        raise PlanError(
            f"rule {rule.label or rule.head.pred} body spans {len(sites)} "
            f"locations; run localization first"
        )
    return next(iter(sites))


def head_is_local(rule: Rule) -> bool:
    return _location_key(rule.head.location) == rule_execution_site(rule)


def is_canonical(program: Program) -> bool:
    """Claim 1: every rule body evaluable at a single node, and every
    non-local head one link hop away (its location appears as an endpoint
    of a link literal in the body)."""
    for rule in program.rules:
        if not rule.body:
            continue
        try:
            site = rule_execution_site(rule)
        except PlanError:
            return False
        head_key = _location_key(rule.head.location)
        if head_key == site:
            continue
        link_endpoints = set()
        for lit in rule.body_literals:
            if lit.link_literal and lit.arity >= 2:
                link_endpoints.add(_location_key(lit.args[0]))
                link_endpoints.add(_location_key(lit.args[1]))
        if head_key not in link_endpoints:
            return False
    return True

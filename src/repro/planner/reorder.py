"""Predicate reordering (Section 5.1.2) and greedy join ordering.

"Interestingly, switching the search strategy can be done simply by
reordering the path and #link predicates.  This has the effect of
turning SP2 from a right-recursive to a left-recursive rule."

Reordering never changes Datalog semantics (body conjuncts commute); in
the distributed setting it flips which endpoint initiates propagation --
Bottom-Up (paths flow backwards from destinations) versus Top-Down
(paths flow forward from sources, resembling dynamic source routing).

:func:`choose_next_literal` is the ordering policy behind the compiled
join plans of :mod:`repro.engine.rules`: given the variables already
bound (e.g. by a strand's driving tuple), pick the most-bound literal,
ties broken by estimated candidate count from a
:class:`repro.opt.costbased.StatsCatalog`-style statistics object.
``compile_plan`` drives it step by step (interleaving assignment and
condition placement, which can bind further variables between picks);
:func:`greedy_join_order` is the one-shot wrapper for ordering a plain
literal list.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import PlanError
from repro.ndlog.ast import Assignment, Condition, Literal, Program, Rule
from repro.ndlog.terms import Constant, Variable


def reorder_body(rule: Rule, literal_order: Sequence[int]) -> Rule:
    """Permute the rule's body *literals* into ``literal_order`` (indexes
    into the current literal sequence).  Assignments and conditions are
    re-placed greedily at the earliest point where their inputs are
    bound, preserving left-to-right evaluability."""
    literals = list(rule.body_literals)
    if sorted(literal_order) != list(range(len(literals))):
        raise PlanError(f"bad literal order {literal_order!r}")
    ordered = [literals[i] for i in literal_order]
    rest = [item for item in rule.body if not isinstance(item, Literal)]

    body: List[object] = []
    bound: set = set()
    pending = list(rest)
    for literal in ordered:
        body.append(literal)
        bound |= literal.variables()
        placed = []
        for item in pending:
            if isinstance(item, Assignment):
                if item.expr.variables() <= bound:
                    body.append(item)
                    bound.add(item.var.name)
                    placed.append(item)
            elif isinstance(item, Condition):
                if item.variables() <= bound:
                    body.append(item)
                    placed.append(item)
        for item in placed:
            pending.remove(item)
    if pending:
        body.extend(pending)  # uninstantiable items keep original order
    return replace(rule, body=tuple(body))


def bound_positions(literal: Literal, bound: Set[str]) -> int:
    """How many argument positions of ``literal`` an indexed lookup can
    consume given the variables in ``bound``: constants, variables
    already bound, and expressions whose inputs are all bound."""
    count = 0
    for term in literal.args:
        if isinstance(term, Constant):
            count += 1
        elif isinstance(term, Variable):
            if term.name in bound:
                count += 1
        elif term.variables() <= bound:
            count += 1
    return count


def choose_next_literal(
    candidates: Sequence[Tuple[int, Literal]],
    bound: Set[str],
    stats=None,
) -> Tuple[int, Literal]:
    """Greedy pick for join ordering among ``(body_index, literal)``
    candidates: highest bound fraction first (bound-ness), then lowest
    estimated candidate count (selectivity), then original body order.

    ``stats`` is any object with ``estimated_candidates(pred, arity,
    bound_count)`` (see :class:`repro.opt.costbased.StatsCatalog`).
    """
    def key(entry):
        body_index, literal = entry
        arity = len(literal.args) or 1
        n_bound = bound_positions(literal, bound)
        if stats is not None:
            est = stats.estimated_candidates(literal.pred, arity, n_bound)
        else:
            est = 0.0
        return (-(n_bound / arity), est, body_index)

    return min(candidates, key=key)


def greedy_join_order(
    literals: Sequence[Tuple[int, Literal]],
    initial_bound: Set[str],
    stats=None,
    lead: Optional[int] = None,
) -> List[int]:
    """Full evaluation order over ``(body_index, literal)`` pairs, by
    repeated :func:`choose_next_literal` picks.

    ``lead`` forces one body index to run first (semi-naive engines put
    the delta literal up front -- it is by far the smallest source).
    Returns body indexes in evaluation order.
    """
    bound = set(initial_bound)
    remaining = list(literals)
    order: List[int] = []
    if lead is not None:
        for entry in remaining:
            if entry[0] == lead:
                order.append(entry[0])
                bound |= entry[1].variables()
                remaining.remove(entry)
                break
    while remaining:
        body_index, literal = choose_next_literal(remaining, bound, stats)
        order.append(body_index)
        bound |= literal.variables()
        remaining.remove((body_index, literal))
    return order


def swap_recursive_to_left(rule: Rule, recursive_pred: str) -> Rule:
    """Make the recursive literal come first (left-recursive form) --
    the TD orientation of Section 5.1.2."""
    literals = list(rule.body_literals)
    positions = [i for i, lit in enumerate(literals)
                 if lit.pred == recursive_pred]
    if not positions:
        return rule
    order = positions + [i for i in range(len(literals))
                         if i not in positions]
    return reorder_body(rule, order)


def swap_recursive_to_right(rule: Rule, recursive_pred: str) -> Rule:
    """Make the recursive literal come last (right-recursive form) --
    the BU orientation."""
    literals = list(rule.body_literals)
    positions = [i for i, lit in enumerate(literals)
                 if lit.pred == recursive_pred]
    if not positions:
        return rule
    order = [i for i in range(len(literals)) if i not in positions] + positions
    return reorder_body(rule, order)


def reorder_program(program: Program, recursive_pred: str, to_left: bool) -> Program:
    """Flip every rule of ``recursive_pred`` between the orientations."""
    swap = swap_recursive_to_left if to_left else swap_recursive_to_right
    rules = [
        swap(rule, recursive_pred) if rule.head.pred == recursive_pred else rule
        for rule in program.rules
    ]
    return Program(
        rules=rules,
        facts=list(program.facts),
        materializations=dict(program.materializations),
        query=program.query,
        name=program.name,
    )

"""Predicate reordering (Section 5.1.2).

"Interestingly, switching the search strategy can be done simply by
reordering the path and #link predicates.  This has the effect of
turning SP2 from a right-recursive to a left-recursive rule."

Reordering never changes Datalog semantics (body conjuncts commute); in
the distributed setting it flips which endpoint initiates propagation --
Bottom-Up (paths flow backwards from destinations) versus Top-Down
(paths flow forward from sources, resembling dynamic source routing).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from repro.errors import PlanError
from repro.ndlog.ast import Assignment, Condition, Literal, Program, Rule


def reorder_body(rule: Rule, literal_order: Sequence[int]) -> Rule:
    """Permute the rule's body *literals* into ``literal_order`` (indexes
    into the current literal sequence).  Assignments and conditions are
    re-placed greedily at the earliest point where their inputs are
    bound, preserving left-to-right evaluability."""
    literals = list(rule.body_literals)
    if sorted(literal_order) != list(range(len(literals))):
        raise PlanError(f"bad literal order {literal_order!r}")
    ordered = [literals[i] for i in literal_order]
    rest = [item for item in rule.body if not isinstance(item, Literal)]

    body: List[object] = []
    bound: set = set()
    pending = list(rest)
    for literal in ordered:
        body.append(literal)
        bound |= literal.variables()
        placed = []
        for item in pending:
            if isinstance(item, Assignment):
                if item.expr.variables() <= bound:
                    body.append(item)
                    bound.add(item.var.name)
                    placed.append(item)
            elif isinstance(item, Condition):
                if item.variables() <= bound:
                    body.append(item)
                    placed.append(item)
        for item in placed:
            pending.remove(item)
    if pending:
        body.extend(pending)  # uninstantiable items keep original order
    return replace(rule, body=tuple(body))


def swap_recursive_to_left(rule: Rule, recursive_pred: str) -> Rule:
    """Make the recursive literal come first (left-recursive form) --
    the TD orientation of Section 5.1.2."""
    literals = list(rule.body_literals)
    positions = [i for i, lit in enumerate(literals)
                 if lit.pred == recursive_pred]
    if not positions:
        return rule
    order = positions + [i for i in range(len(literals))
                         if i not in positions]
    return reorder_body(rule, order)


def swap_recursive_to_right(rule: Rule, recursive_pred: str) -> Rule:
    """Make the recursive literal come last (right-recursive form) --
    the BU orientation."""
    literals = list(rule.body_literals)
    positions = [i for i, lit in enumerate(literals)
                 if lit.pred == recursive_pred]
    if not positions:
        return rule
    order = [i for i in range(len(literals)) if i not in positions] + positions
    return reorder_body(rule, order)


def reorder_program(program: Program, recursive_pred: str, to_left: bool) -> Program:
    """Flip every rule of ``recursive_pred`` between the orientations."""
    swap = swap_recursive_to_left if to_left else swap_recursive_to_right
    rules = [
        swap(rule, recursive_pred) if rule.head.pred == recursive_pred else rule
        for rule in program.rules
    ]
    return Program(
        rules=rules,
        facts=list(program.facts),
        materializations=dict(program.materializations),
        query=program.query,
        name=program.name,
    )

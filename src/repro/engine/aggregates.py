"""Incremental maintenance of aggregate rules (``min<>``, ``max<>``,
``count<>``, ``sum<>``, ``avg<>``).

Section 3.3.2 of the paper: "we utilize incremental fixpoint evaluation
techniques [27] that are amenable to pipelined query processing.  These
techniques can compute monotonic aggregates such as min, max and count
incrementally based on the current aggregate and each new input tuple."
Section 4 adds deletions: "the re-evaluation cost for min and max
aggregates are shown to be O(log n) time and O(n) space".

Semantics: the aggregate ranges over the *set* of distinct values derived
per group (set semantics, as everywhere in Datalog); duplicate
derivations of the same value are tracked with multiplicity counts so
that retractions only remove a value when its last derivation goes away.
Contributions arrive as Z-set entries -- an integer weight per tuple
(``+w`` adds ``w`` derivations, ``-w`` withdraws them), matching the
engines' weighted delta representation.
``count<*>`` counts derivations (multiplicity included), matching its use
as a derivation counter.

min/max retraction is the O(log n) structure of [27]: each group keeps a
heap with *lazy deletion* -- retractions never touch the heap, and
reads pop stale entries off the top until a live value surfaces.  The
same structure backs :class:`ArgExtremeView`'s witness promotion, with a
total-order tie-break key (:func:`order_key`) making the promoted
witness deterministic for values whose natural ordering admits ties.

Both views also expose :meth:`apply_many`, the batched entry point used
by the engines' micro-batched commit path (``batch_size > 1``): a chunk
of contributions is applied in order and only the *net* change to each
emitted head is returned, so a burst that moves a group's value several
times costs one retraction and one insertion downstream instead of a
churn of intermediate pairs.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.engine.rules import AggregateInfo
from repro.ndlog.terms import ConstructedTuple

#: Rebuild a lazy-deletion heap when stale entries outnumber live ones
#: beyond this slack (bounds memory without amortized-cost cliffs).
_COMPACT_SLACK = 16


class _Rev:
    """Inverts the ordering of a wrapped key, turning heapq's min-heaps
    into max-heaps without assuming the values are negatable."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other) -> bool:
        return other.key < self.key

    def __eq__(self, other) -> bool:
        return other.key == self.key


def order_key(value):
    """A total-order key over the ground values NDlog tuples carry.

    Values of one type order naturally; across types, the type name
    decides (numbers are pooled so ``int`` and ``float`` compare
    numerically, as the engines' raw comparisons do).  Tuples and
    constructed tuples recurse, so path vectors with heterogeneous
    elements still get a stable, order-consistent key -- unlike the
    ``repr``-based tie-break this replaces, which broke for any type
    whose repr is not order-consistent with its values.  Types with no
    natural order at all fall back to their repr: for those any
    deterministic total order is as good as another, and the key must
    never raise mid-heap-push.
    """
    if isinstance(value, tuple):
        return ("tuple", tuple(order_key(v) for v in value))
    if isinstance(value, ConstructedTuple):
        return ("tuple:" + value.pred,
                tuple(order_key(v) for v in value.values))
    if isinstance(value, (int, float)):
        # bool included: raw comparisons treat True as 1, and the heap
        # order must agree with ArgExtremeView._better's raw ordering.
        return ("", value)
    if isinstance(value, (str, bytes)):
        return (type(value).__name__, value)
    return (type(value).__name__, repr(value))


class GroupState:
    """The multiset of values currently derived for one group.

    ``distinct`` controls ``count`` semantics: ``count<Var>`` counts
    distinct values (set semantics), ``count<*>`` counts derivations.

    For ``min``/``max`` the distinct values are mirrored into a heap
    with lazy deletion: :meth:`add` pushes a value the first time it
    becomes live, :meth:`remove` leaves the heap untouched, and
    :meth:`current` pops dead entries off the top until the best live
    value surfaces -- O(log n) amortized per change.
    """

    __slots__ = ("func", "values", "total_multiplicity", "distinct", "_heap")

    def __init__(self, func: str, distinct: bool = False):
        self.func = func
        self.distinct = distinct
        self.values: Dict[object, int] = {}
        self.total_multiplicity = 0
        self._heap: Optional[List] = [] if func in ("min", "max") else None

    def add(self, value, count: int = 1) -> None:
        """Add ``count`` derivations of ``value`` (one weighted entry)."""
        current = self.values.get(value, 0)
        self.values[value] = current + count
        self.total_multiplicity += count
        if current == 0 and self._heap is not None:
            # Every live value keeps at least one heap entry; re-added
            # values are re-pushed (the stale twin is harmless -- it
            # reads as live for as long as the value is).
            entry = value if self.func == "min" else _Rev(value)
            heapq.heappush(self._heap, entry)

    def remove(self, value, count: int = 1) -> None:
        """Withdraw ``count`` derivations of ``value``."""
        current = self.values.get(value, 0)
        if current < count:
            raise EvaluationError(
                f"retracting {count} derivation(s) of value {value!r}; "
                f"aggregate group holds {current}"
            )
        if current == count:
            del self.values[value]
            # Lazy deletion: the heap entry stays until a read pops it.
            heap = self._heap
            if heap is not None and len(heap) > 2 * len(self.values) + _COMPACT_SLACK:
                self._rebuild_heap()
        else:
            self.values[value] = current - count
        self.total_multiplicity -= count

    def _rebuild_heap(self) -> None:
        if self.func == "min":
            self._heap = list(self.values)
        else:
            self._heap = [_Rev(v) for v in self.values]
        heapq.heapify(self._heap)

    def _peek_extreme(self):
        heap = self._heap
        values = self.values
        while heap:
            top = heap[0]
            value = top if self.func == "min" else top.key
            if value in values:
                return value
            heapq.heappop(heap)
        # Defensive: the push discipline guarantees a live entry exists.
        self._rebuild_heap()
        top = self._heap[0]
        return top if self.func == "min" else top.key

    def current(self):
        """The aggregate value, or ``None`` for an empty group."""
        if not self.values:
            return None
        if self.func in ("min", "max"):
            return self._peek_extreme()
        if self.func == "count":
            return len(self.values) if self.distinct else self.total_multiplicity
        if self.func == "sum":
            return sum(self.values)
        if self.func == "avg":
            return sum(self.values) / len(self.values)
        raise EvaluationError(f"unknown aggregate function {self.func!r}")


class AggregateView:
    """Maintains one aggregate head relation incrementally.

    ``apply`` takes a *contribution* (the head tuple with the aggregate
    position holding the input value) and an integer weight (``+w``
    derivations added, ``-w`` withdrawn), updates the group, and
    returns the visible deltas on the aggregate relation:
    ``[(-1, old_head), (+1, new_head)]`` when the group's value changes.
    """

    def __init__(self, pred: str, info: AggregateInfo):
        self.pred = pred
        self.info = info
        self.groups: Dict[Tuple, GroupState] = {}
        #: Cumulative group-value transitions emitted (pre-netting) --
        #: a plain int bump per change, pulled into metrics snapshots
        #: as the view-churn counter.
        self.changes = 0

    def apply(self, contribution: Tuple, weight: int) -> List[Tuple[int, Tuple]]:
        info = self.info
        group_key = tuple(contribution[i] for i in info.group_positions)
        value = contribution[info.value_position]
        state = self.groups.get(group_key)
        if state is None:
            state = GroupState(info.func, distinct=bool(info.var))
            self.groups[group_key] = state
        old = state.current()
        if weight > 0:
            state.add(value, weight)
        else:
            state.remove(value, -weight)
        new = state.current()
        if not state.values:
            del self.groups[group_key]
        if old == new:
            return []
        deltas: List[Tuple[int, Tuple]] = []
        if old is not None:
            deltas.append((-1, self._head(group_key, old)))
        if new is not None:
            deltas.append((1, self._head(group_key, new)))
        self.changes += len(deltas)
        return deltas

    def apply_many(
        self, contributions: Iterable[Tuple], weight: int
    ) -> List[Tuple[int, Tuple]]:
        """Apply a chunk of uniformly weighted contributions in order
        and return the *net* deltas: a group whose value moves
        ``5 -> 3 -> 2`` within the chunk emits ``(-1, head(5)),
        (+1, head(2))`` with no trace of the intermediate ``3``."""
        return _net_deltas(self.apply, contributions, weight)

    def _head(self, group_key: Tuple, value) -> Tuple:
        info = self.info
        head: List[object] = [None] * (len(group_key) + 1)
        for position, group_value in zip(info.group_positions, group_key):
            head[position] = group_value
        head[info.value_position] = value
        return tuple(head)

    def current_rows(self) -> List[Tuple]:
        """All current aggregate facts (for from-scratch comparisons)."""
        return [
            self._head(group_key, state.current())
            for group_key, state in self.groups.items()
        ]


def _net_deltas(apply, contributions, weight) -> List[Tuple[int, Tuple]]:
    """Run ``apply`` per contribution and collapse the emitted deltas to
    their per-head net weight (first-seen head order, zeros dropped) --
    Z-set addition over the view's output."""
    net: Dict[Tuple, int] = {}
    order: List[Tuple] = []
    for contribution in contributions:
        for delta_weight, head in apply(contribution, weight):
            if head not in net:
                net[head] = 0
                order.append(head)
            net[head] += delta_weight
    return [(net[head], head) for head in order if net[head] != 0]


class ArgExtremeView:
    """Maintains one *witness tuple* per group: the tuple achieving the
    group's min (or max) value.

    This is the propagation side of aggregate selections (Section
    5.1.1): "each node only needs to propagate the most current shortest
    paths for each destination ... whenever a shorter path is derived".
    Ties deliberately keep the incumbent witness -- a same-cost
    alternative is *not* an improvement, so advertising it would only
    churn the network (the dominant cost on hop-count metrics, where
    ties abound).

    When the witness dies, the best survivor is promoted off a per-group
    heap with lazy deletion (O(log n), the structure of [27]) rather
    than an O(n) member rescan; ties on the value promote the tuple that
    is least under :func:`order_key`, a deterministic total order.
    """

    def __init__(self, pred: str, group_positions: Tuple[int, ...],
                 value_position: int, func: str = "min"):
        if func not in ("min", "max"):
            raise EvaluationError(f"argmin/argmax only: {func!r}")
        self.pred = pred
        self.group_positions = group_positions
        self.value_position = value_position
        self.func = func
        #: group -> {tuple: multiplicity}
        self.members: Dict[Tuple, Dict[Tuple, int]] = {}
        #: group -> current witness tuple
        self.winners: Dict[Tuple, Tuple] = {}
        #: group -> lazy-deletion heap of (value key, tie-break key, tuple)
        self._heaps: Dict[Tuple, List] = {}
        #: Cumulative witness transitions emitted (pre-netting); see
        #: :class:`AggregateView.changes`.
        self.changes = 0

    def _group_of(self, args: Tuple) -> Tuple:
        return tuple(args[i] for i in self.group_positions)

    def _better(self, a, b) -> bool:
        return a < b if self.func == "min" else a > b

    def _entry(self, args: Tuple) -> Tuple:
        value_key = order_key(args[self.value_position])
        if self.func == "max":
            value_key = _Rev(value_key)
        return (value_key, order_key(args), args)

    def apply(self, args: Tuple, weight: int) -> List[Tuple[int, Tuple]]:
        group = self._group_of(args)
        members = self.members.setdefault(group, {})
        value = args[self.value_position]
        winner = self.winners.get(group)
        if weight > 0:
            count = members.get(args, 0)
            members[args] = count + weight
            if count == 0:
                heapq.heappush(
                    self._heaps.setdefault(group, []), self._entry(args)
                )
            if winner is None:
                self.winners[group] = args
                self.changes += 1
                return [(1, args)]
            if self._better(value, winner[self.value_position]):
                self.winners[group] = args
                self.changes += 2
                return [(-1, winner), (1, args)]
            return []
        # Retraction of ``-weight`` derivations.
        drop = -weight
        current = members.get(args, 0)
        if current < drop:
            raise EvaluationError(
                f"retracting {drop} derivation(s) of tuple {args!r}; "
                f"arg-{self.func} group holds {current}"
            )
        if current == drop:
            del members[args]
            # Any member death strands a heap entry; compact here, not
            # just on witness death -- non-winning alternatives that
            # flap under churn would otherwise grow the heap unboundedly.
            heap = self._heaps.get(group)
            if (heap is not None and members
                    and len(heap) > 2 * len(members) + _COMPACT_SLACK):
                rebuilt = [self._entry(member) for member in members]
                heapq.heapify(rebuilt)
                self._heaps[group] = rebuilt
        else:
            members[args] = current - drop
        if args != winner or args in members:
            return []
        # The witness died: promote the best survivor off the heap.
        if not members:
            del self.members[group]
            del self.winners[group]
            self._heaps.pop(group, None)
            self.changes += 1
            return [(-1, args)]
        heap = self._heaps[group]
        while heap[0][2] not in members:
            heapq.heappop(heap)
        best = heap[0][2]
        if len(heap) > 2 * len(members) + _COMPACT_SLACK:
            rebuilt = [self._entry(member) for member in members]
            heapq.heapify(rebuilt)
            self._heaps[group] = rebuilt
        self.winners[group] = best
        self.changes += 2
        return [(-1, args), (1, best)]

    def apply_many(
        self, contributions: Iterable[Tuple], weight: int
    ) -> List[Tuple[int, Tuple]]:
        """Batched :meth:`apply`: contributions are applied in order and
        the emitted witness changes are collapsed to their net -- a
        witness displaced and re-promoted within one chunk produces no
        downstream deltas at all."""
        return _net_deltas(self.apply, contributions, weight)

    def current_rows(self) -> List[Tuple]:
        return list(self.winners.values())

"""Incremental maintenance of aggregate rules (``min<>``, ``max<>``,
``count<>``, ``sum<>``, ``avg<>``).

Section 3.3.2 of the paper: "we utilize incremental fixpoint evaluation
techniques [27] that are amenable to pipelined query processing.  These
techniques can compute monotonic aggregates such as min, max and count
incrementally based on the current aggregate and each new input tuple."
Section 4 adds deletions: "the re-evaluation cost for min and max
aggregates are shown to be O(log n) time and O(n) space".

Semantics: the aggregate ranges over the *set* of distinct values derived
per group (set semantics, as everywhere in Datalog); duplicate
derivations of the same value are tracked with multiplicity counts so
that retractions only remove a value when its last derivation goes away.
``count<*>`` counts derivations (multiplicity included), matching its use
as a derivation counter.

The implementation recomputes min/max in O(n) on retraction of the
current best; the O(log n) structure of [27] is a straightforward swap
(a heap with lazy deletion) that would not change any observable
behaviour, so we keep the simpler form.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.engine.rules import AggregateInfo


class GroupState:
    """The multiset of values currently derived for one group.

    ``distinct`` controls ``count`` semantics: ``count<Var>`` counts
    distinct values (set semantics), ``count<*>`` counts derivations.
    """

    __slots__ = ("func", "values", "total_multiplicity", "distinct")

    def __init__(self, func: str, distinct: bool = False):
        self.func = func
        self.distinct = distinct
        self.values: Dict[object, int] = {}
        self.total_multiplicity = 0

    def add(self, value) -> None:
        self.values[value] = self.values.get(value, 0) + 1
        self.total_multiplicity += 1

    def remove(self, value) -> None:
        current = self.values.get(value, 0)
        if current <= 0:
            raise EvaluationError(
                f"retracting value {value!r} never added to aggregate group"
            )
        if current == 1:
            del self.values[value]
        else:
            self.values[value] = current - 1
        self.total_multiplicity -= 1

    def current(self):
        """The aggregate value, or ``None`` for an empty group."""
        if not self.values:
            return None
        if self.func == "min":
            return min(self.values)
        if self.func == "max":
            return max(self.values)
        if self.func == "count":
            return len(self.values) if self.distinct else self.total_multiplicity
        if self.func == "sum":
            return sum(self.values)
        if self.func == "avg":
            return sum(self.values) / len(self.values)
        raise EvaluationError(f"unknown aggregate function {self.func!r}")


class AggregateView:
    """Maintains one aggregate head relation incrementally.

    ``apply`` takes a *contribution* (the head tuple with the aggregate
    position holding the input value) and a sign, updates the group, and
    returns the visible deltas on the aggregate relation:
    ``[(-1, old_head), (+1, new_head)]`` when the group's value changes.
    """

    def __init__(self, pred: str, info: AggregateInfo):
        self.pred = pred
        self.info = info
        self.groups: Dict[Tuple, GroupState] = {}

    def apply(self, contribution: Tuple, sign: int) -> List[Tuple[int, Tuple]]:
        info = self.info
        group_key = tuple(contribution[i] for i in info.group_positions)
        value = contribution[info.value_position]
        state = self.groups.get(group_key)
        if state is None:
            state = GroupState(info.func, distinct=bool(info.var))
            self.groups[group_key] = state
        old = state.current()
        if sign > 0:
            state.add(value)
        else:
            state.remove(value)
        new = state.current()
        if not state.values:
            del self.groups[group_key]
        if old == new:
            return []
        deltas: List[Tuple[int, Tuple]] = []
        if old is not None:
            deltas.append((-1, self._head(group_key, old)))
        if new is not None:
            deltas.append((1, self._head(group_key, new)))
        return deltas

    def _head(self, group_key: Tuple, value) -> Tuple:
        info = self.info
        head: List[object] = [None] * (len(group_key) + 1)
        for position, group_value in zip(info.group_positions, group_key):
            head[position] = group_value
        head[info.value_position] = value
        return tuple(head)

    def current_rows(self) -> List[Tuple]:
        """All current aggregate facts (for from-scratch comparisons)."""
        return [
            self._head(group_key, state.current())
            for group_key, state in self.groups.items()
        ]


class ArgExtremeView:
    """Maintains one *witness tuple* per group: the tuple achieving the
    group's min (or max) value.

    This is the propagation side of aggregate selections (Section
    5.1.1): "each node only needs to propagate the most current shortest
    paths for each destination ... whenever a shorter path is derived".
    Ties deliberately keep the incumbent witness -- a same-cost
    alternative is *not* an improvement, so advertising it would only
    churn the network (the dominant cost on hop-count metrics, where
    ties abound).
    """

    def __init__(self, pred: str, group_positions: Tuple[int, ...],
                 value_position: int, func: str = "min"):
        if func not in ("min", "max"):
            raise EvaluationError(f"argmin/argmax only: {func!r}")
        self.pred = pred
        self.group_positions = group_positions
        self.value_position = value_position
        self.func = func
        #: group -> {tuple: multiplicity}
        self.members: Dict[Tuple, Dict[Tuple, int]] = {}
        #: group -> current witness tuple
        self.winners: Dict[Tuple, Tuple] = {}

    def _group_of(self, args: Tuple) -> Tuple:
        return tuple(args[i] for i in self.group_positions)

    def _better(self, a, b) -> bool:
        return a < b if self.func == "min" else a > b

    def apply(self, args: Tuple, sign: int) -> List[Tuple[int, Tuple]]:
        group = self._group_of(args)
        members = self.members.setdefault(group, {})
        value = args[self.value_position]
        winner = self.winners.get(group)
        if sign > 0:
            members[args] = members.get(args, 0) + 1
            if winner is None:
                self.winners[group] = args
                return [(1, args)]
            if self._better(value, winner[self.value_position]):
                self.winners[group] = args
                return [(-1, winner), (1, args)]
            return []
        # Retraction.
        current = members.get(args, 0)
        if current <= 0:
            raise EvaluationError(
                f"retracting tuple {args!r} never added to arg-{self.func}"
            )
        if current == 1:
            del members[args]
        else:
            members[args] = current - 1
        if args != winner or args in members:
            return []
        # The witness died: promote the best survivor (deterministic pick).
        if not members:
            del self.members[group]
            del self.winners[group]
            return [(-1, args)]
        best = None
        for candidate in members:
            if best is None:
                best = candidate
                continue
            cand_value = candidate[self.value_position]
            best_value = best[self.value_position]
            if self._better(cand_value, best_value) or (
                cand_value == best_value and repr(candidate) < repr(best)
            ):
                best = candidate
        self.winners[group] = best
        return [(-1, args), (1, best)]

    def current_rows(self) -> List[Tuple]:
        return list(self.winners.values())

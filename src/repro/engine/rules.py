"""Rule compilation and the join evaluators shared by every engine.

Two evaluation paths live here:

* :func:`solve` -- the original interpreter.  A rule body is evaluated
  left to right (the paper notes implementations "typically employ a
  left-to-right execution strategy"); each literal is matched against a
  *source* -- a full table, a snapshot set, or a single driving fact --
  re-deriving the bound positions from the body AST on every call and
  re-unifying every argument of every candidate tuple.  Kept as the
  reference implementation (``use_plans=False`` in the engines) and as
  the baseline for ``benchmarks/bench_join_plans.py``.

* :func:`compile_plan` / :func:`execute_plan` -- the compile-once join
  plans used by all engines by default.  For each rule (optionally
  relative to a *driving* literal, i.e. one strand of Figures 3/5 of
  the paper) the compiler chooses a literal order (bound-ness first,
  then estimated selectivity -- Sections 5.1.2/5.3, via
  :mod:`repro.planner.reorder` and :class:`repro.opt.costbased.StatsCatalog`)
  and precomputes per-literal static metadata:

  - which argument positions feed the hash-index lookup (constants,
    variables bound by the left-to-right prefix, and expressions whose
    inputs the prefix binds);
  - which positions bind new variables (and where a variable repeats
    *within* the literal, reducing unification to a positional equality
    check on the candidate tuple);
  - which embedded expressions must be checked per candidate.

  Executing a plan therefore does no per-tuple AST introspection: the
  index lookup eliminates the bound positions entirely and only the
  genuinely unbound positions are touched per candidate.

``ts_limit`` implements PSN's timestamp discipline: when given, a literal
only matches facts whose insertion timestamp is ``<= ts_limit``, so each
joint derivation fires exactly once, when its youngest participant is
processed (Theorem 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.facts import Fact
from repro.errors import EvaluationError, PlanError
from repro.ndlog.ast import Assignment, Condition, Literal, Rule
from repro.ndlog.terms import (
    AggregateSpec,
    Constant,
    Term,
    Variable,
    compile_term,
    evaluate,
)
from repro.planner.reorder import choose_next_literal


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class SetSource:
    """A source over a plain set of tuples (used for SN's old/delta sets).

    Builds per-position indexes lazily; the set must not be mutated after
    construction.
    """

    def __init__(self, rows: Sequence[Tuple]):
        self._rows = list(rows)
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]] = {}

    def rows(self) -> Sequence[Tuple]:
        return self._rows

    def ts(self, args: Tuple) -> int:
        return -1

    def lookup(self, positions: Tuple[int, ...], values: Tuple):
        if not positions:
            return self._rows
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for args in self._rows:
                index.setdefault(
                    tuple(args[i] for i in positions), []
                ).append(args)
            self._indexes[positions] = index
        return index.get(values, ())


EMPTY_SOURCE = SetSource(())


# ----------------------------------------------------------------------
# Compiled rules
# ----------------------------------------------------------------------
@dataclass
class AggregateInfo:
    """Description of an aggregate rule head, e.g. ``spCost(@S,@D,min<C>)``.

    ``value_position`` is the aggregate's index in the head; ``group_positions``
    are the remaining head indexes (the GROUP BY key).
    """

    func: str
    var: str
    value_position: int
    group_positions: Tuple[int, ...]


class CompiledRule:
    """A rule pre-split into literals / assignments / conditions."""

    def __init__(self, rule: Rule):
        self.rule = rule
        self.head = rule.head
        self.body = tuple(rule.body)
        self.literal_indexes: Tuple[int, ...] = tuple(
            i for i, item in enumerate(self.body) if isinstance(item, Literal)
        )
        agg = rule.head_aggregate()
        if agg is None:
            self.aggregate: Optional[AggregateInfo] = None
        else:
            position, spec = agg
            self.aggregate = AggregateInfo(
                func=spec.func,
                var=spec.var,
                value_position=position,
                group_positions=tuple(
                    i for i in range(rule.head.arity) if i != position
                ),
            )
        #: (group_positions, value_position, func) witness annotation.
        self.argmin = rule.argmin
        self._head_getters: Optional[Tuple[Callable, ...]] = None
        self._body_getters = None
        self._label = rule.label or repr(rule.head)

    def head_getters(self) -> Tuple[Callable, ...]:
        """Compiled head template: one ``getter(bindings, functions)``
        per head position, built once per rule (used by the planned
        evaluation path instead of re-dispatching on term types per
        firing)."""
        if self._head_getters is None:
            getters: List[Callable] = []
            label = self.label
            for term in self.head.args:
                if isinstance(term, AggregateSpec):
                    if term.var:
                        def agg_getter(bindings, functions, _name=term.var,
                                       _label=label):
                            try:
                                return bindings[_name]
                            except KeyError:
                                raise EvaluationError(
                                    f"aggregate variable {_name!r} unbound",
                                    rule=_label,
                                ) from None
                        getters.append(agg_getter)
                    else:
                        getters.append(lambda bindings, functions: 1)
                elif isinstance(term, Constant):
                    getters.append(
                        lambda bindings, functions, _v=term.value: _v
                    )
                elif isinstance(term, Variable):
                    getters.append(
                        lambda bindings, functions, _n=term.name: bindings[_n]
                    )
                else:
                    getters.append(compile_term(term))
            self._head_getters = tuple(getters)
        return self._head_getters

    def instantiate(self, bindings: Dict[str, object],
                    functions: Dict[str, Callable]) -> Tuple:
        """Ground the head via the compiled template (see
        :func:`instantiate_head` for the interpreted equivalent)."""
        getters = self._head_getters
        if getters is None:
            getters = self.head_getters()
        return tuple([g(bindings, functions) for g in getters])

    def ground_body(self, bindings: Dict[str, object],
                    functions: Dict[str, Callable]):
        """Ground every body literal under a full solution's bindings.

        The provenance capture seam shared by all four engines: a
        solution yielded by :func:`solve` / :func:`execute_plan` binds
        every body-literal variable, so the participating facts can be
        re-derived from the bindings after the fact -- the join
        executors themselves stay capture-free (and cost nothing when
        provenance is off).  Per-literal argument getters are compiled
        once, lazily, on first capture.
        """
        getters = self._body_getters
        if getters is None:
            compiled = []
            for index in self.literal_indexes:
                literal = self.body[index]
                arg_getters: List[Callable] = []
                for term in literal.args:
                    if isinstance(term, Constant):
                        arg_getters.append(
                            lambda bindings, functions, _v=term.value: _v
                        )
                    elif isinstance(term, Variable):
                        arg_getters.append(
                            lambda bindings, functions, _n=term.name:
                            bindings[_n]
                        )
                    else:
                        arg_getters.append(compile_term(term))
                compiled.append((literal.pred, tuple(arg_getters)))
            getters = self._body_getters = tuple(compiled)
        return tuple(
            Fact(pred, tuple(g(bindings, functions) for g in arg_getters))
            for pred, arg_getters in getters
        )

    @property
    def label(self) -> str:
        return self._label

    def body_preds(self) -> Tuple[str, ...]:
        return tuple(self.body[i].pred for i in self.literal_indexes)

    def __repr__(self) -> str:
        return f"CompiledRule({self.rule!r})"


# ----------------------------------------------------------------------
# Unification and lookup
# ----------------------------------------------------------------------
def unify_literal(
    literal: Literal,
    fact_args: Tuple,
    bindings: Dict[str, object],
    functions: Dict[str, Callable],
) -> Optional[Dict[str, object]]:
    """Match ``literal`` against ``fact_args`` under ``bindings``.

    Returns the extended bindings, or ``None`` on mismatch.
    """
    if len(literal.args) != len(fact_args):
        return None
    new: Optional[Dict[str, object]] = None
    current = bindings
    for term, value in zip(literal.args, fact_args):
        if isinstance(term, Variable):
            bound = current.get(term.name, _MISSING)
            if bound is _MISSING:
                if new is None:
                    new = dict(bindings)
                    current = new
                new[term.name] = value
            elif bound != value:
                return None
        elif isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            # Complex term: must be evaluable under current bindings.
            if evaluate(term, current, functions) != value:
                return None
    return new if new is not None else dict(bindings)


_MISSING = object()


def _literal_candidates(
    literal: Literal,
    source,
    bindings: Dict[str, object],
    functions: Dict[str, Callable],
):
    """Candidate facts for ``literal``: an indexed lookup on the positions
    bound under ``bindings`` (falling back to a scan when nothing is
    bound)."""
    positions: List[int] = []
    values: List[object] = []
    for index, term in enumerate(literal.args):
        if isinstance(term, Constant):
            positions.append(index)
            values.append(term.value)
        elif isinstance(term, Variable):
            bound = bindings.get(term.name, _MISSING)
            if bound is not _MISSING:
                positions.append(index)
                values.append(bound)
        else:
            names = term.variables()
            if all(name in bindings for name in names):
                positions.append(index)
                values.append(evaluate(term, bindings, functions))
    if not positions:
        return source.rows()
    return source.lookup(tuple(positions), tuple(values))


def solve(
    crule: CompiledRule,
    sources: Dict[int, object],
    functions: Dict[str, Callable],
    bindings: Optional[Dict[str, object]] = None,
    skip_index: Optional[int] = None,
    skip_fact=None,
    ts_limit: Optional[int] = None,
) -> Iterator[Dict[str, object]]:
    """Yield every satisfying assignment of the rule body.

    ``sources`` maps body-item index -> source for each literal;
    ``skip_index`` marks the driving literal already consumed (its
    bindings must be in ``bindings``).

    ``skip_fact`` (the driving fact) implements the self-join discipline
    of the paper's footnote-2 delta form: literal positions *before* the
    driving position exclude the driving fact itself, so a derivation in
    which the same tuple fills several positions fires exactly once --
    when the strand for its first position runs (Theorem 2).

    ``ts_limit`` additionally restricts every literal to facts with
    timestamp ``<= ts_limit`` (unused by the commit-at-processing PSN
    engine, where table state already equals the correct prefix, but
    available for timestamp-explicit execution).
    """
    state = bindings or {}
    return _solve_from(crule, 0, state, sources, functions, skip_index,
                       skip_fact, ts_limit)


def _solve_from(
    crule: CompiledRule,
    item_index: int,
    bindings: Dict[str, object],
    sources: Dict[int, object],
    functions: Dict[str, Callable],
    skip_index: Optional[int],
    skip_fact,
    ts_limit: Optional[int],
) -> Iterator[Dict[str, object]]:
    if item_index == len(crule.body):
        yield bindings
        return
    item = crule.body[item_index]

    if item_index == skip_index:
        yield from _solve_from(crule, item_index + 1, bindings, sources,
                               functions, skip_index, skip_fact, ts_limit)
        return

    if isinstance(item, Literal):
        source = sources.get(item_index, EMPTY_SOURCE)
        exclude = None
        if (
            skip_fact is not None
            and skip_index is not None
            and item_index < skip_index
            and item.pred == skip_fact.pred
        ):
            exclude = skip_fact.args
        for fact_args in _literal_candidates(item, source, bindings, functions):
            if fact_args == exclude:
                continue
            if ts_limit is not None and source.ts(fact_args) > ts_limit:
                continue
            extended = unify_literal(item, fact_args, bindings, functions)
            if extended is None:
                continue
            yield from _solve_from(crule, item_index + 1, extended, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        return

    if isinstance(item, Assignment):
        value = evaluate(item.expr, bindings, functions)
        name = item.var.name
        bound = bindings.get(name, _MISSING)
        if bound is _MISSING:
            extended = dict(bindings)
            extended[name] = value
            yield from _solve_from(crule, item_index + 1, extended, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        elif bound == value:
            yield from _solve_from(crule, item_index + 1, bindings, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        return

    if isinstance(item, Condition):
        if evaluate(item.expr, bindings, functions):
            yield from _solve_from(crule, item_index + 1, bindings, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        return

    raise PlanError(f"unsupported body item {item!r}")


# ----------------------------------------------------------------------
# Compiled join plans
# ----------------------------------------------------------------------
#: Getter kinds for index-lookup positions.
_CONST, _VAR, _EXPR = 0, 1, 2


class LiteralStep:
    """Static matching metadata for one body literal at its position in
    a compiled plan.

    Given the set of variables bound by the evaluation prefix, every
    argument position is classified once, at compile time:

    * ``positions`` / ``getters`` -- positions consumed by the hash
      index lookup: constants, prefix-bound variables, and expressions
      whose inputs are prefix-bound.  ``static_values`` caches the value
      tuple when it is all constants.
    * ``bind_specs`` -- positions whose (first-occurrence) variable is
      bound from the candidate tuple.
    * ``dup_checks`` -- ``(pos, first_pos)`` pairs for a variable
      repeated within the literal: candidate tuples must agree on the
      two positions (a pure positional comparison, no unification).
    * ``residual_exprs`` -- embedded expressions whose inputs include
      variables this literal itself binds; checked per candidate after
      binding.

    ``exclude_driver`` marks literals that precede the driving literal
    in the original body of a strand and share its predicate: the
    paper's footnote-2 delta form excludes the driving fact there so a
    self-join derivation fires exactly once (Theorem 2).
    """

    __slots__ = (
        "literal", "body_index", "arity", "positions", "getters",
        "static_values", "bind_specs", "dup_checks", "residual_exprs",
        "exclude_driver", "values_fn", "fast_bind",
    )

    def __init__(self, literal: Literal, body_index: int, bound,
                 exclude_driver: bool = False):
        self.literal = literal
        self.body_index = body_index
        self.arity = len(literal.args)
        self.exclude_driver = exclude_driver
        lookups: List[Tuple[int, int, object]] = []
        bind_specs: List[Tuple[int, str]] = []
        dup_checks: List[Tuple[int, int]] = []
        residual: List[Tuple[int, Term]] = []
        first_local: Dict[str, int] = {}
        for pos, term in enumerate(literal.args):
            if isinstance(term, Constant):
                lookups.append((pos, _CONST, term.value))
            elif isinstance(term, Variable):
                name = term.name
                if name in bound:
                    lookups.append((pos, _VAR, name))
                elif name in first_local:
                    dup_checks.append((pos, first_local[name]))
                else:
                    first_local[name] = pos
                    bind_specs.append((pos, name))
            else:
                # Embedded expressions are compiled to closures here, so
                # the hot loops below never re-dispatch on term types.
                if term.variables() <= bound:
                    lookups.append((pos, _EXPR, compile_term(term)))
                else:
                    residual.append((pos, compile_term(term)))
        self.positions = tuple(pos for pos, _kind, _payload in lookups)
        self.getters = tuple((kind, payload) for _pos, kind, payload in lookups)
        if all(kind == _CONST for kind, _payload in self.getters):
            self.static_values: Optional[Tuple] = tuple(
                payload for _kind, payload in self.getters
            )
        else:
            self.static_values = None
        self.bind_specs = tuple(bind_specs)
        self.dup_checks = tuple(dup_checks)
        self.residual_exprs = tuple(residual)
        self.values_fn = self._compile_values_fn()
        #: Fast-path unification for the common driver shape (every
        #: position a distinct fresh variable): just zip names to args.
        if (not self.positions and not self.dup_checks
                and not self.residual_exprs
                and len(self.bind_specs) == self.arity):
            self.fast_bind: Optional[Tuple[str, ...]] = tuple(
                name for _pos, name in self.bind_specs
            )
        else:
            self.fast_bind = None

    def _compile_values_fn(self) -> Callable:
        """Specialized lookup-value constructors for the common getter
        shapes, compiled once per step."""
        if self.static_values is not None:
            static = self.static_values
            return lambda bindings, functions: static
        if all(kind == _VAR for kind, _payload in self.getters):
            names = tuple(payload for _kind, payload in self.getters)
            if len(names) == 1:
                name = names[0]
                return lambda bindings, functions: (bindings[name],)
            return lambda bindings, functions: tuple(
                [bindings[n] for n in names]
            )
        return self.lookup_values

    def new_vars(self) -> frozenset:
        return frozenset(name for _pos, name in self.bind_specs)

    def lookup_values(
        self, bindings: Dict[str, object], functions: Dict[str, Callable]
    ) -> Tuple:
        if self.static_values is not None:
            return self.static_values
        values: List[object] = []
        for kind, payload in self.getters:
            if kind == _CONST:
                values.append(payload)
            elif kind == _VAR:
                values.append(bindings[payload])
            else:
                values.append(payload(bindings, functions))
        return tuple(values)

    def match(
        self,
        fact_args: Tuple,
        bindings: Dict[str, object],
        functions: Dict[str, Callable],
    ) -> Optional[Dict[str, object]]:
        """Unify one tuple against this step (used to seed a strand from
        its driving fact).  Returns extended bindings or ``None``."""
        if len(fact_args) != self.arity:
            return None
        if self.fast_bind is not None and not bindings:
            return dict(zip(self.fast_bind, fact_args))
        for pos, (kind, payload) in zip(self.positions, self.getters):
            value = fact_args[pos]
            if kind == _CONST:
                if payload != value:
                    return None
            elif kind == _VAR:
                if bindings[payload] != value:
                    return None
            else:
                if payload(bindings, functions) != value:
                    return None
        for pos, first_pos in self.dup_checks:
            if fact_args[pos] != fact_args[first_pos]:
                return None
        new = dict(bindings)
        for pos, name in self.bind_specs:
            new[name] = fact_args[pos]
        for pos, expr_fn in self.residual_exprs:
            if expr_fn(new, functions) != fact_args[pos]:
                return None
        return new

    def __repr__(self) -> str:
        return (
            f"LiteralStep({self.literal!r}, lookup={self.positions}, "
            f"binds={[n for _p, n in self.bind_specs]})"
        )


class AssignStep:
    """Compiled ``var := expr`` body item (expression pre-compiled to a
    closure)."""

    __slots__ = ("name", "expr", "fn")

    def __init__(self, name: str, expr: Term):
        self.name = name
        self.expr = expr
        self.fn = compile_term(expr)

    def __repr__(self) -> str:
        return f"AssignStep({self.name} := {self.expr!r})"


class CondStep:
    """Compiled boolean condition body item (expression pre-compiled to
    a closure)."""

    __slots__ = ("expr", "fn")

    def __init__(self, expr: Term):
        self.expr = expr
        self.fn = compile_term(expr)

    def __repr__(self) -> str:
        return f"CondStep({self.expr!r})"


class JoinPlan:
    """A compiled evaluation order plus per-step metadata for one rule,
    optionally relative to a driving literal (one strand).

    ``order`` records the body indexes of the literals in evaluation
    order (driver excluded); ``steps`` interleaves
    :class:`LiteralStep`, :class:`AssignStep` and :class:`CondStep`.
    ``executor`` is the step chain compiled into nested generator
    closures -- evaluation never dispatches on step types at runtime.
    """

    __slots__ = ("crule", "driver_index", "order", "steps", "executor")

    def __init__(self, crule: CompiledRule, driver_index: Optional[int],
                 order: Tuple[int, ...], steps: Tuple):
        self.crule = crule
        self.driver_index = driver_index
        self.order = order
        self.steps = steps
        self.executor = _compile_executor(steps)

    def bind(self, sources: Dict[int, object]) -> Callable:
        """Compile an executor with ``sources`` pinned into the closures
        (PSN strands join against fixed tables, so the per-call source
        dict lookup -- and for tables even the index lookup method --
        can be resolved once, here).  The returned callable has the same
        signature as ``executor``; its ``sources`` argument is ignored.
        """
        return _compile_executor(self.steps, static_sources=sources)

    def literal_steps(self) -> List[LiteralStep]:
        return [s for s in self.steps if isinstance(s, LiteralStep)]

    def index_requests(self) -> List[Tuple[str, Tuple[int, ...]]]:
        """The ``(pred, positions)`` hash indexes this plan probes --
        pre-registered on the tables at engine construction so the
        first delta does not pay the index-build cost."""
        return [
            (step.literal.pred, step.positions)
            for step in self.literal_steps()
            if step.positions
        ]

    def __repr__(self) -> str:
        return (
            f"JoinPlan({self.crule.label}, driver={self.driver_index}, "
            f"order={self.order})"
        )


def compile_driver_step(crule: CompiledRule, driver_index: int) -> LiteralStep:
    """The matcher that seeds a strand's bindings from its driving fact
    (no prefix bound: constants check, variables bind positionally)."""
    return LiteralStep(crule.body[driver_index], driver_index, frozenset())


def compile_plan(
    crule: CompiledRule,
    driver_index: Optional[int] = None,
    lead_index: Optional[int] = None,
    stats=None,
) -> JoinPlan:
    """Compile a join plan for ``crule``.

    ``driver_index`` marks a strand's driving literal: it is *skipped*
    (its bindings arrive pre-seeded) and its variables start out bound.
    ``lead_index`` instead forces a literal to be evaluated first while
    still scanning its source (the semi-naive engines lead with the
    delta literal).  Remaining literals are ordered greedily --
    bound-ness first, then estimated selectivity (``stats``), via
    :func:`repro.planner.reorder.choose_next_literal`.  Assignments and
    conditions run at the earliest point their inputs are bound,
    preserving their original relative order.

    One deliberate divergence from the interpreted path: planned
    bodies are evaluated under their *declarative* reading (conjuncts
    commute), so an assignment or condition written before the literal
    that binds its inputs simply waits for that literal.  The
    interpreted path evaluates strictly left to right and raises
    ``EvaluationError`` on such bodies.  Items whose inputs never
    become bound still raise, exactly like the interpreter.
    """
    if driver_index is not None and lead_index is not None:
        raise PlanError("driver_index and lead_index are mutually exclusive")

    bound: set = set()
    if driver_index is not None:
        bound |= set(crule.body[driver_index].variables())
    driver_literal = (
        crule.body[driver_index] if driver_index is not None else None
    )

    steps: List[object] = []
    pending: List[object] = [
        item for item in crule.body if not isinstance(item, Literal)
    ]

    def place_pending() -> None:
        progress = True
        while progress:
            progress = False
            for item in list(pending):
                if isinstance(item, Assignment):
                    if item.expr.variables() <= bound:
                        steps.append(AssignStep(item.var.name, item.expr))
                        bound.add(item.var.name)
                        pending.remove(item)
                        progress = True
                elif isinstance(item, Condition):
                    if item.variables() <= bound:
                        steps.append(CondStep(item.expr))
                        pending.remove(item)
                        progress = True
                else:
                    raise PlanError(f"unsupported body item {item!r}")

    place_pending()

    remaining = [
        (index, crule.body[index])
        for index in crule.literal_indexes
        if index != driver_index
    ]
    order: List[int] = []
    forced = lead_index
    if forced is not None and all(e[0] != forced for e in remaining):
        raise PlanError(
            f"lead_index {forced} is not a body literal of {crule.label}"
        )
    while remaining:
        if forced is not None:
            entry = next(e for e in remaining if e[0] == forced)
            forced = None
        else:
            entry = choose_next_literal(remaining, bound, stats)
        remaining.remove(entry)
        body_index, literal = entry
        exclude = (
            driver_literal is not None
            and body_index < driver_index
            and literal.pred == driver_literal.pred
        )
        steps.append(
            LiteralStep(literal, body_index, frozenset(bound),
                        exclude_driver=exclude)
        )
        bound |= literal.variables()
        place_pending()
        order.append(body_index)

    # Items whose inputs never become bound keep their original order at
    # the end (they raise at runtime, exactly like the interpreter).
    for item in pending:
        if isinstance(item, Assignment):
            steps.append(AssignStep(item.var.name, item.expr))
        else:
            steps.append(CondStep(item.expr))

    return JoinPlan(crule, driver_index, tuple(order), tuple(steps))


def execute_plan(
    plan: JoinPlan,
    sources: Dict[int, object],
    functions: Dict[str, Callable],
    bindings: Optional[Dict[str, object]] = None,
    skip_fact=None,
    ts_limit: Optional[int] = None,
) -> Iterator[Dict[str, object]]:
    """Yield every satisfying assignment of the plan's rule body.

    The planned counterpart of :func:`solve`: ``sources`` still maps
    body-item index to source, so engines build them identically for
    both paths.  ``skip_fact`` is the strand's driving fact (excluded
    from the steps flagged ``exclude_driver``); ``ts_limit`` restricts
    every literal to facts stamped ``<= ts_limit``.

    Yielded binding dicts may be shared between solutions when a step
    binds no new variables; callers must treat them as read-only.
    """
    return plan.executor(
        bindings if bindings is not None else {},
        sources, functions, skip_fact, ts_limit,
    )


def rule_solutions(
    crule: CompiledRule,
    sources: Dict[int, object],
    functions: Dict[str, Callable],
    plan: Optional[JoinPlan],
) -> Iterator[Dict[str, object]]:
    """Body solutions through the plan when one is given, else through
    the interpreter -- the shared dispatch for the set-oriented engines
    (``use_plans`` toggling)."""
    if plan is not None:
        return execute_plan(plan, sources, functions)
    return solve(crule, sources, functions)


def rule_head(
    crule: CompiledRule,
    bindings: Dict[str, object],
    functions: Dict[str, Callable],
    plan: Optional[JoinPlan],
) -> Tuple:
    """Head tuple via the compiled template (planned) or the
    interpreter (unplanned); counterpart of :func:`rule_solutions`."""
    if plan is not None:
        return crule.instantiate(bindings, functions)
    return instantiate_head(crule, bindings, functions)


def _yield_solution(bindings, sources, functions, skip_fact, ts_limit):
    yield bindings


def _compile_executor(steps: Tuple, static_sources=None) -> Callable:
    """Fold the step tuple (right to left) into one generator closure
    per step, each capturing its metadata as locals and calling the
    next step's closure directly -- no step-type dispatch, no tuple
    indexing, no attribute lookups in the hot loop.

    With ``static_sources`` (body index -> source, fixed for the
    executor's lifetime) each literal's source -- and for tables the
    live index dict itself -- is captured at compile time.
    """
    follow = _yield_solution
    for step in reversed(steps):
        if isinstance(step, LiteralStep):
            if static_sources is not None:
                source = static_sources.get(step.body_index, EMPTY_SOURCE)
                follow = _bound_literal_runner(step, follow, source)
            else:
                follow = _literal_runner(step, follow)
        elif isinstance(step, AssignStep):
            follow = _assign_runner(step, follow)
        elif isinstance(step, CondStep):
            follow = _cond_runner(step, follow)
        else:
            raise PlanError(f"unsupported plan step {step!r}")
    return follow


def _empty_runner(bindings, sources, functions, skip_fact, ts_limit):
    return iter(())


def _bound_literal_runner(step: LiteralStep, follow: Callable,
                          source) -> Callable:
    """Like :func:`_literal_runner` but with the source pinned; for
    table sources the candidate rows come straight out of the captured
    live index dict, with no per-row arity checks (the table enforces
    arity on insert)."""
    positions = step.positions
    values_fn = step.values_fn
    arity = step.arity
    dup_checks = step.dup_checks or None
    bind_specs = step.bind_specs or None
    residual = step.residual_exprs or None
    exclude_driver = step.exclude_driver

    table_arity = getattr(source, "arity", None)
    if table_arity is not None and table_arity != arity:
        # The literal can never match this relation's tuples.
        return _empty_runner

    index_for = getattr(source, "index_for", None)
    if (index_for is not None and dup_checks is None and residual is None
            and not exclude_driver and bind_specs is not None):
        if positions:
            index = index_for(positions)

            def run_indexed(bindings, sources, functions, skip_fact,
                            ts_limit):
                rows = index.get(values_fn(bindings, functions))
                if rows is None:
                    return
                if ts_limit is None:
                    for fact_args in rows:
                        extended = dict(bindings)
                        for pos, name in bind_specs:
                            extended[name] = fact_args[pos]
                        yield from follow(extended, sources, functions,
                                          skip_fact, ts_limit)
                else:
                    ts = source.ts
                    for fact_args in rows:
                        if ts(fact_args) > ts_limit:
                            continue
                        extended = dict(bindings)
                        for pos, name in bind_specs:
                            extended[name] = fact_args[pos]
                        yield from follow(extended, sources, functions,
                                          skip_fact, ts_limit)

            return run_indexed

        rows_view = source.rows_view()

        def run_scan(bindings, sources, functions, skip_fact, ts_limit):
            if ts_limit is None:
                for fact_args in rows_view:
                    extended = dict(bindings)
                    for pos, name in bind_specs:
                        extended[name] = fact_args[pos]
                    yield from follow(extended, sources, functions,
                                      skip_fact, ts_limit)
            else:
                ts = source.ts
                for fact_args in rows_view:
                    if ts(fact_args) > ts_limit:
                        continue
                    extended = dict(bindings)
                    for pos, name in bind_specs:
                        extended[name] = fact_args[pos]
                    yield from follow(extended, sources, functions,
                                      skip_fact, ts_limit)

        return run_scan

    lookup = source.lookup
    skip_arity_check = table_arity is not None

    def run(bindings, sources, functions, skip_fact, ts_limit):
        rows = lookup(positions, values_fn(bindings, functions))
        exclude = (
            skip_fact.args
            if (exclude_driver and skip_fact is not None)
            else None
        )
        for fact_args in rows:
            if not skip_arity_check and len(fact_args) != arity:
                continue
            if fact_args == exclude:
                continue
            if dup_checks:
                ok = True
                for pos, first_pos in dup_checks:
                    if fact_args[pos] != fact_args[first_pos]:
                        ok = False
                        break
                if not ok:
                    continue
            if ts_limit is not None and source.ts(fact_args) > ts_limit:
                continue
            if bind_specs:
                extended = dict(bindings)
                for pos, name in bind_specs:
                    extended[name] = fact_args[pos]
            else:
                extended = bindings
            if residual:
                ok = True
                for pos, expr_fn in residual:
                    if expr_fn(extended, functions) != fact_args[pos]:
                        ok = False
                        break
                if not ok:
                    continue
            yield from follow(extended, sources, functions, skip_fact,
                              ts_limit)

    return run


def _literal_runner(step: LiteralStep, follow: Callable) -> Callable:
    body_index = step.body_index
    positions = step.positions
    values_fn = step.values_fn
    arity = step.arity
    dup_checks = step.dup_checks or None
    bind_specs = step.bind_specs or None
    residual = step.residual_exprs or None
    exclude_driver = step.exclude_driver

    if (dup_checks is None and residual is None and not exclude_driver
            and bind_specs is not None):
        # The overwhelmingly common shape: fresh variables to bind, no
        # self-join exclusion, no in-literal checks -- a tight loop.
        def run_fast(bindings, sources, functions, skip_fact, ts_limit):
            source = sources.get(body_index, EMPTY_SOURCE)
            rows = source.lookup(positions, values_fn(bindings, functions))
            if ts_limit is None:
                for fact_args in rows:
                    if len(fact_args) != arity:
                        continue
                    extended = dict(bindings)
                    for pos, name in bind_specs:
                        extended[name] = fact_args[pos]
                    yield from follow(extended, sources, functions,
                                      skip_fact, ts_limit)
            else:
                for fact_args in rows:
                    if len(fact_args) != arity:
                        continue
                    if source.ts(fact_args) > ts_limit:
                        continue
                    extended = dict(bindings)
                    for pos, name in bind_specs:
                        extended[name] = fact_args[pos]
                    yield from follow(extended, sources, functions,
                                      skip_fact, ts_limit)

        return run_fast

    def run(bindings, sources, functions, skip_fact, ts_limit):
        source = sources.get(body_index, EMPTY_SOURCE)
        rows = source.lookup(positions, values_fn(bindings, functions))
        exclude = (
            skip_fact.args
            if (exclude_driver and skip_fact is not None)
            else None
        )
        for fact_args in rows:
            if len(fact_args) != arity:
                continue
            if fact_args == exclude:
                continue
            if dup_checks:
                ok = True
                for pos, first_pos in dup_checks:
                    if fact_args[pos] != fact_args[first_pos]:
                        ok = False
                        break
                if not ok:
                    continue
            if ts_limit is not None and source.ts(fact_args) > ts_limit:
                continue
            if bind_specs:
                extended = dict(bindings)
                for pos, name in bind_specs:
                    extended[name] = fact_args[pos]
            else:
                extended = bindings
            if residual:
                ok = True
                for pos, expr_fn in residual:
                    if expr_fn(extended, functions) != fact_args[pos]:
                        ok = False
                        break
                if not ok:
                    continue
            yield from follow(extended, sources, functions, skip_fact,
                              ts_limit)

    return run


def _assign_runner(step: AssignStep, follow: Callable) -> Callable:
    name = step.name
    fn = step.fn

    def run(bindings, sources, functions, skip_fact, ts_limit):
        value = fn(bindings, functions)
        current = bindings.get(name, _MISSING)
        if current is _MISSING:
            extended = dict(bindings)
            extended[name] = value
            yield from follow(extended, sources, functions, skip_fact,
                              ts_limit)
        elif current == value:
            yield from follow(bindings, sources, functions, skip_fact,
                              ts_limit)

    return run


def _cond_runner(step: CondStep, follow: Callable) -> Callable:
    fn = step.fn

    def run(bindings, sources, functions, skip_fact, ts_limit):
        if fn(bindings, functions):
            yield from follow(bindings, sources, functions, skip_fact,
                              ts_limit)

    return run


# ----------------------------------------------------------------------
# Head instantiation
# ----------------------------------------------------------------------
def instantiate_head(
    crule: CompiledRule,
    bindings: Dict[str, object],
    functions: Dict[str, Callable],
) -> Tuple:
    """Ground the head under ``bindings``.

    For aggregate rules the aggregate position carries the aggregated
    *input value* (the aggregation itself is maintained by
    :mod:`repro.engine.aggregates`).
    """
    values: List[object] = []
    for term in crule.head.args:
        if isinstance(term, AggregateSpec):
            if term.var:
                try:
                    values.append(bindings[term.var])
                except KeyError:
                    raise EvaluationError(
                        f"aggregate variable {term.var!r} unbound",
                        rule=crule.label,
                    ) from None
            else:
                values.append(1)  # count<*> contribution
        else:
            values.append(evaluate(term, bindings, functions))
    return tuple(values)


def compile_rules(rules: Sequence[Rule]) -> List[CompiledRule]:
    return [CompiledRule(rule) for rule in rules]

"""Rule compilation and the join evaluator shared by every engine.

A rule body is evaluated left to right (the paper notes implementations
"typically employ a left-to-right execution strategy").  Each literal is
matched against a *source* -- a full table, a snapshot set, or a single
driving fact -- using hash lookups on the positions already bound.

``ts_limit`` implements PSN's timestamp discipline: when given, a literal
only matches facts whose insertion timestamp is ``<= ts_limit``, so each
joint derivation fires exactly once, when its youngest participant is
processed (Theorem 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError, PlanError
from repro.ndlog.ast import Assignment, Condition, Literal, Rule
from repro.ndlog.terms import (
    AggregateSpec,
    Constant,
    Term,
    Variable,
    evaluate,
)


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class SetSource:
    """A source over a plain set of tuples (used for SN's old/delta sets).

    Builds per-position indexes lazily; the set must not be mutated after
    construction.
    """

    def __init__(self, rows: Sequence[Tuple]):
        self._rows = list(rows)
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, List[Tuple]]] = {}

    def rows(self) -> Sequence[Tuple]:
        return self._rows

    def ts(self, args: Tuple) -> int:
        return -1

    def lookup(self, positions: Tuple[int, ...], values: Tuple):
        if not positions:
            return self._rows
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for args in self._rows:
                index.setdefault(
                    tuple(args[i] for i in positions), []
                ).append(args)
            self._indexes[positions] = index
        return index.get(values, ())


EMPTY_SOURCE = SetSource(())


# ----------------------------------------------------------------------
# Compiled rules
# ----------------------------------------------------------------------
@dataclass
class AggregateInfo:
    """Description of an aggregate rule head, e.g. ``spCost(@S,@D,min<C>)``.

    ``value_position`` is the aggregate's index in the head; ``group_positions``
    are the remaining head indexes (the GROUP BY key).
    """

    func: str
    var: str
    value_position: int
    group_positions: Tuple[int, ...]


class CompiledRule:
    """A rule pre-split into literals / assignments / conditions."""

    def __init__(self, rule: Rule):
        self.rule = rule
        self.head = rule.head
        self.body = tuple(rule.body)
        self.literal_indexes: Tuple[int, ...] = tuple(
            i for i, item in enumerate(self.body) if isinstance(item, Literal)
        )
        agg = rule.head_aggregate()
        if agg is None:
            self.aggregate: Optional[AggregateInfo] = None
        else:
            position, spec = agg
            self.aggregate = AggregateInfo(
                func=spec.func,
                var=spec.var,
                value_position=position,
                group_positions=tuple(
                    i for i in range(rule.head.arity) if i != position
                ),
            )
        #: (group_positions, value_position, func) witness annotation.
        self.argmin = rule.argmin

    @property
    def label(self) -> str:
        return self.rule.label or repr(self.rule.head)

    def body_preds(self) -> Tuple[str, ...]:
        return tuple(self.body[i].pred for i in self.literal_indexes)

    def __repr__(self) -> str:
        return f"CompiledRule({self.rule!r})"


# ----------------------------------------------------------------------
# Unification and lookup
# ----------------------------------------------------------------------
def unify_literal(
    literal: Literal,
    fact_args: Tuple,
    bindings: Dict[str, object],
    functions: Dict[str, Callable],
) -> Optional[Dict[str, object]]:
    """Match ``literal`` against ``fact_args`` under ``bindings``.

    Returns the extended bindings, or ``None`` on mismatch.
    """
    if len(literal.args) != len(fact_args):
        return None
    new: Optional[Dict[str, object]] = None
    current = bindings
    for term, value in zip(literal.args, fact_args):
        if isinstance(term, Variable):
            bound = current.get(term.name, _MISSING)
            if bound is _MISSING:
                if new is None:
                    new = dict(bindings)
                    current = new
                new[term.name] = value
            elif bound != value:
                return None
        elif isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            # Complex term: must be evaluable under current bindings.
            if evaluate(term, current, functions) != value:
                return None
    return new if new is not None else dict(bindings)


_MISSING = object()


def _literal_candidates(
    literal: Literal,
    source,
    bindings: Dict[str, object],
    functions: Dict[str, Callable],
):
    """Candidate facts for ``literal``: an indexed lookup on the positions
    bound under ``bindings`` (falling back to a scan when nothing is
    bound)."""
    positions: List[int] = []
    values: List[object] = []
    for index, term in enumerate(literal.args):
        if isinstance(term, Constant):
            positions.append(index)
            values.append(term.value)
        elif isinstance(term, Variable):
            bound = bindings.get(term.name, _MISSING)
            if bound is not _MISSING:
                positions.append(index)
                values.append(bound)
        else:
            names = term.variables()
            if all(name in bindings for name in names):
                positions.append(index)
                values.append(evaluate(term, bindings, functions))
    if not positions:
        return source.rows()
    return source.lookup(tuple(positions), tuple(values))


def solve(
    crule: CompiledRule,
    sources: Dict[int, object],
    functions: Dict[str, Callable],
    bindings: Optional[Dict[str, object]] = None,
    skip_index: Optional[int] = None,
    skip_fact=None,
    ts_limit: Optional[int] = None,
) -> Iterator[Dict[str, object]]:
    """Yield every satisfying assignment of the rule body.

    ``sources`` maps body-item index -> source for each literal;
    ``skip_index`` marks the driving literal already consumed (its
    bindings must be in ``bindings``).

    ``skip_fact`` (the driving fact) implements the self-join discipline
    of the paper's footnote-2 delta form: literal positions *before* the
    driving position exclude the driving fact itself, so a derivation in
    which the same tuple fills several positions fires exactly once --
    when the strand for its first position runs (Theorem 2).

    ``ts_limit`` additionally restricts every literal to facts with
    timestamp ``<= ts_limit`` (unused by the commit-at-processing PSN
    engine, where table state already equals the correct prefix, but
    available for timestamp-explicit execution).
    """
    state = bindings or {}
    return _solve_from(crule, 0, state, sources, functions, skip_index,
                       skip_fact, ts_limit)


def _solve_from(
    crule: CompiledRule,
    item_index: int,
    bindings: Dict[str, object],
    sources: Dict[int, object],
    functions: Dict[str, Callable],
    skip_index: Optional[int],
    skip_fact,
    ts_limit: Optional[int],
) -> Iterator[Dict[str, object]]:
    if item_index == len(crule.body):
        yield bindings
        return
    item = crule.body[item_index]

    if item_index == skip_index:
        yield from _solve_from(crule, item_index + 1, bindings, sources,
                               functions, skip_index, skip_fact, ts_limit)
        return

    if isinstance(item, Literal):
        source = sources.get(item_index, EMPTY_SOURCE)
        exclude = None
        if (
            skip_fact is not None
            and skip_index is not None
            and item_index < skip_index
            and item.pred == skip_fact.pred
        ):
            exclude = skip_fact.args
        for fact_args in _literal_candidates(item, source, bindings, functions):
            if fact_args == exclude:
                continue
            if ts_limit is not None and source.ts(fact_args) > ts_limit:
                continue
            extended = unify_literal(item, fact_args, bindings, functions)
            if extended is None:
                continue
            yield from _solve_from(crule, item_index + 1, extended, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        return

    if isinstance(item, Assignment):
        value = evaluate(item.expr, bindings, functions)
        name = item.var.name
        bound = bindings.get(name, _MISSING)
        if bound is _MISSING:
            extended = dict(bindings)
            extended[name] = value
            yield from _solve_from(crule, item_index + 1, extended, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        elif bound == value:
            yield from _solve_from(crule, item_index + 1, bindings, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        return

    if isinstance(item, Condition):
        if evaluate(item.expr, bindings, functions):
            yield from _solve_from(crule, item_index + 1, bindings, sources,
                                   functions, skip_index, skip_fact, ts_limit)
        return

    raise PlanError(f"unsupported body item {item!r}")


# ----------------------------------------------------------------------
# Head instantiation
# ----------------------------------------------------------------------
def instantiate_head(
    crule: CompiledRule,
    bindings: Dict[str, object],
    functions: Dict[str, Callable],
) -> Tuple:
    """Ground the head under ``bindings``.

    For aggregate rules the aggregate position carries the aggregated
    *input value* (the aggregation itself is maintained by
    :mod:`repro.engine.aggregates`).
    """
    values: List[object] = []
    for term in crule.head.args:
        if isinstance(term, AggregateSpec):
            if term.var:
                try:
                    values.append(bindings[term.var])
                except KeyError:
                    raise EvaluationError(
                        f"aggregate variable {term.var!r} unbound in "
                        f"{crule.label}"
                    ) from None
            else:
                values.append(1)  # count<*> contribution
        else:
            values.append(evaluate(term, bindings, functions))
    return tuple(values)


def compile_rules(rules: Sequence[Rule]) -> List[CompiledRule]:
    return [CompiledRule(rule) for rule in rules]

"""Predicate-level stratification.

The naive and semi-naive engines evaluate a program stratum by stratum:
each stratum is a strongly connected component of the predicate
dependency graph, processed in topological order.  Aggregation must not
occur inside a recursive component for these engines (PSN maintains
monotonic aggregates incrementally and has no such restriction for the
programs in the paper, all of which are stratified anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import PlanError
from repro.ndlog.ast import Program, Rule


def dependency_graph(rules: Sequence[Rule]) -> Dict[str, Set[str]]:
    """Predicate dependency graph: head -> the predicates its bodies
    read.  Also used by the static analyses (:mod:`repro.analysis`)."""
    graph: Dict[str, Set[str]] = {}
    for rule in rules:
        deps = graph.setdefault(rule.head.pred, set())
        for literal in rule.body_literals:
            deps.add(literal.pred)
            graph.setdefault(literal.pred, set())
    return graph


def tarjan_sccs(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's algorithm, iterative; SCCs in reverse topological order."""
    index_counter = [0]
    indexes: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []

    for root in graph:
        if root in indexes:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                indexes[node] = lowlinks[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = sorted(graph[node])
            for offset in range(child_index, len(children)):
                child = children[offset]
                if child not in indexes:
                    work[-1] = (node, offset + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


@dataclass
class Stratum:
    """One evaluation unit: a set of mutually recursive predicates and
    the rules defining them."""

    preds: frozenset
    rules: List[Rule]
    recursive: bool

    def __repr__(self) -> str:
        kind = "recursive" if self.recursive else "non-recursive"
        return f"Stratum({sorted(self.preds)}, {kind}, {len(self.rules)} rules)"


def strata(program: Program) -> List[Stratum]:
    """Split ``program`` into strata in evaluation order, without
    judging whether any engine can run them.  The static analyses
    (:mod:`repro.analysis`) use this to *report* engine restrictions
    that :func:`stratify` turns into hard errors."""
    rules = [rule for rule in program.rules if rule.body]
    graph = dependency_graph(rules)
    sccs = tarjan_sccs(graph)  # reverse topological = dependency-first

    out: List[Stratum] = []
    for component in sccs:
        preds = frozenset(component)
        member_rules = [r for r in rules if r.head.pred in preds]
        if not member_rules:
            continue  # pure EDB component
        recursive = len(component) > 1 or any(
            r.head.pred in set(lit.pred for lit in r.body_literals)
            for r in member_rules
        )
        out.append(Stratum(preds=preds, rules=member_rules,
                           recursive=recursive))
    return out


def recursive_nonmonotone_rules(program: Program) -> List[Tuple[Stratum, Rule]]:
    """The ``(stratum, rule)`` pairs where an aggregate or arg-extreme
    rule sits inside a recursive stratum -- the shape the set-oriented
    engines cannot evaluate."""
    out: List[Tuple[Stratum, Rule]] = []
    for stratum in strata(program):
        if not stratum.recursive:
            continue
        for rule in stratum.rules:
            if rule.head_aggregate() is not None or rule.argmin is not None:
                out.append((stratum, rule))
    return out


def stratify(program: Program) -> List[Stratum]:
    """Split ``program`` into strata in evaluation order.

    Raises :class:`PlanError` if an aggregate rule's head participates in
    recursion with its own body (unsupported by the set-oriented
    engines).
    """
    result = strata(program)
    for stratum in result:
        if not stratum.recursive:
            continue
        for rule in stratum.rules:
            if (rule.head_aggregate() is not None
                    or rule.argmin is not None):
                kind = ("arg-extreme view" if rule.argmin is not None
                        else "aggregate rule")
                raise PlanError(
                    f"{kind} {rule.label or rule.head.pred} is recursive; "
                    f"the set-oriented engines ('naive', 'seminaive') "
                    f"evaluate stratum-by-stratum and cannot run it -- "
                    f"use the pipelined engines ('psn' or 'bsn'), which "
                    f"maintain monotonic aggregates incrementally"
                )
    return result

"""Pipelined semi-naive (PSN) evaluation -- Algorithm 3 of the paper --
extended with the incremental view-maintenance machinery of Section 4.

Every change is a signed delta on a FIFO queue:

* base-table insertions, deletions and updates (update = deletion
  followed by insertion, realized by primary-key replacement);
* derived-tuple insertions/deletions produced by rule strands;
* aggregate-value changes emitted by the incremental aggregate views.

**Commit discipline.**  The queue is purely event-sourced: table state
is mutated only when a delta is *processed* (dequeued), never when it is
enqueued, so at any processing step the tables hold exactly the facts
whose deltas precede the current one -- the "same or older timestamp"
join prefix of Section 3.3.2 *is* the table itself.  A duplicate
derivation of a visible fact commits as a count bump (no strands); a
deletion of a fact that was superseded in the meantime commits as a
no-op.

Under this discipline:

* each joint derivation fires exactly once -- when its last participant
  commits; for self-joins, partner positions *before* the driving
  position exclude the driving fact itself, mirroring the delta-rule
  form of the paper's footnote 2 (Theorem 2, no repeated inferences);
* deletions decrement the derivation counts established by insertions
  and never over- or under-count: a dying fact's strands run while it is
  still visible, and any co-participant deleted later no longer sees it
  (Theorems 3/4, eventual consistency under bursty updates, using the
  count algorithm of [15]).

One engine therefore serves as the paper's PSN evaluator *and* its
materialized-view maintenance layer.

**Join plans.**  With ``use_plans=True`` (the default) every strand
carries a join plan compiled at engine construction (see
:mod:`repro.engine.rules`): literal order chosen by bound-ness and
estimated selectivity, per-literal lookup/bind metadata precomputed,
expressions compiled to closures, partner tables (and their live index
dicts) bound into the executor, and all probed indexes pre-registered
on the tables.  ``use_plans=False`` keeps the original interpreted
path for baseline comparisons (``benchmarks/bench_join_plans.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import EvaluationError
from repro.engine.aggregates import AggregateView, ArgExtremeView
from repro.engine.database import Database
from repro.engine.facts import Fact
from repro.engine.fixpoint import EvalResult
from repro.engine.table import INFINITY
from repro.engine.rules import (
    CompiledRule,
    compile_driver_step,
    compile_plan,
    instantiate_head,
    solve,
    unify_literal,
)
from repro.opt.costbased import StatsCatalog
from repro.ndlog.ast import Literal, Program
from repro.ndlog.terms import evaluate as eval_term

DEFAULT_MAX_STEPS = 20_000_000


class QueuedDelta(NamedTuple):
    """An intent on the queue; ``force`` removes a fact regardless of its
    derivation count (external base deletions, pkey replacement)."""

    fact: Fact
    sign: int
    force: bool = False


class Strand:
    """One rule strand: a compiled rule driven by one body literal
    position, as in Figures 3 and 5 of the paper.

    When join planning is on, the strand carries everything the hot
    path needs, compiled once at engine construction: ``plan`` (the
    ordered, metadata-annotated join over the non-driver literals),
    ``driver_step`` (the matcher seeding bindings from the driving
    fact), and ``sources`` (body index -> table, fixed per engine).
    """

    __slots__ = ("crule", "driver_index", "driver_literal", "plan",
                 "driver_step", "sources", "bound_executor")

    def __init__(self, crule: CompiledRule, driver_index: int):
        self.crule = crule
        self.driver_index = driver_index
        self.driver_literal: Literal = crule.body[driver_index]
        self.plan = None
        self.driver_step = None
        self.sources: Optional[Dict[int, object]] = None
        self.bound_executor = None

    def attach_plan(self, db: Database, stats=None) -> None:
        """Compile this strand's join plan against ``db``; the executor
        is *bound* -- the partner tables (and their live index dicts)
        are captured in the closures, pre-registering every index the
        plan probes."""
        self.plan = compile_plan(
            self.crule, driver_index=self.driver_index, stats=stats
        )
        self.driver_step = compile_driver_step(self.crule, self.driver_index)
        self.sources = {
            index: db.table(self.crule.body[index].pred)
            for index in self.crule.literal_indexes
            if index != self.driver_index
        }
        for pred, positions in self.plan.index_requests():
            db.table(pred).register_index(positions)
        self.bound_executor = self.plan.bind(self.sources)

    def __repr__(self) -> str:
        return f"Strand({self.crule.label}, driver={self.driver_literal.pred})"


def build_strands(compiled: List[CompiledRule]) -> Dict[str, List[Strand]]:
    """Index strands by driving predicate.

    Every body literal position of every rule yields a strand, so a new
    fact for *any* body predicate (derived or base -- base-table updates
    arrive at runtime, Section 4) re-fires the rule.
    """
    strands: Dict[str, List[Strand]] = {}
    for crule in compiled:
        for index in crule.literal_indexes:
            strand = Strand(crule, index)
            strands.setdefault(strand.driver_literal.pred, []).append(strand)
    return strands


class PSNEngine:
    """Pipelined semi-naive engine over one database.

    ``on_commit(fact, sign)`` (if given) observes every visible table
    change, in commit order -- used by the distributed runtime and the
    experiment harness.
    """

    def __init__(
        self,
        program: Program,
        db: Optional[Database] = None,
        on_commit: Optional[Callable[[Fact, int], None]] = None,
        use_plans: bool = True,
        stats: Optional[StatsCatalog] = None,
    ):
        self.program = program
        self.db = db if db is not None else Database.for_program(program)
        self.compiled = [CompiledRule(rule) for rule in program.rules if rule.body]
        self.strands = build_strands(self.compiled)
        self.use_plans = use_plans
        if use_plans:
            if stats is None:
                stats = StatsCatalog.from_database(self.db)
            for strand_list in self.strands.values():
                for strand in strand_list:
                    strand.attach_plan(self.db, stats=stats)
        self.views: Dict[str, AggregateView] = {}
        self.argmin_views: Dict[str, ArgExtremeView] = {}
        for crule in self.compiled:
            if crule.aggregate is not None and crule.head.pred not in self.views:
                self.views[crule.head.pred] = AggregateView(
                    crule.head.pred, crule.aggregate
                )
            if crule.argmin is not None and crule.head.pred not in self.argmin_views:
                group_positions, value_position, func = crule.argmin
                self.argmin_views[crule.head.pred] = ArgExtremeView(
                    crule.head.pred, group_positions, value_position, func
                )
        self.queue: Deque[QueuedDelta] = deque()
        self.clock = 0
        self.inferences = 0
        self.steps = 0
        self.on_commit = on_commit

    # ------------------------------------------------------------------
    # External change API (base tables; Section 4's insert/delete/update)
    # ------------------------------------------------------------------
    def insert(self, pred: str, args: Tuple) -> None:
        """Insert a base tuple.  A primary-key match with different
        attributes (detected at commit) is an *update*: the old tuple is
        deleted first, exactly as "an update is treated as a deletion
        followed by an insertion"."""
        self.derive(Fact(pred, tuple(args)), 1)

    def delete(self, pred: str, args: Tuple) -> None:
        """Delete a base tuple outright (whatever its derivation count)."""
        self._enqueue(QueuedDelta(Fact(pred, tuple(args)), -1, force=True))

    def update(self, pred: str, args: Tuple) -> None:
        """Alias of :meth:`insert`; replacement does the delete half."""
        self.insert(pred, args)

    # ------------------------------------------------------------------
    # Derivation sink (strand outputs and external inserts)
    # ------------------------------------------------------------------
    def derive(self, fact: Fact, sign: int) -> None:
        """Queue a signed derivation.  Purely event-sourced: no table
        state is consulted or mutated here, so intents are interpreted at
        processing time against exactly the prefix of changes that
        precede them (this is what makes interleaved insert/delete bursts
        of Section 4 confluent)."""
        self._enqueue(QueuedDelta(fact, 1 if sign > 0 else -1))

    # ------------------------------------------------------------------
    # Fixpoint driving
    # ------------------------------------------------------------------
    def fixpoint(self, max_steps: int = DEFAULT_MAX_STEPS) -> EvalResult:
        """Seed pre-loaded rows and program facts, then run the queue dry."""
        self.seed_existing()
        for fact in self.program.facts:
            values = tuple(
                eval_term(arg, {}, self.db.functions) for arg in fact.args
            )
            self.insert(fact.pred, values)
        self.run(max_steps=max_steps)
        return EvalResult(
            db=self.db, inferences=self.inferences, steps=self.steps
        )

    def seed_existing(self) -> None:
        """Move rows loaded before the engine existed onto the queue, so
        they flow through the same commit pipeline as everything else."""
        for table in self.db.tables.values():
            for args in table.rows():
                count = table.count(args)
                table.force_delete(args)
                fact = Fact(table.name, args)
                for _ in range(count):
                    self._enqueue(QueuedDelta(fact, 1))

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Process queued deltas until quiescent; returns steps taken.

        The limit is exact: at most ``max_steps`` deltas are processed,
        and the engine raises as soon as a further delta would exceed
        it (not one delta too late).
        """
        taken = 0
        while self.queue:
            if taken >= max_steps:
                raise EvaluationError(
                    f"PSN exceeded {max_steps} steps (non-terminating "
                    f"program?)"
                )
            self.process_next()
            taken += 1
        return taken

    def run_batch(self, batch: int) -> int:
        """Process at most ``batch`` deltas (used by BSN scheduling)."""
        taken = 0
        while self.queue and taken < batch:
            self.process_next()
            taken += 1
        return taken

    @property
    def quiescent(self) -> bool:
        return not self.queue

    def _enqueue(self, delta: QueuedDelta) -> None:
        """Append an intent to the FIFO queue (overridable: the
        distributed node runtime also schedules a processing tick)."""
        self.queue.append(delta)

    # ------------------------------------------------------------------
    # Core processing
    # ------------------------------------------------------------------
    def process_next(self) -> None:
        delta = self.queue.popleft()
        self.steps += 1
        if delta.sign > 0:
            self._commit_insert(delta.fact)
        else:
            self._commit_delete(delta.fact, force=delta.force)

    def _commit_insert(self, fact: Fact) -> None:
        table = self.db.table(fact.pred)
        if fact.args in table:
            # Another derivation of a visible fact: bump its count and
            # refresh its timestamp to the current clock.  For soft-state
            # tables (finite lifetime) the re-insertion is a *refresh*
            # and must reach the TTL observer (Section 4.2: "facts must
            # be explicitly reinserted ... with a new TTL").
            self.clock += 1
            table.insert(fact.args, ts=self.clock)
            if table.lifetime != INFINITY and self.on_commit is not None:
                self.on_commit(fact, 1)
            return
        old = table.get_by_key(table.key_of(fact.args))
        if old is not None:
            # Primary-key replacement: retract the superseded tuple first.
            self._retract_visible(Fact(fact.pred, old))
        self.clock += 1
        table.insert(fact.args, ts=self.clock)
        if self.on_commit is not None:
            self.on_commit(fact, 1)
        self._fire_strands(fact, 1)

    def _commit_delete(self, fact: Fact, force: bool = False) -> None:
        table = self.db.table(fact.pred)
        current = table.count(fact.args)
        if current <= 0:
            return  # superseded, never committed, or already gone
        if current > 1 and not force:
            table.delete(fact.args)
            return
        self._retract_visible(fact)

    def _retract_visible(self, fact: Fact) -> None:
        """Remove a visible fact: run its deletion strands while it is
        still in the table (so partners see it), then drop it."""
        if self.on_commit is not None:
            self.on_commit(fact, -1)
        self._fire_strands(fact, -1)
        self.db.table(fact.pred).force_delete(fact.args)

    def _fire_strands(self, fact: Fact, sign: int) -> None:
        for strand in self.strands.get(fact.pred, ()):
            self._fire_strand(strand, fact, sign)

    def _fire_strand(self, strand: Strand, fact: Fact, sign: int) -> None:
        crule = strand.crule
        functions = self.db.functions
        if strand.plan is not None:
            seed = strand.driver_step.match(fact.args, {}, functions)
            if seed is None:
                return
            emit = self._emit
            instantiate = crule.instantiate
            inferences = 0
            for bindings in strand.bound_executor(
                seed, None, functions, fact, None
            ):
                inferences += 1
                emit(crule, instantiate(bindings, functions), sign)
            self.inferences += inferences
            return
        seed = unify_literal(strand.driver_literal, fact.args, {}, functions)
        if seed is None:
            return
        sources = {
            index: self.db.table(crule.body[index].pred)
            for index in crule.literal_indexes
            if index != strand.driver_index
        }
        for bindings in solve(
            crule,
            sources,
            functions,
            bindings=seed,
            skip_index=strand.driver_index,
            skip_fact=fact,
        ):
            self.inferences += 1
            head = instantiate_head(crule, bindings, functions)
            self._emit(crule, head, sign)

    def _emit(self, crule: CompiledRule, head: Tuple, sign: int) -> None:
        """Route a rule firing to its head relation (virtual: the
        distributed runtime overrides this to ship remote heads)."""
        pred = crule.head.pred
        if crule.aggregate is not None:
            view = self.views[pred]
            for view_sign, view_args in view.apply(head, sign):
                self.derive(Fact(pred, view_args), view_sign)
            return
        if crule.argmin is not None:
            view = self.argmin_views[pred]
            for view_sign, view_args in view.apply(head, sign):
                self.derive(Fact(pred, view_args), view_sign)
            return
        self.derive(Fact(pred, head), sign)


def evaluate(
    program: Program,
    db: Optional[Database] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    use_plans: bool = True,
) -> EvalResult:
    """Run ``program`` to fixpoint with PSN and return the result."""
    engine = PSNEngine(program, db=db, use_plans=use_plans)
    return engine.fixpoint(max_steps=max_steps)

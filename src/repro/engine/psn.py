"""Pipelined semi-naive (PSN) evaluation -- Algorithm 3 of the paper --
extended with the incremental view-maintenance machinery of Section 4.

Every change is a **weighted delta** (a Z-set entry: fact plus integer
weight, insert ``+1`` / delete ``-1``) on a FIFO queue:

* base-table insertions, deletions and updates (update = deletion
  followed by insertion, realized by primary-key replacement);
* derived-tuple insertions/deletions produced by rule strands;
* aggregate-value changes emitted by the incremental aggregate views;
* bulk intents whose weight magnitude exceeds 1 (seeded multiplicities,
  a dead peer's netted contributions), which commit as one weighted
  count adjustment instead of a run of unit deltas.

**Commit discipline.**  The queue is purely event-sourced: table state
is mutated only when a delta is *processed* (dequeued), never when it is
enqueued, so at any processing step the tables hold exactly the facts
whose deltas precede the current one -- the "same or older timestamp"
join prefix of Section 3.3.2 *is* the table itself.  A duplicate
derivation of a visible fact commits as a count bump (no strands); a
deletion of a fact that was superseded in the meantime commits as a
no-op.

Under this discipline:

* each joint derivation fires exactly once -- when its last participant
  commits; for self-joins, partner positions *before* the driving
  position exclude the driving fact itself, mirroring the delta-rule
  form of the paper's footnote 2 (Theorem 2, no repeated inferences);
* deletions decrement the derivation counts established by insertions
  and never over- or under-count: a dying fact's strands run while it is
  still visible, and any co-participant deleted later no longer sees it
  (Theorems 3/4, eventual consistency under bursty updates, using the
  count algorithm of [15]).

One engine therefore serves as the paper's PSN evaluator *and* its
materialized-view maintenance layer.

**Join plans.**  With ``use_plans=True`` (the default) every strand
carries a join plan compiled at engine construction (see
:mod:`repro.engine.rules`): literal order chosen by bound-ness and
estimated selectivity, per-literal lookup/bind metadata precomputed,
expressions compiled to closures, partner tables (and their live index
dicts) bound into the executor, and all probed indexes pre-registered
on the tables.  ``use_plans=False`` keeps the original interpreted
path for baseline comparisons (``benchmarks/bench_join_plans.py``).

**Micro-batched commits.**  With ``batch_size > 1`` the queue is
drained in chunks instead of one delta at a time (Section 4's "bursty
updates" processed as bursts):

1. *Weight netting at the queue* -- Z-set addition applied before any
   table or strand work: within a chunk, the intents on one primary-key
   slot collapse to a single intent carrying the sum of their weights,
   and a zero sum vanishes outright.  Cancellation is not a special
   case -- it is the group law.  Folding is restricted to slots where
   it is provably equivalent to sequential replay: every chunk intent
   on the slot must target one identical tuple, none may be forced or
   a deferred restore (primary-key replacement and forced deletion are
   assignments, not group elements, so weights must not flow across
   them), the table must not be soft-state (a re-insertion is a TTL
   refresh that must stay observable), the stored row under the key --
   if any -- must be that same tuple, and no prefix of the slot's
   intents may sum negative (stored counts floor at zero, so an early
   withdrawal is sequentially a decrement *or* a no-op, which addition
   cannot predict).  Within that envelope, committing the summed
   weight is *exactly* the sequential outcome: duplicate insertions
   are one count bump of ``+w``, deletions one decrement, and the
   visibility transition (strand firing) happens at most once either
   way.  Every other intent replays in its original position.
2. *Run batching* -- surviving weighted intents are split into maximal
   runs of one (predicate, direction), each run is committed to the
   table in order, and every strand of that predicate then fires
   **once per run** with the list of driving facts, amortizing strand
   lookup, driver-step seeding and inference bookkeeping.  Run
   batching applies only to predicates with no self-join strands (no
   rule both driven by and joining against the same predicate); for
   those, commit-then-fire is join-for-join identical to sequential
   processing because a run never touches its own partner tables.
   Self-join predicates, forced deletions and (in the distributed
   runtime) cache-intercepted query predicates fall back to the
   per-delta reference path mid-chunk.
3. *Aggregate netting* -- a batched strand firing feeds its aggregate
   or arg-extreme view through ``apply_many``, which emits only the
   net group-value change for the chunk.

``batch_size=1`` (the default) is the reference path and reproduces
the historical commit order exactly.  Batching may change the
*intermediate* delta traffic (zero-weight runs never commit, netted
aggregates skip transient values) but never the fixpoint or the final
derivation counts -- ``tests/test_batching.py`` and
``tests/test_zset.py`` hold both paths to that, and
``benchmarks/bench_zset.py`` measures the win over both the per-delta
path and PR 2's guard-based cancellation.

"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Callable, Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.errors import EvaluationError
from repro.engine.aggregates import AggregateView, ArgExtremeView
from repro.engine.database import Database
from repro.engine.facts import Fact
from repro.engine.fixpoint import EvalResult
from repro.engine.table import INFINITY
from repro.engine.rules import (
    CompiledRule,
    compile_driver_step,
    compile_plan,
    instantiate_head,
    solve,
    unify_literal,
)
from repro.opt.costbased import StatsCatalog
from repro.ndlog.ast import Literal, Program
from repro.ndlog.terms import evaluate as eval_term

DEFAULT_MAX_STEPS = 20_000_000


class QueuedDelta(NamedTuple):
    """An intent on the queue: one Z-set entry, ``weight`` derivations
    of ``fact`` asserted (``> 0``) or withdrawn (``< 0``).  ``force``
    removes a fact regardless of its derivation count (external base
    deletions, pkey replacement) -- an *assignment*, outside the weight
    algebra, so forced intents never net.  ``restore`` is a deferred
    fallback check on the fact's keyed slot: it re-materializes the
    latest shadowed version only if the slot is still empty when the
    intent is processed (a replacement already in flight fills it
    first, so transient ``-old/+new`` update pairs do not churn through
    stale versions).  ``trace`` is the delta-propagation trace id this
    intent belongs to (minted at base-fact injection; ``None`` when
    tracing is off)."""

    fact: Fact
    weight: int
    force: bool = False
    restore: bool = False
    trace: Optional[int] = None

    @property
    def sign(self) -> int:
        return 1 if self.weight > 0 else -1


class Strand:
    """One rule strand: a compiled rule driven by one body literal
    position, as in Figures 3 and 5 of the paper.

    When join planning is on, the strand carries everything the hot
    path needs, compiled once at engine construction: ``plan`` (the
    ordered, metadata-annotated join over the non-driver literals),
    ``driver_step`` (the matcher seeding bindings from the driving
    fact), and ``sources`` (body index -> table, fixed per engine).
    """

    __slots__ = ("crule", "driver_index", "driver_literal", "plan",
                 "driver_step", "sources", "bound_executor")

    def __init__(self, crule: CompiledRule, driver_index: int):
        self.crule = crule
        self.driver_index = driver_index
        self.driver_literal: Literal = crule.body[driver_index]
        self.plan = None
        self.driver_step = None
        self.sources: Optional[Dict[int, object]] = None
        self.bound_executor = None

    def attach_sources(self, db: Database) -> None:
        """Bind the partner tables once at engine construction; both
        evaluation paths read them from here instead of rebuilding the
        dict on every firing."""
        self.sources = {
            index: db.table(self.crule.body[index].pred)
            for index in self.crule.literal_indexes
            if index != self.driver_index
        }

    def attach_plan(self, db: Database, stats=None) -> None:
        """Compile this strand's join plan against ``db``; the executor
        is *bound* -- the partner tables (and their live index dicts)
        are captured in the closures, pre-registering every index the
        plan probes."""
        self.plan = compile_plan(
            self.crule, driver_index=self.driver_index, stats=stats
        )
        self.driver_step = compile_driver_step(self.crule, self.driver_index)
        if self.sources is None:
            self.attach_sources(db)
        for pred, positions in self.plan.index_requests():
            db.table(pred).register_index(positions)
        self.bound_executor = self.plan.bind(self.sources)

    def __repr__(self) -> str:
        return f"Strand({self.crule.label}, driver={self.driver_literal.pred})"


def build_strands(compiled: List[CompiledRule]) -> Dict[str, List[Strand]]:
    """Index strands by driving predicate.

    Every body literal position of every rule yields a strand, so a new
    fact for *any* body predicate (derived or base -- base-table updates
    arrive at runtime, Section 4) re-fires the rule.
    """
    strands: Dict[str, List[Strand]] = {}
    for crule in compiled:
        for index in crule.literal_indexes:
            strand = Strand(crule, index)
            strands.setdefault(strand.driver_literal.pred, []).append(strand)
    return strands


class PSNEngine:
    """Pipelined semi-naive engine over one database.

    ``on_commit(fact, weight)`` (if given) observes every visible table
    change, in commit order -- used by the distributed runtime and the
    experiment harness.  ``weight`` is the Z-set weight of the
    visibility transition: ``+k`` derivations became visible (a bulk
    burst counts ``k``, not 1), ``-k`` left visibility (the count the
    fact held when retracted).  The sign is the transition direction,
    so sign-only consumers keep working unchanged.

    ``metrics`` / ``tracer`` / ``profiler`` are the observability
    hooks (:mod:`repro.obs`): a per-node
    :class:`~repro.obs.metrics.NodeMetrics` holder, a
    :class:`~repro.obs.trace.NodeTracer` handle, and a
    :class:`~repro.obs.profile.Profiler`.  Like the provenance
    recorder, each hot site is guarded by one ``None`` check, so the
    disabled path (the default) costs nothing.

    ``batch_size`` selects the queue discipline: 1 (the default)
    processes one delta per step exactly as Algorithm 3 writes it;
    larger values enable the micro-batched commit path (cancellation,
    run batching, aggregate netting -- see the module docstring).
    """

    def __init__(
        self,
        program: Program,
        db: Optional[Database] = None,
        on_commit: Optional[Callable[[Fact, int], None]] = None,
        use_plans: bool = True,
        stats: Optional[StatsCatalog] = None,
        batch_size: int = 1,
        provenance=None,
        metrics=None,
        tracer=None,
        profiler=None,
    ):
        self.program = program
        self.db = db if db is not None else Database.for_program(program)
        self.compiled = [CompiledRule(rule) for rule in program.rules if rule.body]
        self.strands = build_strands(self.compiled)
        self.use_plans = use_plans
        self.batch_size = max(1, int(batch_size))
        for strand_list in self.strands.values():
            for strand in strand_list:
                strand.attach_sources(self.db)
        if use_plans:
            if stats is None:
                stats = StatsCatalog.from_database(self.db)
            for strand_list in self.strands.values():
                for strand in strand_list:
                    strand.attach_plan(self.db, stats=stats)
        #: The catalog plans were costed against; live deployments feed
        #: observed cardinalities and churn back into it
        #: (``Cluster.refresh_stats``), the adaptive-cost-model input.
        self.stats_catalog = stats
        #: Predicates whose deltas must take the per-delta reference
        #: path even inside a chunk: any predicate that drives a strand
        #: also joining against itself (run batching would double- or
        #: under-count the self-join), plus subclass-specific exclusions.
        self._unbatchable = set(self._unbatchable_preds())
        for pred, strand_list in self.strands.items():
            for strand in strand_list:
                crule = strand.crule
                if any(
                    crule.body[index].pred == pred
                    for index in crule.literal_indexes
                    if index != strand.driver_index
                ):
                    self._unbatchable.add(pred)
                    break
        self.views: Dict[str, AggregateView] = {}
        self.argmin_views: Dict[str, ArgExtremeView] = {}
        for crule in self.compiled:
            if crule.aggregate is not None and crule.head.pred not in self.views:
                self.views[crule.head.pred] = AggregateView(
                    crule.head.pred, crule.aggregate
                )
            if crule.argmin is not None and crule.head.pred not in self.argmin_views:
                group_positions, value_position, func = crule.argmin
                self.argmin_views[crule.head.pred] = ArgExtremeView(
                    crule.head.pred, group_positions, value_position, func
                )
        self.queue: Deque[QueuedDelta] = deque()
        #: While True, rule firings keep their heads on this node (the
        #: distributed ``_emit`` override skips shipping).  Set around a
        #: fallback restore: the restored row is an old advertisement
        #: that must not re-announce itself to the network.
        self._local_only = False
        self.clock = 0
        self.inferences = 0
        self.steps = 0
        self.cancelled = 0
        self.on_commit = on_commit
        #: Optional :class:`~repro.provenance.store.ProvenanceRecorder`.
        #: Every hook site below is guarded by one ``None`` check, so
        #: the disabled path (the default) costs nothing.
        if provenance is not None:
            if provenance.clock is None:
                # Derive (never mutate) the caller's recorder: stamp
                # records with this engine's delta clock.
                provenance = provenance.bind(
                    clock=lambda: float(self.clock)
                )
            provenance.register_views(
                set(self.views) | set(self.argmin_views)
            )
        self.provenance = provenance
        #: Observability hooks (:mod:`repro.obs`), all ``None`` when
        #: the deployment was built without the corresponding flag.
        self.metrics = metrics
        self.tracer = tracer
        self.profiler = profiler
        #: Trace id of the delta currently being processed (always
        #: ``None`` when tracing is off); rule firings read it so every
        #: derived delta inherits its driver's trace.
        self._active_trace: Optional[int] = None

    def _unbatchable_preds(self):
        """Extra predicates the batched path must hand to the per-delta
        reference path (subclass hook; the distributed node runtime
        excludes its cache-intercepted query predicate)."""
        return ()

    # ------------------------------------------------------------------
    # External change API (base tables; Section 4's insert/delete/update)
    # ------------------------------------------------------------------
    def insert(self, pred: str, args: Tuple) -> None:
        """Insert a base tuple.  A primary-key match with different
        attributes (detected at commit) is an *update*: the old tuple is
        deleted first, exactly as "an update is treated as a deletion
        followed by an insertion"."""
        fact = Fact(pred, tuple(args))
        if self.provenance is not None:
            self.provenance.base(fact, 1)
        if self.tracer is not None:
            # Base-fact injection mints the trace id this delta (and
            # everything derived from it) will carry.
            self._enqueue(
                QueuedDelta(fact, 1, trace=self.tracer.mint(fact, 1))
            )
        else:
            self.derive(fact, 1)

    def delete(self, pred: str, args: Tuple) -> None:
        """Delete a base tuple outright (whatever its derivation count)."""
        fact = Fact(pred, tuple(args))
        if self.provenance is not None:
            self.provenance.base(fact, -1)
        trace = None
        if self.tracer is not None:
            trace = self.tracer.mint(fact, -1)
        self._enqueue(QueuedDelta(fact, -1, force=True, trace=trace))

    def update(self, pred: str, args: Tuple) -> None:
        """Alias of :meth:`insert`; replacement does the delete half."""
        self.insert(pred, args)

    # ------------------------------------------------------------------
    # Derivation sink (strand outputs and external inserts)
    # ------------------------------------------------------------------
    def derive(self, fact: Fact, weight: int) -> None:
        """Queue a weighted derivation (any nonzero integer; zero is a
        no-op).  Purely event-sourced: no table state is consulted or
        mutated here, so intents are interpreted at processing time
        against exactly the prefix of changes that precede them (this is
        what makes interleaved insert/delete bursts of Section 4
        confluent).  Strand firings always carry ``+-1`` (a visibility
        transition); larger magnitudes arrive from seeding, dead-peer
        invalidation and netted remote batches."""
        weight = int(weight)
        if weight:
            trace = self._active_trace
            if trace is not None:
                self.tracer.derive(fact, weight, trace)
            self._enqueue(QueuedDelta(fact, weight, trace=trace))

    # ------------------------------------------------------------------
    # Fixpoint driving
    # ------------------------------------------------------------------
    def fixpoint(self, max_steps: int = DEFAULT_MAX_STEPS) -> EvalResult:
        """Seed pre-loaded rows and program facts, then run the queue dry."""
        self.seed_existing()
        for fact in self.program.facts:
            values = tuple(
                eval_term(arg, {}, self.db.functions) for arg in fact.args
            )
            self.insert(fact.pred, values)
        self.run(max_steps=max_steps)
        return EvalResult(
            db=self.db, inferences=self.inferences, steps=self.steps,
            provenance=(self.provenance.store
                        if self.provenance is not None else None),
            program=self.program,
        )

    def seed_existing(self) -> None:
        """Move rows loaded before the engine existed onto the queue, so
        they flow through the same commit pipeline as everything else."""
        provenance = self.provenance
        for table in self.db.tables.values():
            for args in table.rows():
                count = table.count(args)
                table.force_delete(args)
                fact = Fact(table.name, args)
                if provenance is not None:
                    provenance.base(fact, count)
                self._enqueue(QueuedDelta(fact, count))

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Process queued deltas until quiescent; returns steps taken.

        The limit is exact: at most ``max_steps`` deltas are consumed
        off the queue (cancelled intents included), and the engine
        raises as soon as a further delta would exceed it (not one
        delta too late).
        """
        taken = 0
        chunk = self.batch_size
        while self.queue:
            if taken >= max_steps:
                raise EvaluationError(
                    f"PSN exceeded {max_steps} steps (non-terminating "
                    f"program?)",
                    engine="psn",
                )
            if chunk > 1:
                taken += self.process_chunk(min(chunk, max_steps - taken))
            else:
                self.process_next()
                taken += 1
        return taken

    def queue_slot_repairs(self) -> int:
        """Queue a restore intent for every *broken slot*: a primary key
        of a fallback table that has shadowed (superseded-but-
        outstanding) versions and no current row.  Returns the number of
        intents queued.

        This is the convergence watchdog's repair hook, and it must run
        only at a quiescence boundary (this engine's queue is dry and --
        in a distributed run -- nothing is in flight towards it):
        restoring eagerly amid churn re-advertises stale versions into
        latest-wins slots on a cyclic topology, and the feedback wave
        never dissipates.  At quiescence, an empty slot with outstanding
        shadowed versions is a genuine casualty of destructive
        replacement -- nothing upstream will ever refill it (its
        alternatives' support never changed, so no delta fires there).
        """
        queued = 0
        for table in self.db.tables.values():
            if not table.fallback:
                continue
            for key, bucket in table._shadow.items():
                if table.get_by_key(key) is not None or not bucket:
                    continue
                witness = next(iter(bucket))
                self._enqueue(
                    QueuedDelta(Fact(table.name, witness), 1, restore=True)
                )
                queued += 1
        return queued

    def run_batch(self, batch: int) -> int:
        """Process at most ``batch`` deltas (used by BSN scheduling)."""
        taken = 0
        chunk = self.batch_size
        while self.queue and taken < batch:
            if chunk > 1:
                taken += self.process_chunk(min(chunk, batch - taken))
            else:
                self.process_next()
                taken += 1
        return taken

    @property
    def quiescent(self) -> bool:
        return not self.queue

    def _enqueue(self, delta: QueuedDelta) -> None:
        """Append an intent to the FIFO queue (overridable: the
        distributed node runtime also schedules a processing tick)."""
        self.queue.append(delta)

    # ------------------------------------------------------------------
    # Core processing
    # ------------------------------------------------------------------
    def process_next(self) -> None:
        delta = self.queue.popleft()
        self.steps += 1
        if self.tracer is not None:
            self._active_trace = delta.trace
        if delta.restore:
            self._commit_restore(delta.fact)
        elif delta.weight > 0:
            self._commit_insert(delta.fact, delta.weight)
        else:
            self._commit_delete(delta.fact, -delta.weight, force=delta.force)

    # ------------------------------------------------------------------
    # Micro-batched processing (batch_size > 1)
    # ------------------------------------------------------------------
    def process_chunk(self, limit: int) -> int:
        """Drain up to ``limit`` deltas as one chunk; returns the number
        of deltas consumed off the queue (cancelled pairs included)."""
        queue = self.queue
        count = min(limit, len(queue))
        if count <= 1:
            if count:
                self.process_next()
            return count
        chunk = [queue.popleft() for _ in range(count)]
        self.steps += count
        # Netting can only change anything when the chunk mixes
        # directions; all-refresh or all-expiry bursts skip the scan
        # outright (and keep their per-intent TTL refreshes).
        has_plus = has_minus = False
        for delta in chunk:
            if delta.force or delta.restore:
                continue
            if delta.weight > 0:
                has_plus = True
            else:
                has_minus = True
        survivors = (
            self._net_chunk(chunk) if has_plus and has_minus else chunk
        )
        unbatchable = self._unbatchable
        tracing = self.tracer is not None
        index = 0
        end = len(survivors)
        while index < end:
            delta = survivors[index]
            pred = delta.fact.pred
            plus = delta.weight > 0
            if tracing:
                self._active_trace = delta.trace
            if delta.restore:
                self._commit_restore(delta.fact)
                index += 1
                continue
            if delta.force or pred in unbatchable:
                if plus:
                    self._commit_insert(delta.fact, delta.weight)
                else:
                    self._commit_delete(delta.fact, -delta.weight,
                                        force=delta.force)
                index += 1
                continue
            stop = index + 1
            while stop < end:
                nxt = survivors[stop]
                if (nxt.force or nxt.restore
                        or (nxt.weight > 0) != plus
                        or nxt.fact.pred != pred):
                    break
                stop += 1
            if stop - index == 1:
                if plus:
                    self._commit_insert(delta.fact, delta.weight)
                else:
                    self._commit_delete(delta.fact, -delta.weight)
            else:
                if plus:
                    run = [(survivors[i].fact, survivors[i].weight,
                            survivors[i].trace)
                           for i in range(index, stop)]
                    self._commit_insert_run(run)
                else:
                    run = [(survivors[i].fact, -survivors[i].weight,
                            survivors[i].trace)
                           for i in range(index, stop)]
                    self._commit_delete_run(run)
            index = stop
        return count

    def _net_chunk(self, chunk: List[QueuedDelta]) -> List[QueuedDelta]:
        """Net the chunk by Z-set addition before any table or strand
        work -- [Gupta et al. 93]'s count algorithm as a group law.

        Weights fold per primary-key *slot*, and only when folding is
        provably equivalent to sequential processing: every chunk
        intent on the slot must target one identical tuple (replacement
        and forced deletion are assignments, not group elements, so
        weights must not flow across them), none may be forced or a
        deferred restore, the table must not be soft-state (a
        re-insertion is a TTL refresh that must stay observable), and
        the stored row under the key -- if any -- must be that same
        tuple.  Stored counts floor at zero, so the folded weight also
        requires that no prefix of the slot's intents sums negative:
        sequentially those early withdrawals are a decrement *or* a
        floored no-op, which addition cannot predict.

        An eligible slot netting to zero annihilates outright (the
        sequential wave/unwave pairs end exactly where they started); a
        positive net commits as one weighted delta in the slot's first
        position.  Everything else replays intent-by-intent in original
        order."""
        table_of = self.db.table
        # slot -> [args, eligible, positions, folded-weight-or-None]
        groups: Dict[Tuple[str, Tuple], List] = {}
        slots: List[Tuple[str, Tuple]] = []
        for position, delta in enumerate(chunk):
            fact = delta.fact
            table = table_of(fact.pred)
            slot = (fact.pred, table.key_of(fact.args))
            slots.append(slot)
            group = groups.get(slot)
            if group is None:
                groups[slot] = [
                    fact.args,
                    not (delta.force or delta.restore)
                    and table.lifetime == INFINITY,
                    [position],
                    None,
                ]
            else:
                if delta.force or delta.restore or group[0] != fact.args:
                    group[1] = False
                group[2].append(position)
        for slot, group in groups.items():
            args, eligible, positions, _ = group
            if not eligible or len(positions) < 2:
                continue
            weight = low = 0
            for position in positions:
                weight += chunk[position].weight
                if weight < low:
                    low = weight
            if low < 0:
                continue
            table = table_of(slot[0])
            stored = table.get_by_key(slot[1])
            if stored is not None and stored != args:
                continue
            group[3] = weight
        survivors: List[QueuedDelta] = []
        netted = 0
        tracer = self.tracer
        for position, delta in enumerate(chunk):
            group = groups[slots[position]]
            weight = group[3]
            if weight is None:
                survivors.append(delta)
                continue
            if weight == 0:
                netted += 1
            elif position == group[2][0]:
                netted += len(group[2]) - 1
                # The folded intent keeps the first delta's trace (the
                # slot's other traces end here with a net span below).
                survivors.append(
                    QueuedDelta(delta.fact, weight, trace=delta.trace)
                )
                continue
            if tracer is not None and delta.trace is not None:
                # This intent was annihilated (or folded into the
                # slot's first position) by Z-set addition: its trace's
                # propagation ends at the queue.
                tracer.net(delta.fact, delta.weight, delta.trace)
        self.cancelled += netted
        return survivors

    def _commit_insert_run(
        self, items: List[Tuple[Fact, int, Optional[int]]]
    ) -> None:
        """Commit a run of same-predicate weighted insertions, then fire
        each strand once with the freshly visible facts.  Join-for-join
        identical to sequential processing: the predicate has no
        self-join strands (checked by the caller), so the deferred
        firings read partner tables this run never touches."""
        table = self.db.table(items[0][0].pred)
        on_commit = self.on_commit
        tracing = self.tracer is not None
        soft = table.lifetime != INFINITY
        pending: List[Fact] = []
        pending_traces: Optional[List] = [] if tracing else None
        for fact, weight, trace in items:
            if tracing:
                self._active_trace = trace
            args = fact.args
            if args in table:
                # More derivations of a visible fact: one count bump of
                # the whole weight + timestamp refresh (observable only
                # for soft-state TTL consumers, and as one refresh of
                # the whole weight).
                self.clock += 1
                table.insert(args, ts=self.clock, count=weight)
                if soft and on_commit is not None:
                    on_commit(fact, weight)
                continue
            old = table.get_by_key(table.key_of(args))
            if old is not None:
                # Replacement retracts the superseded row through the
                # sequential path; flush deferred firings first so the
                # retraction cannot overtake them (the old row may even
                # be a member of this very run).
                if pending:
                    self._fire_strands_batch(pending, 1, pending_traces)
                    pending = []
                    if tracing:
                        pending_traces = []
                if table.fallback:
                    self._supersede_visible(Fact(fact.pred, old),
                                            table.count(old))
                else:
                    self._retract_visible(Fact(fact.pred, old),
                                          table.count(old))
            self.clock += 1
            table.insert(args, ts=self.clock, count=weight)
            if table.fallback:
                table.absorb_shadow(args)
            if on_commit is not None:
                on_commit(fact, weight)
            pending.append(fact)
            if tracing:
                pending_traces.append(trace)
        if pending:
            self._fire_strands_batch(pending, 1, pending_traces)

    def _commit_delete_run(
        self, items: List[Tuple[Fact, int, Optional[int]]]
    ) -> None:
        """Commit a run of same-predicate (non-forced) weighted
        deletions -- ``count`` derivations withdrawn per fact -- then
        fire each strand once with the facts that lost visibility.
        Removing the tuples up front reproduces the sequential
        visibility rule ("a co-participant deleted later no longer sees
        it") because the run's facts never appear in each other's
        partner tables."""
        table = self.db.table(items[0][0].pred)
        on_commit = self.on_commit
        tracing = self.tracer is not None
        pending: List[Fact] = []
        pending_traces: Optional[List] = [] if tracing else None
        for fact, count, trace in items:
            if tracing:
                self._active_trace = trace
            current = table.count(fact.args)
            if current <= 0:
                # Superseded, never committed, or already gone; on a
                # fallback table this may withdraw a shadowed version.
                if table.fallback:
                    table.shadow_discard(fact.args, count)
                continue
            if current > count:
                table.delete(fact.args, count)
                continue
            if on_commit is not None:
                on_commit(fact, -current)
            if self.provenance is not None:
                self.provenance.retracted(fact)
            table.force_delete(fact.args)
            if table.fallback and count > current:
                # Surplus weight beyond the visible count withdraws
                # shadowed copies (see :meth:`_commit_delete`).
                table.shadow_discard(fact.args, count - current)
            pending.append(fact)
            if tracing:
                pending_traces.append(trace)
        if pending:
            self._fire_strands_batch(pending, -1, pending_traces)

    def _commit_insert(self, fact: Fact, weight: int = 1) -> None:
        table = self.db.table(fact.pred)
        if fact.args in table:
            # More derivations of a visible fact: bump its count by the
            # whole weight and refresh its timestamp to the current
            # clock.  For soft-state tables (finite lifetime) the
            # re-insertion is a *refresh* and must reach the TTL
            # observer (Section 4.2: "facts must be explicitly
            # reinserted ... with a new TTL").
            self.clock += 1
            table.insert(fact.args, ts=self.clock, count=weight)
            if table.lifetime != INFINITY and self.on_commit is not None:
                self.on_commit(fact, weight)
            return
        old = table.get_by_key(table.key_of(fact.args))
        if old is not None:
            # Primary-key replacement: retract the superseded tuple first.
            if table.fallback:
                self._supersede_visible(Fact(fact.pred, old),
                                        table.count(old))
            else:
                self._retract_visible(Fact(fact.pred, old),
                                      table.count(old))
        self.clock += 1
        table.insert(fact.args, ts=self.clock, count=weight)
        if table.fallback:
            table.absorb_shadow(fact.args)
        if self.on_commit is not None:
            self.on_commit(fact, weight)
        self._fire_strands(fact, 1)

    def _commit_delete(self, fact: Fact, count: int = 1,
                       force: bool = False) -> None:
        table = self.db.table(fact.pred)
        current = table.count(fact.args)
        if current <= 0:
            # Superseded, never committed, or already gone.  On a
            # fallback table the deletion may target a shadowed version:
            # its producer withdrew an advertisement that was never (or
            # no longer) current, so it must stop being a restore
            # candidate.
            if table.fallback:
                table.shadow_discard(fact.args, count)
            return
        if current > count and not force:
            table.delete(fact.args, count)
            return
        self._retract_visible(fact, current)
        if force and table.fallback:
            # A forced delete wipes the slot outright (base-table
            # semantics: superseded values never resurrect).
            table.clear_shadow(table.key_of(fact.args))
        elif table.fallback and count > current:
            # The withdrawal outweighs the visible count: the excess
            # targets shadowed copies of the same advertisement (e.g. a
            # dead peer's netted contributions), which must stop being
            # restore candidates -- exactly what the surplus unit
            # minuses did one at a time.
            table.shadow_discard(fact.args, count - current)

    def _retract_visible(self, fact: Fact, count: int = 1) -> None:
        """Remove a visible fact: run its deletion strands while it is
        still in the table (so partners see it), then drop it.
        ``count`` is the derivation count the row held -- the weighted
        magnitude its ``on_commit`` retraction reports."""
        if self.on_commit is not None:
            self.on_commit(fact, -count)
        self._fire_strands(fact, -1)
        if self.provenance is not None:
            # The row is dropped wholesale (replacement / forced delete /
            # last derivation); kill its remaining live support.
            self.provenance.retracted(fact)
        self.db.table(fact.pred).force_delete(fact.args)

    def _supersede_visible(self, fact: Fact, count: int = 1) -> None:
        """Displace the current row of a keyed slot.  Downstream
        consumers see a retraction (only the latest version of a slot is
        visible), but the derivation stays outstanding in the table's
        shadow: its producer never withdrew it, only the replacement
        displaced it, so a later withdrawal of the replacement falls
        back to it (:meth:`_restore_fallback`)."""
        if self.on_commit is not None:
            self.on_commit(fact, -count)
        self._fire_strands(fact, -1)
        if self.provenance is not None:
            self.provenance.retracted(fact)
        self.db.table(fact.pred).supersede(fact.args)

    def _commit_restore(self, fact: Fact) -> None:
        """Process a deferred restore intent: if the keyed slot ``fact``
        was retracted from is *still* empty (no replacement landed while
        the intent waited in the queue), re-materialize its latest
        shadowed version."""
        table = self.db.table(fact.pred)
        key = table.key_of(fact.args)
        if table.get_by_key(key) is not None:
            return  # a newer version already refilled the slot
        self._restore_fallback(table, key)

    def _restore_fallback(self, table, key: Tuple) -> None:
        """A keyed slot lost its visible row and nothing refilled it.
        If older advertisements for the slot are still outstanding, the
        most recent one becomes current again -- without this, a slot
        whose latest version is withdrawn goes empty even though a
        perfectly live alternative derivation was destructively
        superseded earlier, and nothing upstream will ever re-send it
        (its support never changed, so no delta fires there).

        The restore propagates *locally only*: its strands fire (so
        same-node consumers -- e.g. a query projection -- are made
        whole), but remote heads are not shipped.  The restored row is
        an **old** advertisement: when it was displaced, its ``-1``
        already propagated and downstream slots moved on to newer
        versions, so re-announcing it would override them with stale
        state and (on a cyclic topology) feed an oscillation that never
        damps.  Future derivations join against the restored row
        normally, and a later withdrawal of it fires full ``-1``
        strands, which downstream treats as an exact-args miss (a
        no-op, per the count discipline)."""
        entry = table.pop_fallback(key)
        if entry is None:
            return
        args, _count = entry
        # Restore with a fresh single-derivation count: the superseded
        # support was already marked retracted when the version was
        # displaced, and the repair's own "<fallback>" record is its one
        # live justification (keeps the provenance audit exact).
        self.clock += 1
        table.insert(args, ts=self.clock)
        fact = Fact(table.name, args)
        if self.on_commit is not None:
            self.on_commit(fact, 1)
        if self.provenance is not None:
            self.provenance.record_fact("<fallback>", fact, (), 1)
        self._local_only = True
        try:
            self._fire_strands(fact, 1)
        finally:
            self._local_only = False

    def _fire_strands(self, fact: Fact, sign: int) -> None:
        for strand in self.strands.get(fact.pred, ()):
            self._fire_strand(strand, fact, sign)

    def _fire_strand(self, strand: Strand, fact: Fact, sign: int) -> None:
        crule = strand.crule
        functions = self.db.functions
        capture = self.provenance
        profiler = self.profiler
        started = perf_counter() if profiler is not None else 0.0
        inferences = 0
        if strand.plan is not None:
            seed = strand.driver_step.match(fact.args, {}, functions)
            if seed is not None:
                emit = self._emit
                instantiate = crule.instantiate
                if capture is None:
                    for bindings in strand.bound_executor(
                        seed, None, functions, fact, None
                    ):
                        inferences += 1
                        emit(crule, instantiate(bindings, functions), sign)
                else:
                    for bindings in strand.bound_executor(
                        seed, None, functions, fact, None
                    ):
                        inferences += 1
                        head = instantiate(bindings, functions)
                        capture.capture(crule, bindings, head, sign,
                                        functions)
                        emit(crule, head, sign)
        else:
            seed = unify_literal(
                strand.driver_literal, fact.args, {}, functions
            )
            if seed is not None:
                for bindings in solve(
                    crule,
                    strand.sources,
                    functions,
                    bindings=seed,
                    skip_index=strand.driver_index,
                    skip_fact=fact,
                ):
                    inferences += 1
                    head = instantiate_head(crule, bindings, functions)
                    if capture is not None:
                        capture.capture(crule, bindings, head, sign,
                                        functions)
                    self._emit(crule, head, sign)
        self.inferences += inferences
        if profiler is not None:
            profiler.add(crule.label, strand.driver_literal.pred,
                         perf_counter() - started)
        if inferences and self.metrics is not None:
            self._note_firing(crule.label, inferences)

    def _note_firing(self, label: str, inferences: int) -> None:
        """Metrics push: one productive strand invocation (kept out of
        the firing loop so the disabled path stays a single check)."""
        metrics = self.metrics
        firings = metrics.rule_firings
        firings[label] = firings.get(label, 0) + 1
        counts = metrics.rule_inferences
        counts[label] = counts.get(label, 0) + inferences

    def _fire_strands_batch(self, facts: List[Fact], sign: int,
                            traces: Optional[List] = None) -> None:
        """Fire every strand of the run's predicate once with the whole
        list of driving facts (the batched counterpart of
        :meth:`_fire_strands`).  ``traces`` (tracing only) carries each
        fact's trace id so derived deltas inherit their own driver's
        trace even inside a batched firing."""
        for strand in self.strands.get(facts[0].pred, ()):
            self._fire_strand_batch(strand, facts, sign, traces)

    def _fire_strand_batch(self, strand: Strand, facts: List[Fact],
                           sign: int, traces: Optional[List] = None) -> None:
        crule = strand.crule
        functions = self.db.functions
        capture = self.provenance
        profiler = self.profiler
        started = perf_counter() if profiler is not None else 0.0
        batch_view = crule.aggregate is not None or crule.argmin is not None
        heads: Optional[List[Tuple]] = [] if batch_view else None
        inferences = 0
        if strand.plan is not None:
            match = strand.driver_step.match
            executor = strand.bound_executor
            instantiate = crule.instantiate
            emit = self._emit
            for position, fact in enumerate(facts):
                if traces is not None:
                    self._active_trace = traces[position]
                seed = match(fact.args, {}, functions)
                if seed is None:
                    continue
                for bindings in executor(seed, None, functions, fact, None):
                    inferences += 1
                    head = instantiate(bindings, functions)
                    if capture is not None:
                        capture.capture(crule, bindings, head, sign,
                                        functions)
                    if batch_view:
                        heads.append(head)
                    else:
                        emit(crule, head, sign)
        else:
            driver_literal = strand.driver_literal
            sources = strand.sources
            driver_index = strand.driver_index
            for position, fact in enumerate(facts):
                if traces is not None:
                    self._active_trace = traces[position]
                seed = unify_literal(driver_literal, fact.args, {}, functions)
                if seed is None:
                    continue
                for bindings in solve(
                    crule, sources, functions, bindings=seed,
                    skip_index=driver_index, skip_fact=fact,
                ):
                    inferences += 1
                    head = instantiate_head(crule, bindings, functions)
                    if capture is not None:
                        capture.capture(crule, bindings, head, sign,
                                        functions)
                    if batch_view:
                        heads.append(head)
                    else:
                        self._emit(crule, head, sign)
        self.inferences += inferences
        if batch_view and heads:
            # Net view outputs for the whole batch.  Under tracing the
            # netted group-value changes are attributed to the last
            # contributing driver's trace -- an approximation (a net
            # change can mix contributions from several traces).
            pred = crule.head.pred
            if crule.aggregate is not None:
                view = self.views[pred]
            else:
                view = self.argmin_views[pred]
            for view_sign, view_args in view.apply_many(heads, sign):
                self.derive(Fact(pred, view_args), view_sign)
        if profiler is not None:
            profiler.add(crule.label, strand.driver_literal.pred,
                         perf_counter() - started)
        if inferences and self.metrics is not None:
            self._note_firing(crule.label, inferences)

    def _emit(self, crule: CompiledRule, head: Tuple, sign: int) -> None:
        """Route a rule firing to its head relation (virtual: the
        distributed runtime overrides this to ship remote heads)."""
        pred = crule.head.pred
        if crule.aggregate is not None:
            view = self.views[pred]
            for view_sign, view_args in view.apply(head, sign):
                self.derive(Fact(pred, view_args), view_sign)
            return
        if crule.argmin is not None:
            view = self.argmin_views[pred]
            for view_sign, view_args in view.apply(head, sign):
                self.derive(Fact(pred, view_args), view_sign)
            return
        self.derive(Fact(pred, head), sign)


def evaluate(
    program: Program,
    db: Optional[Database] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    use_plans: bool = True,
    batch_size: int = 1,
    provenance=None,
    profiler=None,
) -> EvalResult:
    """Run ``program`` to fixpoint with PSN and return the result.

    ``profiler`` (an :class:`repro.obs.Profiler`) accumulates
    per-strand CPU time for the run when given."""
    engine = PSNEngine(program, db=db, use_plans=use_plans,
                       batch_size=batch_size, provenance=provenance,
                       profiler=profiler)
    return engine.fixpoint(max_steps=max_steps)

"""Fact and delta representations shared by all evaluation engines.

A *fact* is a predicate name plus a tuple of ground values.  A *delta*
is a **weighted** fact: facts with integer weights form a Z-set (a
generalized multiset over the abelian group of integers, as in DBSP),
and every change is expressed in that algebra -- ``weight=+1`` for an
insertion, ``-1`` for a deletion, and an update is the pair ``{-1 old,
+1 new}``, exactly the incremental view-maintenance reading of Section
4 of the paper ("an update is treated as a deletion followed by an
insertion").  Weights beyond +-1 arise from netting: a batch of changes
to the same fact collapses to the sum of its weights, so cancellation
is simply addition.

``ts`` is the local, monotonically increasing timestamp PSN assigns at
enqueue time; the join discipline "match only tuples with the same or
older timestamp" (Section 3.3.2) is what makes PSN avoid repeated
inferences (Theorem 2).
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

INSERT = 1
DELETE = -1


class Fact(NamedTuple):
    pred: str
    args: Tuple

    def __repr__(self) -> str:
        return f"{self.pred}({', '.join(map(repr, self.args))})"


class Delta(NamedTuple):
    """A weighted fact (one Z-set entry) with its PSN timestamp."""

    fact: Fact
    weight: int
    ts: int

    @property
    def pred(self) -> str:
        return self.fact.pred

    @property
    def args(self) -> Tuple:
        return self.fact.args

    @property
    def sign(self) -> int:
        """The weight's sign -- the signed-delta view of this entry
        (kept for the ``batch_size=1`` reference path and older
        call sites that only branch on direction)."""
        return 1 if self.weight > 0 else -1

    def __repr__(self) -> str:
        return f"{self.weight:+d} {self.fact!r}@{self.ts}"

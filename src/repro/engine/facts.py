"""Fact and delta representations shared by all evaluation engines.

A *fact* is a predicate name plus a tuple of ground values.  A *delta* is
a signed fact: ``sign=+1`` for insertion, ``sign=-1`` for deletion, as in
the incremental view-maintenance machinery of Section 4 of the paper
("an update is treated as a deletion followed by an insertion").

``ts`` is the local, monotonically increasing timestamp PSN assigns at
enqueue time; the join discipline "match only tuples with the same or
older timestamp" (Section 3.3.2) is what makes PSN avoid repeated
inferences (Theorem 2).
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

INSERT = 1
DELETE = -1


class Fact(NamedTuple):
    pred: str
    args: Tuple

    def __repr__(self) -> str:
        return f"{self.pred}({', '.join(map(repr, self.args))})"


class Delta(NamedTuple):
    fact: Fact
    sign: int
    ts: int

    @property
    def pred(self) -> str:
        return self.fact.pred

    @property
    def args(self) -> Tuple:
        return self.fact.args

    def __repr__(self) -> str:
        symbol = "+" if self.sign > 0 else "-"
        return f"{symbol}{self.fact!r}@{self.ts}"

"""A database instance: the set of tables backing one NDlog program.

``Database.for_program`` derives the schema from the program text:

* arities come from predicate usage;
* primary keys come from ``materialize`` declarations when present;
* link relations (Definition 2) default to a key on their first two
  attributes (source and destination address), so a re-inserted link
  tuple with a new cost *replaces* the old one -- this is how link
  updates enter the system in Section 4;
* the head relation of an aggregate rule defaults to a key on its group
  attributes, so a changed aggregate value replaces the stale one;
* every other relation defaults to a key on all attributes (the paper's
  "in the absence of other information" rule).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.errors import SchemaError
from repro.ndlog.ast import Program
from repro.ndlog.functions import default_functions
from repro.engine.table import INFINITY, Table


class Database:
    def __init__(self, functions: Optional[dict] = None):
        self.tables: Dict[str, Table] = {}
        self.functions = dict(functions) if functions else default_functions()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def for_program(
        cls,
        program: Program,
        functions: Optional[dict] = None,
        extra_arities: Optional[Dict[str, int]] = None,
    ) -> "Database":
        db = cls(functions=functions)
        arities = program.predicates()
        if extra_arities:
            for pred, arity in extra_arities.items():
                if arities.setdefault(pred, arity) != arity:
                    raise SchemaError(f"conflicting arity for {pred!r}")

        link_preds = program.link_predicates()
        agg_keys: Dict[str, Tuple[int, ...]] = {}
        for rule in program.rules:
            agg = rule.head_aggregate()
            if agg is None:
                continue
            position, _spec = agg
            group = tuple(
                i for i in range(rule.head.arity) if i != position
            )
            existing = agg_keys.get(rule.head.pred)
            if existing is not None and existing != group:
                raise SchemaError(
                    f"inconsistent aggregate keys for {rule.head.pred!r}"
                )
            agg_keys[rule.head.pred] = group

        head_preds = {rule.head.pred for rule in program.rules}
        for pred, arity in arities.items():
            declared = program.materializations.get(pred)
            fallback = False
            if declared is not None:
                key = declared.key_indexes()
                lifetime = declared.lifetime
                # A declared key on a rule-derived relation makes each
                # slot a *latest advertisement* cell fed by independent
                # derivations; shadow superseded versions so withdrawing
                # the current one falls back to a still-outstanding
                # alternative instead of leaving the slot empty.
                fallback = pred in head_preds
            elif pred in agg_keys:
                key, lifetime = agg_keys[pred], INFINITY
            elif pred in link_preds and arity >= 2:
                key, lifetime = (0, 1), INFINITY
            else:
                key, lifetime = (), INFINITY
            db.tables[pred] = Table(pred, arity, key=key, lifetime=lifetime,
                                    fallback=fallback)

        # Declared-only tables (materialize without any rule usage).
        for pred, declared in program.materializations.items():
            if pred not in db.tables:
                if not declared.keys:
                    raise SchemaError(
                        f"materialize({pred!r}) without keys and without "
                        f"usage: arity unknown"
                    )
                arity = max(declared.keys)
                db.tables[pred] = Table(
                    pred, arity, key=declared.key_indexes(),
                    lifetime=declared.lifetime,
                )
        return db

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def table(self, pred: str) -> Table:
        try:
            return self.tables[pred]
        except KeyError:
            raise SchemaError(f"unknown relation {pred!r}") from None

    def ensure_table(self, pred: str, arity: int, key: Tuple[int, ...] = ()) -> Table:
        table = self.tables.get(pred)
        if table is None:
            table = Table(pred, arity, key=key)
            self.tables[pred] = table
        return table

    def load_facts(self, pred: str, rows: Iterable[Tuple]) -> None:
        """Bulk-load base tuples (timestamp 0, derivation count 1)."""
        table = self.table(pred)
        for row in rows:
            table.insert(tuple(row))

    def load_weighted(
        self, pred: str, entries: Iterable[Tuple[Tuple, int]]
    ) -> None:
        """Bulk-load a Z-set: ``(args, weight)`` entries with positive
        integer weights, stored as derivation counts in one shot."""
        table = self.table(pred)
        for row, weight in entries:
            if weight <= 0:
                raise SchemaError(
                    f"load_weighted({pred!r}): weight must be positive, "
                    f"got {weight!r} for {row!r}"
                )
            table.insert(tuple(row), count=weight)

    def rows(self, pred: str):
        return self.table(pred).rows()

    def snapshot(self) -> Dict[str, frozenset]:
        """Frozen view of all table contents, for comparisons in tests."""
        return {
            name: frozenset(table.rows()) for name, table in self.tables.items()
        }

"""Shared result type and helpers for the fixpoint engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.engine.database import Database
from repro.errors import PlanError
from repro.ndlog.ast import Program
from repro.ndlog.terms import evaluate


@dataclass
class EvalResult:
    """Outcome of running a program to fixpoint.

    ``inferences`` counts rule firings (joint derivations); Theorem 2's
    "no repeated inferences" is checked by comparing this across engines.

    When the run captured provenance (``compile(..., provenance=True)``)
    ``provenance`` holds the populated
    :class:`~repro.provenance.store.ProvenanceStore` and :meth:`why` /
    :meth:`why_not` query it; ``program`` is the (rewritten) program the
    engine evaluated, kept for the failed-body analysis.
    """

    db: Database
    iterations: int = 0
    inferences: int = 0
    steps: int = 0
    provenance: Optional[object] = None
    program: Optional[Program] = None

    def table(self, pred: str):
        return self.db.table(pred)

    def rows(self, pred: str) -> FrozenSet:
        return frozenset(self.db.table(pred).rows())

    def answers(self, program: Program) -> FrozenSet:
        """Rows of the program's query predicate (all rows if no query)."""
        if program.query is None:
            raise PlanError("program has no query")
        return self.rows(program.query.pred)

    # -- provenance queries ---------------------------------------------
    def why(self, pred: str, args, max_depth: int = 128):
        """Derivation tree for ``pred(args)`` (see
        :func:`repro.provenance.why`); requires the run to have captured
        provenance."""
        if self.provenance is None:
            raise PlanError(
                "run was not executed with provenance capture; "
                "compile(..., provenance=True) or run(provenance=True)"
            )
        from repro.provenance import why as _why

        return _why(self.provenance, pred, tuple(args), max_depth=max_depth)

    def why_not(self, pred: str, args, depth: int = 2):
        """Failed-body analysis for the absent ``pred(args)`` (``None``
        entries are wildcards); works with or without capture."""
        if self.program is None:
            raise PlanError(
                "result carries no program; why_not needs the rule set"
            )
        from repro.provenance import why_not as _why_not

        return _why_not(
            self.program,
            lambda p: (self.db.tables[p].rows()
                       if p in self.db.tables else ()),
            pred,
            tuple(args),
            functions=self.db.functions,
            depth=depth,
        )


def load_program_facts(program: Program, db: Database) -> None:
    """Install the program's ground facts as base tuples."""
    for fact in program.facts:
        values = tuple(
            evaluate(arg, {}, db.functions) for arg in fact.args
        )
        db.table(fact.pred).insert(values)


def idb_of(program: Program) -> frozenset:
    return program.idb_predicates()

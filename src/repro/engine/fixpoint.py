"""Shared result type and helpers for the fixpoint engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from repro.engine.database import Database
from repro.errors import PlanError
from repro.ndlog.ast import Program
from repro.ndlog.terms import Constant, evaluate


@dataclass
class EvalResult:
    """Outcome of running a program to fixpoint.

    ``inferences`` counts rule firings (joint derivations); Theorem 2's
    "no repeated inferences" is checked by comparing this across engines.
    """

    db: Database
    iterations: int = 0
    inferences: int = 0
    steps: int = 0

    def table(self, pred: str):
        return self.db.table(pred)

    def rows(self, pred: str) -> FrozenSet:
        return frozenset(self.db.table(pred).rows())

    def answers(self, program: Program) -> FrozenSet:
        """Rows of the program's query predicate (all rows if no query)."""
        if program.query is None:
            raise PlanError("program has no query")
        return self.rows(program.query.pred)


def load_program_facts(program: Program, db: Database) -> None:
    """Install the program's ground facts as base tuples."""
    for fact in program.facts:
        values = tuple(
            evaluate(arg, {}, db.functions) for arg in fact.args
        )
        db.table(fact.pred).insert(values)


def idb_of(program: Program) -> frozenset:
    return program.idb_predicates()

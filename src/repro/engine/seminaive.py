"""Semi-naive (SN) evaluation -- Algorithm 1 of the paper.

Input tuples computed in the previous iteration are used as input in the
current iteration; any tuple generated for the first time is input to
the next.  The delta-rule form follows the paper's footnote 2::

    d_p_new :- p_old_1, ..., p_old_{k-1}, d_p_old_k, p_{k+1}, ..., p_n,
               b_1, ..., b_m

i.e. literals *before* the delta position range over tuples generated
before the previous iteration, the delta position ranges over the
previous iteration's new tuples, and literals *after* it range over
everything so far -- which "avoids redundant inferences within each
iteration".

With ``use_plans=True`` (the default) one join plan is compiled per
``(rule, delta_position)`` pair -- leading with the delta literal, by
far the smallest source -- and reused across iterations; the source
partitioning above is unchanged (each literal still reads from its
old/delta/full source by original body position, whatever order the
plan joins them in).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.errors import EvaluationError
from repro.engine.aggregates import AggregateView
from repro.engine.database import Database
from repro.engine.fixpoint import EvalResult, load_program_facts
from repro.engine.rules import (
    CompiledRule,
    SetSource,
    compile_plan,
    rule_head as _head_of,
    rule_solutions as _solutions,
)
from repro.engine.stratify import Stratum, stratify
from repro.ndlog.ast import Program
from repro.opt.costbased import StatsCatalog

DEFAULT_MAX_ITERATIONS = 10_000


def evaluate(
    program: Program,
    db: Optional[Database] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    use_plans: bool = True,
    provenance=None,
) -> EvalResult:
    if db is None:
        db = Database.for_program(program)
    load_program_facts(program, db)
    result = EvalResult(db=db, program=program)
    if provenance is not None:
        from repro.engine.naive import seed_base_provenance

        provenance = seed_base_provenance(provenance, program, db)
        result.provenance = provenance.store

    for stratum in stratify(program):
        _evaluate_stratum(program, db, stratum, result, max_iterations,
                          use_plans, provenance=provenance)
    return result


def _evaluate_stratum(
    program: Program,
    db: Database,
    stratum: Stratum,
    result: EvalResult,
    max_iterations: int,
    use_plans: bool = True,
    provenance=None,
) -> None:
    compiled = [CompiledRule(rule) for rule in stratum.rules]
    plain = [c for c in compiled
             if c.aggregate is None and c.argmin is None]
    aggregated = [c for c in compiled if c.aggregate is not None]
    argmins = [c for c in compiled if c.argmin is not None]
    recursive_preds = stratum.preds

    stats = StatsCatalog.from_database(db) if use_plans else None

    def make_plan(crule, lead_index=None):
        if not use_plans:
            return None
        plan = compile_plan(crule, lead_index=lead_index, stats=stats)
        # Pre-register the probed indexes on the stored tables; the
        # per-iteration delta/old SetSources index themselves lazily.
        for pred, positions in plan.index_requests():
            if pred in db.tables:
                db.table(pred).register_index(positions)
        return plan

    #: Full-table plans for the base case, aggregates and argmins.
    base_plans = {id(c): make_plan(c) for c in compiled}
    #: (rule id, delta position) -> plan leading with the delta literal.
    delta_plans: Dict[Tuple[int, int], object] = {}

    # ------------------------------------------------------------------
    # Base case: "execute all the rules to generate the initial pk tuples,
    # which are inserted into the corresponding Bk buffers" (Section 3.1).
    # At this point the tables for this stratum's predicates are empty, so
    # rules with recursive body literals contribute nothing yet.
    # ------------------------------------------------------------------
    buffers: Dict[str, Set[Tuple]] = {pred: set() for pred in recursive_preds}
    # Pre-loaded facts of this stratum's own predicates (e.g. magic seed
    # tuples) are iteration-0 deltas: move them into the buffers so the
    # delta rules see them.
    for pred in recursive_preds:
        table = db.table(pred)
        rows = table.rows()
        for args in rows:
            table.force_delete(args)
        buffers[pred].update(rows)
    for crule in plain:
        table = db.table(crule.head.pred)
        rule_sources = {
            index: db.table(crule.body[index].pred)
            for index in crule.literal_indexes
        }
        plan = base_plans[id(crule)]
        for bindings in _solutions(crule, rule_sources, db.functions, plan):
            result.inferences += 1
            head = _head_of(crule, bindings, db.functions, plan)
            if provenance is not None:
                provenance.capture(crule, bindings, head, 1, db.functions)
            if head not in table and head not in buffers[crule.head.pred]:
                buffers[crule.head.pred].add(head)

    old: Dict[str, Set[Tuple]] = {pred: set() for pred in recursive_preds}

    # ------------------------------------------------------------------
    # Iterate Algorithm 1's while loop.
    # ------------------------------------------------------------------
    iterations = 0
    while any(buffers.values()):
        iterations += 1
        if iterations > max_iterations:
            raise EvaluationError(
                f"semi-naive evaluation exceeded {max_iterations} iterations "
                f"on stratum {sorted(stratum.preds)}",
                engine="seminaive",
            )
        # Flush: the previous iteration's new tuples become the deltas,
        # and are now visible in the full tables.
        delta: Dict[str, Set[Tuple]] = {}
        for pred, buffered in buffers.items():
            delta[pred] = buffered
            table = db.table(pred)
            for args in buffered:
                table.insert(args)
        buffers = {pred: set() for pred in recursive_preds}
        delta_sources = {pred: SetSource(sorted(rows)) for pred, rows in delta.items()}
        old_sources = {pred: SetSource(sorted(rows)) for pred, rows in old.items()}

        for crule in plain:
            head_pred = crule.head.pred
            table = db.table(head_pred)
            recursive_positions = [
                index
                for index in crule.literal_indexes
                if crule.body[index].pred in recursive_preds
            ]
            for delta_position in recursive_positions:
                if not delta[crule.body[delta_position].pred]:
                    continue
                rule_sources: Dict[int, object] = {}
                for index in crule.literal_indexes:
                    pred = crule.body[index].pred
                    if pred not in recursive_preds:
                        rule_sources[index] = db.table(pred)
                    elif index < delta_position:
                        rule_sources[index] = old_sources[pred]
                    elif index == delta_position:
                        rule_sources[index] = delta_sources[pred]
                    else:
                        rule_sources[index] = db.table(pred)
                plan = None
                if use_plans:
                    plan_key = (id(crule), delta_position)
                    plan = delta_plans.get(plan_key)
                    if plan is None:
                        plan = make_plan(crule, lead_index=delta_position)
                        delta_plans[plan_key] = plan
                for bindings in _solutions(crule, rule_sources,
                                           db.functions, plan):
                    result.inferences += 1
                    head = _head_of(crule, bindings, db.functions, plan)
                    if provenance is not None:
                        provenance.capture(crule, bindings, head, 1,
                                           db.functions)
                    if head not in table and head not in buffers[head_pred]:
                        buffers[head_pred].add(head)

        for pred, rows in delta.items():
            old[pred] |= rows
    result.iterations += iterations

    # ------------------------------------------------------------------
    # Aggregates over the completed stratum inputs.
    # ------------------------------------------------------------------
    for crule in aggregated:
        view = AggregateView(crule.head.pred, crule.aggregate)
        rule_sources = {
            index: db.table(crule.body[index].pred)
            for index in crule.literal_indexes
        }
        plan = base_plans[id(crule)]
        for bindings in _solutions(crule, rule_sources, db.functions, plan):
            result.inferences += 1
            contribution = _head_of(crule, bindings, db.functions, plan)
            if provenance is not None:
                provenance.capture(crule, bindings, contribution, 1,
                                   db.functions)
            view.apply(contribution, 1)
        table = db.table(crule.head.pred)
        for head in view.current_rows():
            if head not in table:
                table.insert(head)

    from repro.engine.naive import _materialize_argmin

    for crule in argmins:
        _materialize_argmin(db, crule, result, plan=base_plans[id(crule)],
                            provenance=provenance)

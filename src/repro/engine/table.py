"""Materialized tables with primary keys, derivation counts, timestamps,
and lazily maintained secondary indexes.

Semantics follow P2 (Section 2 of the paper):

* every relation has a primary key; in the absence of a declaration the
  key is the full set of attributes;
* inserting a tuple whose key matches an existing tuple with *different*
  non-key attributes **replaces** it (this is how a link-cost update or a
  neighbour's new best-path advertisement supersedes the old value);
* re-inserting an identical tuple increments its *derivation count* (the
  count algorithm of [Gupta et al. 93], used in Section 4); a tuple is
  only removed when its count drops to zero.

Storage is multiplicity-aware throughout: a table is a Z-set whose
entries are the stored tuples with positive integer weights (the
derivation counts), and a tuple is *visible* exactly while its weight
is positive.  :meth:`insert` and :meth:`delete` take a ``count`` so a
netted weighted delta commits as one arithmetic adjustment rather than
a run of unit bumps.

Mutating methods return the list of externally visible deltas
(``(sign, args)`` pairs) -- visibility *transitions*, always weight
``+-1`` -- which is exactly what the semi-naive engines propagate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError

INFINITY = float("inf")


class Table:
    """One stored relation."""

    def __init__(
        self,
        name: str,
        arity: int,
        key: Sequence[int] = (),
        lifetime: float = INFINITY,
        fallback: bool = False,
    ):
        if arity <= 0:
            raise SchemaError(f"table {name!r} must have positive arity")
        for position in key:
            if not 0 <= position < arity:
                raise SchemaError(
                    f"table {name!r}: key position {position} out of range"
                )
        self.name = name
        self.arity = arity
        #: 0-based key positions; empty declaration means "all attributes".
        self.key: Tuple[int, ...] = tuple(key) or tuple(range(arity))
        self.lifetime = lifetime
        self._full_key = self.key == tuple(range(arity))
        #: Shadow superseded slot versions so the latest outstanding one
        #: can be restored when the current row is withdrawn.  Only
        #: meaningful for keyed tables that rules derive into, where a
        #: slot aggregates independently-derived versions (a neighbour's
        #: successive advertisements); full-key or soft-state tables
        #: never shadow.
        self.fallback = (
            fallback and not self._full_key and lifetime == INFINITY
        )
        #: key value -> stored args
        self._rows: Dict[Tuple, Tuple] = {}
        #: args -> derivation count
        self._counts: Dict[Tuple, int] = {}
        #: args -> timestamp of (re-)insertion
        self._ts: Dict[Tuple, int] = {}
        #: key value -> {superseded args -> derivation count}, in
        #: displacement order (most recent last).
        self._shadow: Dict[Tuple, Dict[Tuple, int]] = {}
        #: positions tuple -> (value tuple -> set of args)
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple, Set[Tuple]]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, args: Tuple) -> bool:
        return args in self._counts

    def rows(self) -> List[Tuple]:
        """All stored tuples (stable order not guaranteed)."""
        return list(self._rows.values())

    def count(self, args: Tuple) -> int:
        return self._counts.get(args, 0)

    def ts(self, args: Tuple) -> int:
        return self._ts.get(args, -1)

    def key_of(self, args: Tuple) -> Tuple:
        if self._full_key:
            return args
        return tuple(args[i] for i in self.key)

    def get_by_key(self, key_values: Tuple) -> Optional[Tuple]:
        """The stored tuple matching a primary-key value, if any."""
        return self._rows.get(key_values)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, args: Tuple, ts: int = 0, count: int = 1) -> List[Tuple[int, Tuple]]:
        """Insert ``args``; return visible deltas.

        * brand-new tuple                -> ``[(+1, args)]``
        * duplicate derivation           -> ``[]`` (count incremented)
        * primary-key replacement        -> ``[(-1, old), (+1, args)]``
        """
        args = tuple(args)
        if len(args) != self.arity:
            raise SchemaError(
                f"table {self.name!r}: arity {self.arity} but got {args!r}"
            )
        if args in self._counts:
            # Duplicate derivation: bump the count *and* refresh the
            # timestamp -- a re-inserted fact is a refresh (Section 4.2:
            # soft-state facts "must be explicitly reinserted ... with a
            # new TTL"), and ``ts_limit`` consumers must see the latest
            # (re-)insertion time.  Refreshes only move forward: callers
            # that omit ``ts`` (default 0) must not rewind an existing
            # stamp (use :meth:`restamp` for forced reassignment).
            self._counts[args] += count
            if ts > self._ts.get(args, -1):
                self._ts[args] = ts
            return []
        deltas: List[Tuple[int, Tuple]] = []
        key = self.key_of(args)
        old = self._rows.get(key)
        if old is not None:
            # Primary-key replacement: the old tuple is superseded outright
            # (its derivation count does not protect it -- the new value is
            # the current state of the world, e.g. an updated link cost).
            self._remove(old)
            deltas.append((-1, old))
        self._rows[key] = args
        self._counts[args] = count
        self._ts[args] = ts
        for positions, index in self._indexes.items():
            projected = tuple(args[i] for i in positions)
            bucket = index.get(projected)
            if bucket is None:
                index[projected] = {args}
            else:
                bucket.add(args)
        deltas.append((1, args))
        return deltas

    def delete(self, args: Tuple, count: int = 1) -> List[Tuple[int, Tuple]]:
        """Remove one (or ``count``) derivations of ``args``.

        Returns ``[(-1, args)]`` when the tuple disappears, else ``[]``.
        Deleting an absent tuple is a no-op (deletions may race with
        replacements in a distributed run).
        """
        args = tuple(args)
        current = self._counts.get(args)
        if current is None:
            return []
        if current > count:
            self._counts[args] = current - count
            return []
        self._remove(args)
        return [(-1, args)]

    def force_delete(self, args: Tuple) -> List[Tuple[int, Tuple]]:
        """Remove ``args`` entirely regardless of derivation count."""
        args = tuple(args)
        if args not in self._counts:
            return []
        self._remove(args)
        return [(-1, args)]

    # ------------------------------------------------------------------
    # Slot shadows (fallback tables only)
    # ------------------------------------------------------------------
    def supersede(self, args: Tuple) -> None:
        """Displace the stored tuple ``args`` into its key's shadow,
        preserving its derivation count: the version is still
        *outstanding* (whoever derived it has not withdrawn it), it is
        merely no longer the slot's current value."""
        args = tuple(args)
        count = self._counts.get(args)
        if count is None:
            return
        key = self.key_of(args)
        self._remove(args)
        bucket = self._shadow.setdefault(key, {})
        count += bucket.pop(args, 0)
        bucket[args] = count  # re-append: most recent displacement last

    def shadowed(self, args: Tuple) -> bool:
        """Whether ``args`` is a superseded-but-outstanding version."""
        args = tuple(args)
        bucket = self._shadow.get(self.key_of(args))
        return bucket is not None and args in bucket

    def shadow_discard(self, args: Tuple, count: int = 1) -> None:
        """Withdraw ``count`` derivations of a shadowed version (its
        producer retracted an advertisement that was never current)."""
        args = tuple(args)
        key = self.key_of(args)
        bucket = self._shadow.get(key)
        if bucket is None or args not in bucket:
            return
        remaining = bucket[args] - count
        if remaining > 0:
            bucket[args] = remaining
        else:
            del bucket[args]
            if not bucket:
                del self._shadow[key]

    def pop_fallback(self, key: Tuple) -> Optional[Tuple[Tuple, int]]:
        """Remove and return the most recently displaced outstanding
        version under ``key`` as ``(args, count)``, or ``None``."""
        bucket = self._shadow.get(key)
        if not bucket:
            return None
        args, count = bucket.popitem()
        if not bucket:
            del self._shadow[key]
        return args, count

    def absorb_shadow(self, args: Tuple) -> None:
        """Drop any shadow entry for ``args``: a version that was
        re-advertised while shadowed is current again and must not also
        linger as its own fallback.  The shadow is a *passive* stock of
        repair hints -- it never feeds live derivation counts (which
        stay exactly what the baseline count algorithm produces)."""
        args = tuple(args)
        key = self.key_of(args)
        bucket = self._shadow.get(key)
        if bucket is None:
            return
        bucket.pop(args, None)
        if not bucket:
            del self._shadow[key]

    def clear_shadow(self, key: Tuple) -> None:
        """Drop every shadowed version under ``key`` (forced deletes
        wipe the whole slot: nothing may resurrect)."""
        self._shadow.pop(key, None)

    def restamp(self, args: Tuple, ts: int) -> None:
        """Reassign a stored tuple's timestamp (used when pre-loaded rows
        are seeded into a PSN queue, so table and delta timestamps agree)."""
        args = tuple(args)
        if args in self._counts:
            self._ts[args] = ts

    def clear(self) -> None:
        self._rows.clear()
        self._counts.clear()
        self._ts.clear()
        self._shadow.clear()
        for index in self._indexes.values():
            index.clear()

    def _remove(self, args: Tuple) -> None:
        del self._counts[args]
        self._ts.pop(args, None)
        key = self.key_of(args)
        if self._rows.get(key) == args:
            del self._rows[key]
        for positions, index in self._indexes.items():
            projected = tuple(args[i] for i in positions)
            bucket = index.get(projected)
            if bucket is not None:
                bucket.discard(args)
                if not bucket:
                    del index[projected]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def index_for(self, positions: Tuple[int, ...]) -> Dict[Tuple, Set[Tuple]]:
        """The live index dict on ``positions``, built if needed.

        The returned object is stable for the table's lifetime (inserts
        and removals mutate it in place, :meth:`clear` empties it), so
        compiled join plans may capture it directly.
        """
        positions = tuple(positions)
        index = self._indexes.get(positions)
        if index is None:
            index = self._build_index(positions)
        return index

    def rows_view(self):
        """Live view of the stored tuples (do not mutate the table while
        iterating it)."""
        return self._rows.values()

    def register_index(self, positions: Tuple[int, ...]) -> None:
        """Eagerly build (and from then on maintain) the hash index on
        ``positions``.  Compiled join plans pre-register every index
        they probe at engine construction, so the first delta does not
        pay the index-build cost mid-flight."""
        positions = tuple(positions)
        if not positions or positions in self._indexes:
            return
        self._build_index(positions)

    def _build_index(self, positions: Tuple[int, ...]) -> Dict[Tuple, Set[Tuple]]:
        index: Dict[Tuple, Set[Tuple]] = {}
        for args in self._rows.values():
            index.setdefault(
                tuple(args[i] for i in positions), set()
            ).add(args)
        self._indexes[positions] = index
        return index

    def lookup(self, positions: Tuple[int, ...], values: Tuple) -> Iterable[Tuple]:
        """All tuples whose ``positions`` equal ``values``.

        Builds (and from then on maintains) a hash index on first use.
        """
        if not positions:
            return self._rows.values()
        index = self._indexes.get(positions)
        if index is None:
            index = self._build_index(positions)
        return index.get(values, ())

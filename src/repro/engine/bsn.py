"""Buffered semi-naive (BSN) evaluation -- Section 3.3.1 of the paper.

BSN is "the standard SN algorithm ... with the following modifications:
a node can start a local SN iteration at any time its local Bk buffers
are non-empty.  Tuples arriving over the network while an iteration is
in progress are buffered for processing in the next iteration."

The key relaxation is *scheduling freedom*: a tuple from a traditional
SN iteration may be buffered arbitrarily and handled in some future
iteration of our choice, while still producing the SN fixpoint.  We
expose that freedom through a ``scheduler`` callable that decides how
many buffered deltas each local iteration consumes; the engine shares
PSN's strand/timestamp machinery (PSN "can allow just as much buffering
as BSN", Section 3.3.2), so correctness follows from the same argument.

``batch_size > 1`` additionally routes each scheduled iteration through
PSN's micro-batched commit path (Z-set weight netting at the queue,
run-batched strand firing, weighted aggregate views -- see
:mod:`repro.engine.psn`), which is the natural pairing: BSN already
*buffers* bursts, weight addition nets them before processing too.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.engine.database import Database
from repro.engine.fixpoint import EvalResult
from repro.engine.psn import DEFAULT_MAX_STEPS, PSNEngine
from repro.errors import EvaluationError
from repro.ndlog.ast import Program

#: A scheduler maps the current buffer size to the batch to consume.
Scheduler = Callable[[int], int]


def drain_all(buffered: int) -> int:
    """The default BSN schedule: each iteration flushes the full buffer."""
    return buffered


class BSNEngine(PSNEngine):
    """PSN engine driven in buffered batches."""

    def __init__(
        self,
        program: Program,
        db: Optional[Database] = None,
        scheduler: Scheduler = drain_all,
        on_commit=None,
        use_plans: bool = True,
        batch_size: int = 1,
        provenance=None,
    ):
        super().__init__(program, db=db, on_commit=on_commit,
                         use_plans=use_plans, batch_size=batch_size,
                         provenance=provenance)
        self.scheduler = scheduler
        self.iterations = 0

    def run(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Drain the buffer in scheduled batches; the ``max_steps``
        limit is exact (batches are clipped so at most ``max_steps``
        deltas are ever processed)."""
        taken = 0
        while self.queue:
            if taken >= max_steps:
                raise EvaluationError(
                    f"BSN exceeded {max_steps} steps (non-terminating "
                    f"program?)",
                    engine="bsn",
                )
            batch = self.scheduler(len(self.queue))
            if batch <= 0:
                # A scheduler may defer work, but an empty schedule with a
                # non-empty buffer would spin forever: process one tuple.
                batch = 1
            batch = min(batch, len(self.queue), max_steps - taken)
            taken += self.run_batch(batch)
            self.iterations += 1
        return taken

    def fixpoint(self, max_steps: int = DEFAULT_MAX_STEPS) -> EvalResult:
        result = super().fixpoint(max_steps=max_steps)
        result.iterations = self.iterations
        return result


def evaluate(
    program: Program,
    db: Optional[Database] = None,
    scheduler: Scheduler = drain_all,
    max_steps: int = DEFAULT_MAX_STEPS,
    use_plans: bool = True,
    batch_size: int = 1,
    provenance=None,
) -> EvalResult:
    """Run ``program`` to fixpoint with BSN and return the result."""
    return BSNEngine(program, db=db, scheduler=scheduler,
                     use_plans=use_plans, batch_size=batch_size,
                     provenance=provenance).fixpoint(max_steps=max_steps)

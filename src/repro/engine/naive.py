"""Naive (iterate-all-rules) evaluation [4 in the paper's references].

The reference implementation every other engine is checked against: no
deltas, no book-keeping -- each iteration re-derives everything from the
full current state until nothing changes.  Deliberately simple; used for
correctness baselines and the engine micro-benchmarks.

With ``use_plans=True`` (the default) each rule's join is compiled once
per stratum (see :mod:`repro.engine.rules`) and the plan is reused every
iteration; ``use_plans=False`` keeps the original interpreted
:func:`repro.engine.rules.solve` path for baseline comparisons.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import EvaluationError
from repro.engine.aggregates import AggregateView
from repro.engine.database import Database
from repro.engine.fixpoint import EvalResult, load_program_facts
from repro.engine.rules import (
    CompiledRule,
    compile_plan,
    rule_head as _head_of,
    rule_solutions as _solutions,
)
from repro.engine.stratify import stratify
from repro.ndlog.ast import Program
from repro.opt.costbased import StatsCatalog

#: Guard against non-terminating programs (e.g. Figure 1 on a cyclic
#: graph without aggregate selections, as discussed in Section 2).
DEFAULT_MAX_ITERATIONS = 10_000


def _plan_for(crule: CompiledRule, db: Database, stats, use_plans: bool):
    """Compile (and index-register) a full-rule plan, or ``None`` when
    planning is off."""
    if not use_plans:
        return None
    plan = compile_plan(crule, stats=stats)
    for pred, positions in plan.index_requests():
        db.table(pred).register_index(positions)
    return plan


def _table_sources(crule: CompiledRule, db: Database) -> Dict[int, object]:
    return {
        index: db.table(crule.body[index].pred)
        for index in crule.literal_indexes
    }


def seed_base_provenance(provenance, program: Program, db: Database):
    """Record the pre-loaded EDB rows as base events (the set-oriented
    engines load facts straight into tables, so there is no queue seam
    to observe them on) and return a derived recorder with ``dedup``
    on -- these engines legitimately re-derive every join each
    iteration, and the set semantics must not leak back into the
    caller's recorder."""
    from repro.engine.facts import Fact

    provenance = provenance.bind(dedup=True)
    provenance.register_views({
        rule.head.pred for rule in program.rules
        if rule.head_aggregate() is not None or rule.argmin is not None
    })
    idb = program.idb_predicates()
    for table in db.tables.values():
        if table.name in idb:
            continue
        for args in table.rows():
            for _ in range(table.count(args)):
                provenance.base(Fact(table.name, args), 1)
    return provenance


def evaluate(
    program: Program,
    db: Optional[Database] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    use_plans: bool = True,
    provenance=None,
) -> EvalResult:
    if db is None:
        db = Database.for_program(program)
    load_program_facts(program, db)
    result = EvalResult(db=db, program=program)
    stats = StatsCatalog.from_database(db) if use_plans else None
    if provenance is not None:
        provenance = seed_base_provenance(provenance, program, db)
        result.provenance = provenance.store

    for stratum in stratify(program):
        compiled = [CompiledRule(rule) for rule in stratum.rules]
        plain = [c for c in compiled
                 if c.aggregate is None and c.argmin is None]
        aggregated = [c for c in compiled if c.aggregate is not None]
        argmins = [c for c in compiled if c.argmin is not None]
        # Compile once per stratum; reuse the plan (and the source dict)
        # on every iteration of the loop below.
        plans = {id(c): _plan_for(c, db, stats, use_plans) for c in compiled}
        sources = {id(c): _table_sources(c, db) for c in compiled}

        iterations = 0
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError(
                    f"naive evaluation exceeded {max_iterations} iterations "
                    f"on stratum {sorted(stratum.preds)} (non-terminating "
                    f"program?)",
                    engine="naive",
                )
            changed = False
            for crule in plain:
                table = db.table(crule.head.pred)
                plan = plans[id(crule)]
                # Materialize the solutions first: the head table may be
                # among the sources, and inserting while scanning it is
                # undefined.
                for bindings in list(
                    _solutions(crule, sources[id(crule)], db.functions, plan)
                ):
                    result.inferences += 1
                    head = _head_of(crule, bindings, db.functions, plan)
                    if provenance is not None:
                        provenance.capture(crule, bindings, head, 1,
                                           db.functions)
                    if head not in table:
                        table.insert(head)
                        changed = True
            if not changed:
                break
        result.iterations += iterations

        # Aggregates in a (necessarily non-recursive) stratum: recompute
        # from the now-complete lower strata.
        for crule in aggregated:
            view = AggregateView(crule.head.pred, crule.aggregate)
            plan = plans[id(crule)]
            for bindings in _solutions(
                crule, sources[id(crule)], db.functions, plan
            ):
                result.inferences += 1
                contribution = _head_of(crule, bindings, db.functions, plan)
                if provenance is not None:
                    provenance.capture(crule, bindings, contribution, 1,
                                       db.functions)
                view.apply(contribution, 1)
            table = db.table(crule.head.pred)
            for head in view.current_rows():
                if head not in table:
                    table.insert(head)

        # Arg-min witness views (non-recursive only; see stratify):
        # recompute the deterministic group winner from scratch.
        for crule in argmins:
            _materialize_argmin(db, crule, result, plan=plans[id(crule)],
                                provenance=provenance)
    return result


def _materialize_argmin(db: Database, crule: CompiledRule,
                        result: EvalResult, plan=None,
                        provenance=None) -> None:
    group_positions, value_position, func = crule.argmin
    rule_sources = _table_sources(crule, db)
    winners = {}
    for bindings in _solutions(crule, rule_sources, db.functions, plan):
        result.inferences += 1
        head = _head_of(crule, bindings, db.functions, plan)
        if provenance is not None:
            provenance.capture(crule, bindings, head, 1, db.functions)
        group = tuple(head[i] for i in group_positions)
        best = winners.get(group)
        if best is None:
            winners[group] = head
            continue
        value = head[value_position]
        best_value = best[value_position]
        better = value < best_value if func == "min" else value > best_value
        if better or (value == best_value and repr(head) < repr(best)):
            winners[group] = head
    table = db.table(crule.head.pred)
    for head in winners.values():
        if head not in table:
            table.insert(head)

"""Naive (iterate-all-rules) evaluation [4 in the paper's references].

The reference implementation every other engine is checked against: no
deltas, no book-keeping -- each iteration re-derives everything from the
full current state until nothing changes.  Deliberately simple; used for
correctness baselines and the engine micro-benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import EvaluationError
from repro.engine.aggregates import AggregateView
from repro.engine.database import Database
from repro.engine.fixpoint import EvalResult, load_program_facts
from repro.engine.rules import CompiledRule, instantiate_head, solve
from repro.engine.stratify import stratify
from repro.ndlog.ast import Program

#: Guard against non-terminating programs (e.g. Figure 1 on a cyclic
#: graph without aggregate selections, as discussed in Section 2).
DEFAULT_MAX_ITERATIONS = 10_000


def evaluate(
    program: Program,
    db: Optional[Database] = None,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> EvalResult:
    if db is None:
        db = Database.for_program(program)
    load_program_facts(program, db)
    result = EvalResult(db=db)
    sources = {}

    for stratum in stratify(program):
        compiled = [CompiledRule(rule) for rule in stratum.rules]
        plain = [c for c in compiled
                 if c.aggregate is None and c.argmin is None]
        aggregated = [c for c in compiled if c.aggregate is not None]
        argmins = [c for c in compiled if c.argmin is not None]

        iterations = 0
        while True:
            iterations += 1
            if iterations > max_iterations:
                raise EvaluationError(
                    f"naive evaluation exceeded {max_iterations} iterations "
                    f"on stratum {sorted(stratum.preds)} (non-terminating "
                    f"program?)"
                )
            changed = False
            for crule in plain:
                table = db.table(crule.head.pred)
                rule_sources = {
                    index: db.table(crule.body[index].pred)
                    for index in crule.literal_indexes
                }
                # Materialize the solutions first: the head table may be
                # among the sources, and inserting while scanning it is
                # undefined.
                for bindings in list(solve(crule, rule_sources, db.functions)):
                    result.inferences += 1
                    head = instantiate_head(crule, bindings, db.functions)
                    if head not in table:
                        table.insert(head)
                        changed = True
            if not changed:
                break
        result.iterations += iterations

        # Aggregates in a (necessarily non-recursive) stratum: recompute
        # from the now-complete lower strata.
        for crule in aggregated:
            view = AggregateView(crule.head.pred, crule.aggregate)
            rule_sources = {
                index: db.table(crule.body[index].pred)
                for index in crule.literal_indexes
            }
            for bindings in solve(crule, rule_sources, db.functions):
                result.inferences += 1
                contribution = instantiate_head(crule, bindings, db.functions)
                view.apply(contribution, 1)
            table = db.table(crule.head.pred)
            for head in view.current_rows():
                if head not in table:
                    table.insert(head)

        # Arg-min witness views (non-recursive only; see stratify):
        # recompute the deterministic group winner from scratch.
        for crule in argmins:
            _materialize_argmin(db, crule, result)
    return result


def _materialize_argmin(db: Database, crule: CompiledRule,
                        result: EvalResult) -> None:
    group_positions, value_position, func = crule.argmin
    rule_sources = {
        index: db.table(crule.body[index].pred)
        for index in crule.literal_indexes
    }
    winners = {}
    for bindings in solve(crule, rule_sources, db.functions):
        result.inferences += 1
        head = instantiate_head(crule, bindings, db.functions)
        group = tuple(head[i] for i in group_positions)
        best = winners.get(group)
        if best is None:
            winners[group] = head
            continue
        value = head[value_position]
        best_value = best[value_position]
        better = value < best_value if func == "min" else value > best_value
        if better or (value == best_value and repr(head) < repr(best)):
            winners[group] = head
    table = db.table(crule.head.pred)
    for head in winners.values():
        if head not in table:
            table.insert(head)

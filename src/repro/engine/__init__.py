"""Evaluation engines: naive, semi-naive (Algorithm 1), buffered
semi-naive, pipelined semi-naive (Algorithm 3) with incremental view
maintenance, plus the table store they share."""

from repro.engine.database import Database
from repro.engine.facts import DELETE, Delta, Fact, INSERT
from repro.engine.fixpoint import EvalResult, load_program_facts
from repro.engine.table import Table
from repro.engine import bsn, naive, psn, seminaive
from repro.engine.psn import PSNEngine
from repro.engine.bsn import BSNEngine

__all__ = [
    "Database",
    "Table",
    "Fact",
    "Delta",
    "INSERT",
    "DELETE",
    "EvalResult",
    "load_program_facts",
    "naive",
    "seminaive",
    "bsn",
    "psn",
    "PSNEngine",
    "BSNEngine",
]

"""Deprecated facade -- thin shims over :mod:`repro.api`.

This module predates the staged ``compile() -> CompiledProgram ->
run()/deploy()`` API and is kept only so existing call sites keep
working.  New code should use :func:`repro.compile` directly::

    import repro

    compiled = repro.compile(source, passes=["aggsel"])
    result = compiled.run(engine="psn", facts={"link": rows})
    deployment = compiled.deploy(topology=overlay)

Mapping from the old entry points:

===========================  ==========================================
old                          new
===========================  ==========================================
``core.compile_program``     ``repro.compile(...).program``
``core.run_centralized``     ``repro.compile(...).run(engine=...)``
``core.deploy``              ``repro.compile(...).deploy(...)``
===========================  ==========================================
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.api import compile as _compile
from repro.engine import bsn, naive, psn, seminaive
from repro.engine.fixpoint import EvalResult
from repro.ndlog.ast import Program
from repro.runtime import Cluster, RuntimeConfig
from repro.topology import Overlay


#: Historical engine table: name -> engine *module* (the staged API's
#: :data:`repro.api.ENGINES` maps names to ``evaluate`` functions
#: instead; this shape is kept verbatim for old call sites doing
#: ``core.ENGINES[name].evaluate(...)``).
ENGINES = {
    "naive": naive,
    "seminaive": seminaive,
    "bsn": bsn,
    "psn": psn,
}


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.core.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def compile_program(
    source_or_program: Union[str, Program],
    aggregate_selections: bool = False,
    localized: bool = False,
    validate: bool = True,
) -> Program:
    """Deprecated: use ``repro.compile(...).program``."""
    _deprecated("compile_program", "repro.compile")
    passes = []
    if aggregate_selections:
        passes.append("aggsel")
    if localized:
        passes.append("localize")
    return _compile(
        source_or_program, passes=passes, validate=validate, strict=True
    ).program


def run_centralized(
    source_or_program: Union[str, Program],
    facts: Optional[Dict[str, Iterable[Tuple]]] = None,
    engine: str = "psn",
    aggregate_selections: bool = False,
    validate: bool = False,
) -> EvalResult:
    """Deprecated: use ``repro.compile(...).run(engine=...)``."""
    _deprecated("run_centralized", "repro.compile(...).run")
    passes = ["aggsel"] if aggregate_selections else []
    compiled = _compile(
        source_or_program, passes=passes, validate=validate, strict=True
    )
    return compiled.run(engine=engine, facts=facts)


def deploy(
    source_or_program: Union[str, Program],
    overlay: Optional[Overlay] = None,
    n_nodes: int = 100,
    degree: int = 4,
    seed: int = 1,
    metric: str = "latency",
    config: Optional[RuntimeConfig] = None,
) -> Cluster:
    """Deprecated: use ``repro.compile(...).deploy(...)`` (which returns
    a :class:`repro.api.Deployment`; this shim keeps returning the bare
    :class:`Cluster`)."""
    _deprecated("deploy", "repro.compile(...).deploy")
    config = config or RuntimeConfig(aggregate_selections=True)
    passes = ["aggsel"] if config.aggregate_selections else []
    compiled = _compile(
        source_or_program, passes=passes, validate=config.validate,
        strict=True,
    )
    deployment = compiled.deploy(
        topology=overlay, config=config, n_nodes=n_nodes, degree=degree,
        seed=seed, metric=metric,
    )
    return deployment.cluster

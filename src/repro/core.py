"""High-level facade over the reproduction: one import for the common
workflows.

* :func:`compile_program` -- parse + validate + optimize + localize;
* :func:`run_centralized` -- evaluate a program on loaded facts with any
  of the four engines;
* :func:`deploy` -- stand up a simulated declarative network.

The facade only composes the public APIs of the subpackages; everything
it does can be done (with more control) through those directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.engine import Database, bsn, naive, psn, seminaive
from repro.engine.fixpoint import EvalResult
from repro.errors import PlanError
from repro.ndlog.ast import Program
from repro.ndlog.parser import parse
from repro.ndlog.validator import check
from repro.opt import aggsel
from repro.planner.localization import localize
from repro.runtime import Cluster, RuntimeConfig
from repro.topology import Overlay, build_overlay, transit_stub

ENGINES = {
    "naive": naive,
    "seminaive": seminaive,
    "bsn": bsn,
    "psn": psn,
}


def compile_program(
    source_or_program: Union[str, Program],
    aggregate_selections: bool = False,
    localized: bool = False,
    validate: bool = True,
) -> Program:
    """Parse (if needed), validate, and optionally rewrite a program."""
    if isinstance(source_or_program, str):
        program = parse(source_or_program)
    else:
        program = source_or_program
    if validate:
        check(program)
    if aggregate_selections:
        program = aggsel.rewrite(program)
    if localized:
        program = localize(program)
    return program


def run_centralized(
    source_or_program: Union[str, Program],
    facts: Optional[Dict[str, Iterable[Tuple]]] = None,
    engine: str = "psn",
    aggregate_selections: bool = False,
    validate: bool = False,
) -> EvalResult:
    """Evaluate a program to fixpoint on one node.

    ``facts`` maps relation names to rows; ``engine`` is one of
    ``naive`` / ``seminaive`` / ``bsn`` / ``psn``.
    """
    module = ENGINES.get(engine)
    if module is None:
        raise PlanError(f"unknown engine {engine!r}; pick from {sorted(ENGINES)}")
    program = compile_program(
        source_or_program,
        aggregate_selections=aggregate_selections,
        validate=validate,
    )
    db = Database.for_program(program)
    for pred, rows in (facts or {}).items():
        db.load_facts(pred, rows)
    return module.evaluate(program, db)


def deploy(
    source_or_program: Union[str, Program],
    overlay: Optional[Overlay] = None,
    n_nodes: int = 100,
    degree: int = 4,
    seed: int = 1,
    metric: str = "latency",
    config: Optional[RuntimeConfig] = None,
) -> Cluster:
    """Deploy a program on a simulated overlay (not yet run; call
    ``cluster.run()``)."""
    if isinstance(source_or_program, str):
        program = parse(source_or_program)
    else:
        program = source_or_program
    if overlay is None:
        overlay = build_overlay(
            transit_stub(seed=seed), n_nodes=n_nodes, degree=degree, seed=seed
        )
    return Cluster(
        overlay,
        program,
        config or RuntimeConfig(aggregate_selections=True),
        link_loads={"link": metric},
    )

"""Outbound message handling: direct sends, periodic batching with
net-change elimination (periodic aggregate selections, Section 5.1.1),
and opportunistic message sharing (Section 5.2).

All three paths charge bytes to :class:`repro.net.stats.TrafficStats` at
actual transmission time, so the bandwidth figures reflect what really
crossed each link.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.net.message import (
    DELTA_HEADER_BYTES,
    Message,
    NetDelta,
    value_size,
)
from repro.runtime.config import RuntimeConfig

#: Buffered flush timers carry +-10% deterministic jitter so that
#: buffers armed in the same instant do not flush in lockstep (which
#: would synthesize bandwidth spikes no real deployment shows).
FLUSH_JITTER = 0.10


class Transport:
    """Per-cluster message layer.

    ``buffer_interval`` (periodic mode) batches each (src, dst) stream on
    a fixed period and sends only the *net* change per primary key --
    transient best-path flip-flops inside a window are suppressed, which
    is exactly the periodic aggregate-selections saving.

    ``share_delay`` (sharing mode) holds tuples briefly ("to facilitate
    sharing, we delay each outbound tuple by 300ms") and merges buffered
    tuples whose share key matches, charging common attributes once.
    """

    def __init__(self, cluster, config: RuntimeConfig):
        self.cluster = cluster
        self.config = config
        #: (src, dst) -> list of queued NetDelta
        self._buffers: Dict[Tuple[str, str], List[NetDelta]] = {}
        self._flush_scheduled: Dict[Tuple[str, str], bool] = {}
        #: (src, dst) -> pkey -> last advertised args (periodic mode)
        self._advertised: Dict[Tuple[str, str], Dict[Tuple, Tuple]] = {}
        self._jitter_rng = random.Random(config.seed + 4099)

    def _flush_delay(self) -> float:
        base = self.config.buffer_interval or self.config.share_delay
        return base * self._jitter_rng.uniform(1 - FLUSH_JITTER,
                                               1 + FLUSH_JITTER)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, pred: str, args: Tuple, sign: int,
             prov=None) -> None:
        delta = NetDelta(pred, tuple(args), sign, prov)
        delay = self.config.buffer_interval or self.config.share_delay
        if not delay:
            self._transmit(src, dst, (delta,))
            return
        key = (src, dst)
        self._buffers.setdefault(key, []).append(delta)
        if not self._flush_scheduled.get(key):
            self._flush_scheduled[key] = True
            self.cluster.clock.after(self._flush_delay(),
                                   lambda: self._flush(key))

    # ------------------------------------------------------------------
    # Buffered modes
    # ------------------------------------------------------------------
    def _flush(self, key: Tuple[str, str]) -> None:
        self._flush_scheduled[key] = False
        deltas = self._buffers.pop(key, [])
        if not deltas:
            return
        src, dst = key
        if self.config.buffer_interval:
            deltas = self._net_change(key, deltas)
        if not deltas:
            return
        if self.config.share_delay and self.config.share_specs:
            for message_deltas, shared in self._share_groups(deltas):
                self._transmit(src, dst, message_deltas, shared)
        else:
            # One batch message; per-delta headers still paid.
            self._transmit(src, dst, tuple(deltas))
        # If more arrived while flushing was pending they are in a new
        # buffer; schedule the next window.
        if self._buffers.get(key):
            self._flush_scheduled[key] = True
            self.cluster.clock.after(self._flush_delay(),
                                   lambda: self._flush(key))

    def _net_change(
        self, key: Tuple[str, str], deltas: List[NetDelta]
    ) -> List[NetDelta]:
        """Collapse a window to one delta per primary key: the receiver
        only needs the final state ("a node buffers up new paths ...
        and then propagates the new shortest paths periodically")."""
        advertised = self._advertised.setdefault(key, {})
        final: "OrderedDict[Tuple, NetDelta]" = OrderedDict()
        for delta in deltas:
            pkey = (delta.pred, self.cluster.pkey_of(delta.pred, delta.args))
            final[pkey] = delta
        out: List[NetDelta] = []
        for pkey, delta in final.items():
            last = advertised.get(pkey)
            if delta.sign > 0:
                if last == delta.args:
                    continue  # receiver already has exactly this tuple
                advertised[pkey] = delta.args
                out.append(delta)
            else:
                if last is None:
                    continue  # never advertised; nothing to retract
                advertised.pop(pkey, None)
                out.append(NetDelta(delta.pred, last, -1))
        return out

    def _share_groups(self, deltas: List[NetDelta]):
        """Group buffered deltas by share key; each group becomes one
        message whose common attributes are charged once."""
        groups: "OrderedDict[object, List[NetDelta]]" = OrderedDict()
        specs = self.config.share_specs
        for delta in deltas:
            spec = specs.get(delta.pred)
            if spec is None:
                groups.setdefault(("solo", len(groups)), []).append(delta)
                continue
            shared_fields = tuple(
                value for index, value in enumerate(delta.args)
                if index not in spec.value_positions
            )
            groups.setdefault(
                ("share", spec.base, delta.sign, shared_fields), []
            ).append(delta)
        for group_key, members in groups.items():
            if group_key[0] == "share" and len(members) > 1:
                spec = specs[members[0].pred]
                shared_bytes = (
                    DELTA_HEADER_BYTES
                    + len(spec.base)
                    + sum(value_size(v) for v in group_key[3])
                )
                yield tuple(members), shared_bytes
            else:
                yield tuple(members), 0

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _transmit(
        self,
        src: str,
        dst: str,
        deltas: Tuple[NetDelta, ...],
        shared_bytes: int = 0,
    ) -> None:
        channel = self.cluster.channel(src, dst)
        if channel is None:
            self.cluster.stats.dropped_no_link += 1
            return
        message = Message(src=src, dst=dst, deltas=deltas,
                          shared_bytes=shared_bytes)
        self.cluster.stats.record(self.cluster.clock.now, src, message.size)
        channel.transmit(
            self.cluster.clock, message, self.cluster.deliver,
            rng=self.cluster.loss_rng,
        )

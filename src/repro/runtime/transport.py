"""Outbound message handling: direct sends, periodic batching with
net-change elimination (periodic aggregate selections, Section 5.1.1),
opportunistic message sharing (Section 5.2), and -- with
``config.reliable`` -- the ack/retransmit layer that restores the
delivery guarantees of Theorem 4 on faulty links.

All paths charge bytes to :class:`repro.net.stats.TrafficStats` at
actual transmission time, so the bandwidth figures reflect what really
crossed each link (retransmissions and pure acks included: they are
real traffic).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, Iterable, List, Tuple

from repro.net.message import (
    DELTA_HEADER_BYTES,
    Message,
    NetDelta,
    coalesce,
    value_size,
)
from repro.net.reliable import Flow, FlowTable
from repro.runtime.config import RuntimeConfig

#: Buffered flush timers carry +-10% deterministic jitter so that
#: buffers armed in the same instant do not flush in lockstep (which
#: would synthesize bandwidth spikes no real deployment shows).
FLUSH_JITTER = 0.10


class Transport:
    """Per-cluster message layer.

    ``buffer_interval`` (periodic mode) batches each (src, dst) stream on
    a fixed period and sends only the *net* change per primary key --
    transient best-path flip-flops inside a window are suppressed, which
    is exactly the periodic aggregate-selections saving.

    ``share_delay`` (sharing mode) holds tuples briefly ("to facilitate
    sharing, we delay each outbound tuple by 300ms") and merges buffered
    tuples whose share key matches, charging common attributes once.
    """

    def __init__(self, cluster, config: RuntimeConfig):
        self.cluster = cluster
        self.config = config
        #: Observability handles bound once (``None`` when off, or when
        #: the cluster is a test stub without the registries).
        self.tracer = getattr(cluster, "tracer", None)
        self.metrics = getattr(cluster, "metrics", None)
        #: (src, dst) -> list of queued NetDelta
        self._buffers: Dict[Tuple[str, str], List[NetDelta]] = {}
        self._flush_scheduled: Dict[Tuple[str, str], bool] = {}
        #: (src, dst) -> pkey -> last advertised args (periodic mode)
        self._advertised: Dict[Tuple[str, str], Dict[Tuple, Tuple]] = {}
        self._jitter_rng = random.Random(config.seed + 4099)

    def _flush_delay(self) -> float:
        base = self.config.buffer_interval or self.config.share_delay
        return base * self._jitter_rng.uniform(1 - FLUSH_JITTER,
                                               1 + FLUSH_JITTER)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, pred: str, args: Tuple, weight: int,
             prov=None, trace=None) -> None:
        if not weight:
            return  # a zero-weight Z-set entry is no change at all
        delta = NetDelta(pred, tuple(args), weight, prov, trace)
        delay = self.config.buffer_interval or self.config.share_delay
        if not delay:
            self._transmit(src, dst, (delta,))
            return
        key = (src, dst)
        self._buffers.setdefault(key, []).append(delta)
        if not self._flush_scheduled.get(key):
            self._flush_scheduled[key] = True
            self.cluster.clock.after(self._flush_delay(),
                                   lambda: self._flush(key))

    # ------------------------------------------------------------------
    # Buffered modes
    # ------------------------------------------------------------------
    def _flush(self, key: Tuple[str, str]) -> None:
        self._flush_scheduled[key] = False
        deltas = self._buffers.pop(key, [])
        if not deltas:
            return
        src, dst = key
        # Z-set coalescing first: same-fact weights in the window sum,
        # so a link flap buffered whole ships nothing.  Runs before the
        # per-pkey net-change pass, which reasons about *slots* and
        # assumes one net intent per fact.
        buffered = deltas
        before = len(deltas)
        deltas = list(coalesce(deltas))
        self.cluster.stats.netdeltas_coalesced += before - len(deltas)
        tracer = self.tracer
        if tracer is not None and len(deltas) != before:
            # Traced deltas whose (pred, args) slot vanished in the
            # window were annihilated before transmission: end their
            # propagation with a net span at the sender.
            surviving = {(d.pred, d.args) for d in deltas}
            for delta in buffered:
                if (delta.trace is not None
                        and (delta.pred, delta.args) not in surviving):
                    tracer.netted(delta, src)
        if self.config.buffer_interval:
            deltas = self._net_change(key, deltas)
        if not deltas:
            return
        if self.config.share_delay and self.config.share_specs:
            for message_deltas, shared in self._share_groups(deltas):
                self._transmit(src, dst, message_deltas, shared)
        else:
            # One batch message; per-delta headers still paid.
            self._transmit(src, dst, tuple(deltas))
        # If more arrived while flushing was pending they are in a new
        # buffer; schedule the next window.
        if self._buffers.get(key):
            self._flush_scheduled[key] = True
            self.cluster.clock.after(self._flush_delay(),
                                   lambda: self._flush(key))

    def _net_change(
        self, key: Tuple[str, str], deltas: List[NetDelta]
    ) -> List[NetDelta]:
        """Collapse a window to one delta per primary key: the receiver
        only needs the final state ("a node buffers up new paths ...
        and then propagates the new shortest paths periodically")."""
        advertised = self._advertised.setdefault(key, {})
        final: "OrderedDict[Tuple, NetDelta]" = OrderedDict()
        for delta in deltas:
            pkey = (delta.pred, self.cluster.pkey_of(delta.pred, delta.args))
            final[pkey] = delta
        out: List[NetDelta] = []
        for pkey, delta in final.items():
            last = advertised.get(pkey)
            if delta.sign > 0:
                if last == delta.args:
                    continue  # receiver already has exactly this tuple
                advertised[pkey] = delta.args
                out.append(delta)
            else:
                if last is None:
                    continue  # never advertised; nothing to retract
                advertised.pop(pkey, None)
                out.append(NetDelta(delta.pred, last, -1,
                                    None, delta.trace))
        return out

    def _share_groups(self, deltas: List[NetDelta]):
        """Group buffered deltas by share key; each group becomes one
        message whose common attributes are charged once."""
        groups: "OrderedDict[object, List[NetDelta]]" = OrderedDict()
        specs = self.config.share_specs
        for delta in deltas:
            spec = specs.get(delta.pred)
            if spec is None:
                groups.setdefault(("solo", len(groups)), []).append(delta)
                continue
            shared_fields = tuple(
                value for index, value in enumerate(delta.args)
                if index not in spec.value_positions
            )
            groups.setdefault(
                ("share", spec.base, delta.sign, shared_fields), []
            ).append(delta)
        for group_key, members in groups.items():
            if group_key[0] == "share" and len(members) > 1:
                spec = specs[members[0].pred]
                shared_bytes = (
                    DELTA_HEADER_BYTES
                    + len(spec.base)
                    + sum(value_size(v) for v in group_key[3])
                )
                yield tuple(members), shared_bytes
            else:
                yield tuple(members), 0

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def _transmit(
        self,
        src: str,
        dst: str,
        deltas: Tuple[NetDelta, ...],
        shared_bytes: int = 0,
    ) -> None:
        channel = self.cluster.channel(src, dst)
        if channel is None:
            self.cluster.stats.dropped_no_link += 1
            return
        message = Message(src=src, dst=dst, deltas=deltas,
                          shared_bytes=shared_bytes)
        self._send(channel, message)

    def _send(self, channel, message: Message) -> None:
        stats = self.cluster.stats
        stats.netdeltas_shipped += len(message.deltas)
        stats.record(self.cluster.clock.now, message.src, message.size)
        tracer = self.tracer
        if tracer is not None:
            for delta in message.deltas:
                if delta.trace is not None:
                    # Per actual transmission, so retransmits show as
                    # repeated ship spans on the trace.
                    tracer.ship(delta, message.src, message.dst)
        channel.transmit(
            self.cluster.clock, message, self.cluster.deliver,
            rng=self.cluster.loss_rng,
        )

    def on_arrival(self, message: Message) -> Iterable[Message]:
        """Arrival filter hook: the raw transport delivers every
        message as-is (the reliable transport below dedups, reorders,
        and strips pure acks here)."""
        return (message,)


class ReliableTransport(Transport):
    """Ack/retransmit delivery over the same channels.

    Protocol state lives in :mod:`repro.net.reliable`; this class wires
    it to the cluster: stamping outbound messages, arming the
    per-direction retransmit and delayed-ack timers on the cluster
    clock, filtering arrivals back into the FIFO exactly-once stream
    the engine assumes, and escalating a spent retry budget to the
    convergence watchdog (``cluster.fail_link``).
    """

    def __init__(self, cluster, config: RuntimeConfig):
        super().__init__(cluster, config)
        self.flows = FlowTable(config.rto_min, config.ack_delay)
        # Decorrelates retransmit timers; seeded apart from the flush
        # jitter stream so enabling reliability does not perturb it.
        self._rto_jitter = random.Random(config.seed + 7331)

    def _flow(self, src: str, dst: str) -> Flow:
        channel = self.cluster.channel(src, dst)
        latency = getattr(channel, "latency", 0.0) if channel else 0.0
        return self.flows.get(src, dst, latency=latency)

    # -- sender side ----------------------------------------------------
    def _transmit(
        self,
        src: str,
        dst: str,
        deltas: Tuple[NetDelta, ...],
        shared_bytes: int = 0,
    ) -> None:
        channel = self.cluster.channel(src, dst)
        if channel is None:
            self.cluster.stats.dropped_no_link += 1
            return
        flow = self._flow(src, dst)
        if flow.dead:
            # Watchdog already declared the peer dead; the link facts
            # are gone and stragglers from in-queue work are dropped.
            self.cluster.stats.dead_link_drops += 1
            return
        reverse = self._flow(dst, src)
        message = Message(src=src, dst=dst, deltas=deltas,
                          shared_bytes=shared_bytes,
                          ack=reverse.cursor)
        message.seq = flow.stamp(message)
        reverse.ack_owed = False  # piggybacked on this send
        self._send(channel, message)
        if flow.timer is None:
            self._arm_retransmit(flow)

    def _arm_retransmit(self, flow: Flow) -> None:
        delay = flow.rto * self._rto_jitter.uniform(1.0, 1.5)
        # The sender's own clock: a skewed node retransmits on its
        # drifted schedule, exactly like a real host with a bad clock.
        flow.timer = self.cluster.clock_for(flow.src).after(
            delay, lambda: self._on_timeout(flow)
        )

    def _down_until(self, node: str):
        chaos = self.cluster.chaos
        return None if chaos is None else chaos.down_until(node)

    def _on_timeout(self, flow: Flow) -> None:
        flow.timer = None
        if flow.dead or not flow.unacked:
            return
        resume = self._down_until(flow.src)
        if resume is not None:
            # The *sender* is crashed: a dead host neither retransmits
            # nor concludes anything about its peers.  Park the timer
            # until the restart; with no restart the flow is abandoned
            # (the survivors' watchdogs handle the teardown from their
            # side).
            if resume != float("inf"):
                clock = self.cluster.clock_for(flow.src)
                flow.timer = clock.after(
                    max(0.0, resume - clock.now) + flow.rto,
                    lambda: self._on_timeout(flow),
                )
            return
        if flow.retries >= self.config.retry_budget:
            self._declare_dead(flow)
            return
        message = flow.oldest_unacked()
        channel = self.cluster.channel(flow.src, flow.dst)
        if channel is None:  # link removed under us
            flow.unacked.clear()
            return
        flow.backoff(self.config.rto_backoff, self.config.rto_max)
        self.cluster.stats.retransmits += 1
        registry = self.metrics
        if registry is not None:
            links = registry.link_retransmits
            key = (flow.src, flow.dst)
            links[key] = links.get(key, 0) + 1
        self._send(channel, message)
        self._arm_retransmit(flow)

    def _declare_dead(self, flow: Flow) -> None:
        """The convergence watchdog: ``retry_budget`` retransmissions
        went unacknowledged, so the peer (or the path to it) is treated
        as failed and the link is torn down declaratively."""
        flow.dead = True
        flow.unacked.clear()
        flow.cancel_timers()
        self.cluster.fail_link(flow.src, flow.dst)

    # -- receiver side --------------------------------------------------
    def on_arrival(self, message: Message) -> Iterable[Message]:
        if message.ack is not None:
            sender = self._flow(message.dst, message.src)
            if sender.absorb_ack(message.ack):
                if sender.timer is not None:
                    sender.timer.cancel()
                    sender.timer = None
                if sender.unacked:
                    self._arm_retransmit(sender)
        if message.seq is None:
            # Pure ack (or a frame from an unreliable sender): nothing
            # to sequence, nothing to deliver.
            return () if not message.deltas else (message,)
        flow = self._flow(message.src, message.dst)
        ready, dup, healed = flow.admit(message.seq, message)
        stats = self.cluster.stats
        if dup:
            stats.dup_dropped += 1
        stats.reorders_healed += healed
        # Anything sequenced owes the sender a cumulative ack -- also
        # duplicates (the re-ack is what stops their retransmission).
        self._owe_ack(flow)
        return ready

    def _owe_ack(self, flow: Flow) -> None:
        flow.ack_owed = True
        if flow.ack_timer is None:
            flow.ack_timer = self.cluster.clock_for(flow.dst).after(
                self.config.ack_delay, lambda: self._flush_ack(flow)
            )

    def _flush_ack(self, flow: Flow) -> None:
        flow.ack_timer = None
        if not flow.ack_owed:
            return  # reverse traffic piggybacked it meanwhile
        resume = self._down_until(flow.dst)
        if resume is not None:
            # The acking host is crashed; leave the debt owed.  After a
            # restart the next sequenced arrival re-arms the timer, and
            # the sender's retransmissions cover the gap meanwhile.
            if resume != float("inf"):
                clock = self.cluster.clock_for(flow.dst)
                flow.ack_timer = clock.after(
                    max(0.0, resume - clock.now) + self.config.ack_delay,
                    lambda: self._flush_ack(flow),
                )
            return
        flow.ack_owed = False
        channel = self.cluster.channel(flow.dst, flow.src)
        if channel is None:
            return
        ack = Message(src=flow.dst, dst=flow.src, deltas=(),
                      ack=flow.cursor)
        self.cluster.stats.acks_sent += 1
        self._send(channel, ack)

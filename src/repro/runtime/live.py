"""The live execution target: node runtimes as asyncio tasks on wall
time.

The paper's system runs NDlog programs on real networked nodes; the
reproduction's default substrate is the virtual-time simulator.  This
module is the second execution target behind the same seams: every
:class:`~repro.runtime.node.NodeRuntime` keeps its exact per-node
semantics (PSN strands, cpu-tick pacing, head routing) but schedules on
a :class:`~repro.net.clock.WallClock` and exchanges deltas over live
channels -- in-process asyncio queues by default, real UDP datagram
sockets on localhost with ``channels="udp"``.

Concurrency model: one asyncio task per node owns that node's inbox
(an ``asyncio.Queue``); a message arrival is dequeued by the task and
fed to ``NodeRuntime.receive``, which paces the actual delta processing
with wall-clock CPU ticks exactly as the simulator paces virtual ones.
All tasks share one event loop, so node steps interleave but never run
concurrently -- the same single-threaded-dataflow-per-node discipline
as P2, times N nodes.

Lifecycle (all on the deployment handle)::

    deployment = compiled.deploy(topology=overlay, target="live")
    await deployment.start()          # bind channels, spawn node tasks
    await deployment.quiescent()      # wait for convergence (wall time)
    rows = deployment.query_rows()
    await deployment.stop()           # tear down tasks and sockets

or, from synchronous code, ``deployment.converge()`` runs the whole
lifecycle under ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.channel import Channel
from repro.net.clock import WallClock
from repro.net.live import QueueChannel, UdpChannel, UdpFabric
from repro.net.message import Message
from repro.net.stats import ResultTracker
from repro.runtime.cluster import Cluster
from repro.runtime.config import RuntimeConfig

__all__ = ["LiveCluster", "LiveDeployment"]

#: Inbox sentinel that tells a node task to exit.
_SHUTDOWN = None


def _check_backend(channels: str) -> str:
    if channels not in ("inproc", "udp"):
        raise NetworkError(
            f"unknown live channel backend {channels!r}; "
            f"pick 'inproc' or 'udp'"
        )
    return channels


class LiveCluster(Cluster):
    """A deployed declarative network on wall-clock time.

    Construct *inside a running event loop* (the wall clock binds to
    it), then ``await start()``.  Construction compiles and instantiates
    every node but defers the initial link-relation load until the node
    tasks and channel endpoints exist.
    """

    def __init__(
        self,
        overlay,
        program,
        config: Optional[RuntimeConfig] = None,
        link_loads: Optional[Dict[str, str]] = None,
        channels: str = "inproc",
        host: str = "127.0.0.1",
    ):
        self.backend = _check_backend(channels)
        self.fabric = UdpFabric(host) if channels == "udp" else None
        self._inboxes: Dict[str, asyncio.Queue] = {}
        self._tasks: List[asyncio.Task] = []
        self._task_failures: List[Tuple[str, BaseException]] = []
        self._started = False
        self._deferred_link_loads: Dict[str, str] = {}
        super().__init__(overlay, program, config, link_loads,
                         clock=WallClock())

    # -- construction hooks --------------------------------------------
    def _make_channel(self, a: str, b: str, metrics) -> Channel:
        kwargs = dict(
            a=a,
            b=b,
            latency=metrics["latency"] / 1000.0,
            bandwidth_bps=self.config.bandwidth_bps,
            loss_rate=self.config.loss_rate,
            metrics=dict(metrics),
        )
        if self.fabric is not None:
            return UdpChannel(fabric=self.fabric, **kwargs)
        return QueueChannel(**kwargs)

    def _load_initial(self, link_loads) -> None:
        # Loading link facts schedules CPU ticks and shipments; those
        # need inboxes (and, for UDP, bound sockets) -- start() replays
        # this after the plumbing is up.
        self._deferred_link_loads = dict(link_loads)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Bind channel endpoints, spawn one task per node, and load the
        initial link relations."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        if self.fabric is not None:
            # Route datagrams through the full delivery path (chaos
            # guard + reliable filter), not straight to the inboxes.
            self.fabric.on_message = self.deliver
            self.fabric.stats = self.stats
            for name in self.nodes:
                await self.fabric.bind(name)
        for name, node in self.nodes.items():
            inbox: asyncio.Queue = asyncio.Queue()
            self._inboxes[name] = inbox
            self._tasks.append(
                loop.create_task(self._node_loop(name, node, inbox),
                                 name=f"ndlog-node-{name}")
            )
        for pred, metric in self._deferred_link_loads.items():
            self.load_links(pred, metric)

    async def _node_loop(self, name: str, node, inbox: asyncio.Queue) -> None:
        """One node's ingestion task: messages in, deltas to the engine."""
        while True:
            message = await inbox.get()
            if message is _SHUTDOWN:
                return
            try:
                for delta in message.deltas:
                    node.receive(delta.pred, delta.args, delta.weight,
                                 prov=delta.prov, origin=message.src,
                                 trace=delta.trace)
            except BaseException as exc:  # noqa: BLE001 -- surfaced at stop
                self._task_failures.append((name, exc))

    async def stop(self) -> None:
        """Drain and stop every node task, close sockets, and re-raise
        the first callback/task failure (if any)."""
        for inbox in self._inboxes.values():
            inbox.put_nowait(_SHUTDOWN)
        if self._tasks:
            done, pending = await asyncio.wait(self._tasks, timeout=5.0)
            for task in pending:
                task.cancel()
        self._tasks = []
        if self.fabric is not None:
            self.fabric.close()
        self.raise_failures()

    def raise_failures(self) -> None:
        failures: List[Tuple[str, BaseException]] = list(self._task_failures)
        failures.extend(
            ("clock", exc) for _now, exc in self.clock.failures
        )
        if failures:
            where, first = failures[0]
            raise NetworkError(
                f"live run recorded {len(failures)} failure(s); "
                f"first ({where}): {type(first).__name__}: {first}"
            ) from first

    # -- delivery -------------------------------------------------------
    def _dispatch(self, message: Message) -> None:
        """In-order arrival (past the chaos guard and reliable filter
        in :meth:`Cluster.deliver`): route to the node task's inbox."""
        inbox = self._inboxes.get(message.dst)
        if inbox is None:
            raise NetworkError(f"message to unknown node {message.dst}")
        inbox.put_nowait(message)

    # -- quiescence -----------------------------------------------------
    @property
    def idle(self) -> bool:
        """Instantaneous idleness: no timers, no undelivered messages,
        no queued deltas.  One sample can race an in-flight datagram's
        kernel hop; :meth:`LiveDeployment.quiescent` requires a settle
        streak."""
        down = (
            self.chaos.dead_nodes(self.clock.now)
            if self.chaos is not None else frozenset()
        )
        return (
            self.clock.pending == 0
            and (self.fabric is None or self.fabric.settled)
            and all(
                inbox.empty() for name, inbox in self._inboxes.items()
                if name not in down
            )
            and all(
                node.quiescent for name, node in self.nodes.items()
                if name not in down
            )
        )

    @property
    def quiescent(self) -> bool:
        return self.idle


class LiveDeployment:
    """Deployment handle for the live target.

    Mirrors the simulated :class:`~repro.api.Deployment` verbs where
    they make sense on wall time, with the lifecycle verbs async:
    :meth:`start`, :meth:`quiescent` (wait for convergence),
    :meth:`stop`.  ``inject``/``update``/``delete``/``watch``/``at``
    issued before :meth:`start` are buffered and replayed once the
    network is up, so workload scripts read the same as their simulator
    counterparts.  :meth:`converge` wraps the whole lifecycle for
    synchronous callers.
    """

    def __init__(
        self,
        compiled,
        topology,
        config: Optional[RuntimeConfig] = None,
        link_loads: Optional[Dict[str, str]] = None,
        channels: str = "inproc",
        host: str = "127.0.0.1",
    ):
        _check_backend(channels)
        self.compiled = compiled
        self.topology = topology
        self.config = config
        self.link_loads = link_loads
        self.channels = channels
        self.host = host
        self.cluster: Optional[LiveCluster] = None
        self._stopped = False
        self._pending_ops: List[Tuple] = []
        self._pending_trackers: List[ResultTracker] = []

    # -- lifecycle ------------------------------------------------------
    @property
    def started(self) -> bool:
        return self.cluster is not None

    async def start(self) -> "LiveDeployment":
        """Build the live cluster on the running loop, spawn the node
        tasks, and replay buffered workload calls."""
        self._check_not_stopped()
        if self.cluster is not None:
            return self
        self.cluster = LiveCluster(
            self.topology,
            self.compiled,
            self.config,
            link_loads=self.link_loads,
            channels=self.channels,
            host=self.host,
        )
        self.cluster.trackers.extend(self._pending_trackers)
        self._pending_trackers = []
        await self.cluster.start()
        for op in self._pending_ops:
            self._apply(op)
        self._pending_ops = []
        return self

    async def quiescent(
        self,
        timeout: float = 30.0,
        poll: float = 0.02,
        settle: int = 3,
    ) -> bool:
        """Wait (in wall time) until the network is quiescent: ``settle``
        consecutive idle samples ``poll`` seconds apart.  Returns True on
        quiescence, False if ``timeout`` elapses first."""
        self._check_not_stopped()
        cluster = self._require_started()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        streak = 0
        while True:
            streak = streak + 1 if cluster.idle else 0
            if streak >= settle:
                # Quiescence with an open repair window (the watchdog
                # tore a link down): sweep for broken keyed slots, and
                # if the sweep queued restores, settle again -- same
                # discipline as the simulator's Cluster.run loop.
                if cluster._repair_pending:
                    if cluster._queue_slot_repairs():
                        streak = 0
                        continue
                    cluster._repair_pending = False
                return True
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(poll)

    async def stop(self) -> None:
        """Tear down node tasks and channel endpoints; raises if any
        node callback failed during the run.  The handle's tables stay
        readable (``rows``/``query_rows``), but workload verbs and the
        lifecycle are finished -- a new run needs a new deployment."""
        if self.cluster is not None:
            self._stopped = True
            await self.cluster.stop()

    def converge(self, timeout: float = 30.0) -> bool:
        """Synchronous one-shot: start, wait for quiescence, stop.
        Returns whether the network went quiescent within ``timeout``;
        results stay readable on the handle afterwards."""
        return asyncio.run(self._converge(timeout))

    async def _converge(self, timeout: float) -> bool:
        await self.start()
        ok = await self.quiescent(timeout=timeout)
        await self.stop()
        return ok

    # -- data plane -----------------------------------------------------
    def _check_not_stopped(self) -> None:
        # The wall clock and node tasks died with the loop that ran
        # them; scheduling against them would surface as an opaque
        # "Event loop is closed" from deep inside asyncio.
        if self._stopped:
            raise NetworkError(
                "live deployment already stopped; results stay readable, "
                "but a new run needs a fresh deploy(target='live')"
            )

    def _require_started(self) -> LiveCluster:
        if self.cluster is None:
            raise NetworkError(
                "live deployment not started (await deployment.start(), "
                "or use deployment.converge())"
            )
        return self.cluster

    def _apply(self, op: Tuple) -> None:
        verb = op[0]
        cluster = self.cluster
        if verb == "at":
            _v, time, fn = op
            cluster.clock.at(time, fn)
            return
        _v, node, pred, args = op
        runtime = cluster.nodes.get(node)
        if runtime is None:
            raise NetworkError(
                f"unknown node {node!r}; this deployment has "
                f"{len(cluster.nodes)} nodes"
            )
        getattr(runtime, verb)(pred, tuple(args))

    def _op(self, op: Tuple) -> None:
        self._check_not_stopped()
        if self.cluster is None:
            self._pending_ops.append(op)
        else:
            self._apply(op)

    def inject(self, node: str, pred: str, args: Tuple) -> None:
        """Insert a base tuple at ``node`` (buffered until started)."""
        self._op(("insert", node, pred, tuple(args)))

    def update(self, node: str, pred: str, args: Tuple) -> None:
        self._op(("update", node, pred, tuple(args)))

    def delete(self, node: str, pred: str, args: Tuple) -> None:
        self._op(("delete", node, pred, tuple(args)))

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` at wall time ``time`` (seconds from start)."""
        self._op(("at", time, fn))

    # -- observation ----------------------------------------------------
    def watch(self, pred: str) -> ResultTracker:
        """Track completion times for ``pred`` (buffered until started)."""
        tracker = ResultTracker(watch_pred=pred)
        if self.cluster is None:
            self._pending_trackers.append(tracker)
        else:
            self.cluster.trackers.append(tracker)
        return tracker

    def subscribe(self, pred: Optional[str], callback: Callable):
        from repro.api import _Subscription

        subscription = _Subscription(pred, callback)
        if self.cluster is None:
            self._pending_trackers.append(subscription)
        else:
            self.cluster.trackers.append(subscription)

        def unsubscribe() -> None:
            pools = [self._pending_trackers]
            if self.cluster is not None:
                pools.append(self.cluster.trackers)
            for pool in pools:
                if subscription in pool:
                    pool.remove(subscription)

        return unsubscribe

    def rows(self, pred: str, node: Optional[str] = None) -> frozenset:
        cluster = self._require_started()
        if node is not None:
            runtime = cluster.nodes.get(node)
            if runtime is None:
                raise NetworkError(
                    f"unknown node {node!r}; this deployment has "
                    f"{len(cluster.nodes)} nodes"
                )
            return frozenset(runtime.db.table(pred).rows())
        return cluster.rows(pred)

    def query_rows(self) -> frozenset:
        return self._require_started().query_rows()

    # -- provenance -----------------------------------------------------
    @property
    def provenance(self):
        """The shared provenance store (``None`` before start or when
        capture is off)."""
        return self.cluster.provenance if self.cluster is not None else None

    def why(self, pred: str, args: Tuple, max_depth: int = 128):
        """Derivation tree for ``pred(args)`` on the live network (see
        :meth:`repro.api.Deployment.why`).  Readable after ``stop()``."""
        return self._require_started().why(pred, args, max_depth=max_depth)

    def why_not(self, pred: str, args: Tuple, depth: int = 2):
        """Failed-body analysis for the absent ``pred(args)`` (see
        :meth:`repro.api.Deployment.why_not`)."""
        return self._require_started().why_not(pred, args, depth=depth)

    def audit(self, strict: Optional[bool] = None,
              exclude_nodes=()):
        """Count/graph cross-check at quiescence (see
        :func:`repro.provenance.audit_cluster`)."""
        return self._require_started().audit(strict=strict,
                                             exclude_nodes=exclude_nodes)

    # -- observability --------------------------------------------------
    @property
    def tracer(self):
        """The shared delta tracer (``None`` before start or when
        tracing is off)."""
        return self.cluster.tracer if self.cluster is not None else None

    def metrics(self):
        """Point-in-time metrics snapshot (see
        :meth:`repro.api.Deployment.metrics`).  Readable after
        ``stop()``."""
        return self._require_started().metrics_snapshot()

    def metrics_text(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        return self._require_started().metrics_text()

    def refresh_stats(self) -> None:
        """Feed live sizes/churn into each node's StatsCatalog."""
        self._require_started().refresh_stats()

    def profile(self):
        """Merged per-(rule, strand) CPU profile across nodes."""
        return self._require_started().profile_report()

    def save_trace(self, path: str) -> None:
        """Export recorded spans as Chrome trace-event JSON."""
        self._require_started().save_trace(path)

    # -- surfaces -------------------------------------------------------
    @property
    def now(self) -> float:
        return self.cluster.clock.now if self.cluster is not None else 0.0

    @property
    def nodes(self):
        return self._require_started().nodes

    @property
    def stats(self):
        return self._require_started().stats

    @property
    def overlay(self):
        return self.topology

    @property
    def program(self):
        return self.compiled.program

    def explain(self, join_plans: bool = True, timings: bool = False) -> str:
        return self.compiled.explain(join_plans=join_plans, timings=timings)

    def __repr__(self) -> str:
        state = "running" if self.started else "not started"
        return (
            f"LiveDeployment({self.compiled.name!r}, "
            f"nodes={len(self.topology.nodes)}, "
            f"channels={self.channels!r}, {state})"
        )

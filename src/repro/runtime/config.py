"""Runtime configuration for distributed NDlog execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.net.link import DEFAULT_BANDWIDTH_BPS

if TYPE_CHECKING:  # import cycle: chaos wraps runtime clusters
    from repro.chaos.schedule import ChaosSchedule


@dataclass(frozen=True)
class ShareSpec:
    """Opportunistic-sharing description for one relation (Section 5.2).

    Tuples of relations that share ``base`` and agree on every position
    not listed in ``value_positions`` are joined into one message.
    """

    base: str
    value_positions: Tuple[int, ...]


@dataclass(frozen=True)
class CachePolicy:
    """Query-result caching (Section 5.2) for the multi-query magic
    program: positions refer to the ``query_pred``/``answer_pred``
    schemas of :func:`repro.ndlog.programs.multi_query_magic`."""

    query_pred: str = "pathQ"
    dst_position: int = 2
    path_position: int = 3
    cost_position: int = 4
    answer_pred: str = "answer"
    answer_path_position: int = 2
    answer_cost_position: int = 3
    suppress_labels: Tuple[str, ...] = ("MQ2",)


@dataclass
class RuntimeConfig:
    """Knobs for a cluster run.  Defaults mirror Section 6.1."""

    #: CPU time charged per delta processed at a node.  1 ms/tuple puts
    #: convergence times in the same few-second regime as the paper's
    #: P2 deployment.
    cpu_delay: float = 1e-3
    #: Deltas a node may consume per simulator event.  ``cpu_delay`` is
    #: still charged per delta (a tick that consumes k deltas keeps the
    #: node booked for k * cpu_delay of virtual CPU), so throughput and
    #: node serialization match the one-delta-per-event schedule; the
    #: deltas of one batch commit at the batch's start rather than
    #: spread across it, so individual commit/ship times may shift
    #: earlier by up to (k - 1) * cpu_delay.  Batching cuts the
    #: host-side cost of the simulation -- one heap event and one
    #: engine chunk per k deltas -- and routes bursts through the
    #: engine's micro-batched commit path.  Set to 1 for the exact
    #: historical schedule.
    cpu_batch: int = 16
    #: Link capacity (10 Mbps in the paper's Emulab setup).
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    #: Apply the aggregate-selections program rewrite (Section 5.1.1).
    aggregate_selections: bool = False
    #: Buffer outbound tuples and flush every ``buffer_interval`` seconds
    #: with net-change elimination: the periodic aggregate-selections
    #: scheme (Section 5.1.1 / Figures 9-10).
    buffer_interval: Optional[float] = None
    #: Buffer outbound tuples for ``share_delay`` seconds and merge those
    #: with common attributes: opportunistic message sharing (Section
    #: 5.2 / Figure 12).
    share_delay: Optional[float] = None
    #: Relation -> sharing description (required when share_delay set).
    share_specs: Dict[str, ShareSpec] = field(default_factory=dict)
    #: Query-result caching (Section 5.2 / Figure 11).
    cache: Optional[CachePolicy] = None
    #: Per-link message loss probability (soft-state experiments).
    loss_rate: float = 0.0
    #: RNG seed for loss decisions.
    seed: int = 0
    #: Validate the program against NDlog's constraints before compiling.
    validate: bool = True
    #: Ship deltas over the ack/retransmit reliable transport
    #: (:mod:`repro.net.reliable`): restores the FIFO + exactly-once
    #: delivery of Theorem 4 on lossy/reordering links.
    reliable: bool = False
    #: Consecutive unacked retransmits before the convergence watchdog
    #: declares the peer dead and tears the link down.
    retry_budget: int = 6
    #: Retransmit-timer floor/ceiling (seconds) and backoff factor.
    rto_min: float = 0.05
    rto_max: float = 2.0
    rto_backoff: float = 2.0
    #: How long a direction may owe a cumulative ack before flushing a
    #: pure ack (reverse traffic inside the window piggybacks it).
    ack_delay: float = 0.02
    #: Fault-injection plan (:class:`repro.chaos.ChaosSchedule`), or
    #: ``None`` for a fault-free run.
    chaos: Optional["ChaosSchedule"] = None
    #: Collect the per-(node, rule, relation) metrics registry
    #: (:mod:`repro.obs`): ``Deployment.metrics()`` snapshots, the
    #: Prometheus text exposition, and the live StatsCatalog feed.
    metrics: bool = False
    #: Record delta-propagation traces: a trace id minted per injected
    #: base fact, spans for derive/net/ship/receive/commit, exported as
    #: Chrome trace-event JSON via ``Deployment.save_trace``.
    trace: bool = False
    #: Accumulate per-rule/per-strand CPU time
    #: (``Deployment.profile()``).
    profile: bool = False

"""Soft-state storage (Section 4.2).

"In the soft state storage model, all data has an explicit 'time to
live' (TTL), and facts must be explicitly reinserted with their latest
values and a new TTL or they are deleted."

The manager attaches to a node runtime, records an expiry for every
commit into tables declared with a finite ``materialize`` lifetime, and
sweeps them with simulator timers.  Base-tuple *refreshers* model the
protocol side: periodic reinsertion of ground truth, which (in a
quiescent network) restores eventual consistency even after message
loss or reordering -- the trade-off discussed at the end of Section 4.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.engine.facts import Fact
from repro.engine.table import INFINITY
from repro.errors import NetworkError
from repro.runtime.cluster import Cluster


class SoftStateManager:
    """TTL bookkeeping and expiry sweeping for one cluster."""

    def __init__(self, cluster: Cluster, sweep_interval: float = 0.5):
        self.cluster = cluster
        self.sweep_interval = sweep_interval
        #: (node, pred, args) -> expiry time
        self.expiries: Dict[Tuple[str, str, Tuple], float] = {}
        self.expired_count = 0
        self._installed = False
        if not cluster.nodes:
            raise NetworkError(
                "SoftStateManager needs a cluster with at least one node "
                "(no node runtimes to read table lifetimes from)"
            )
        any_node = next(iter(cluster.nodes.values()))
        self._lifetimes: Dict[str, float] = {
            pred: table.lifetime
            for pred, table in any_node.db.tables.items()
            if table.lifetime != INFINITY
        }

    @property
    def soft_preds(self) -> Tuple[str, ...]:
        return tuple(sorted(self._lifetimes))

    def install(self) -> None:
        """Hook commit observation and start the sweeper."""
        if self._installed:
            return
        self._installed = True
        for address, node in self.cluster.nodes.items():
            original = node.on_commit

            def hook(fact: Fact, sign: int, _address=address, _orig=original):
                _orig(fact, sign)
                self._observe(_address, fact, sign)

            node.on_commit = hook
        self.cluster.clock.after(self.sweep_interval, self._sweep)

    def _observe(self, address: str, fact: Fact, sign: int) -> None:
        lifetime = self._lifetimes.get(fact.pred)
        if lifetime is None:
            return
        key = (address, fact.pred, fact.args)
        if sign > 0:
            self.expiries[key] = self.cluster.clock.now + lifetime
        else:
            self.expiries.pop(key, None)

    def _sweep(self) -> None:
        now = self.cluster.clock.now
        expired = [key for key, when in self.expiries.items() if when <= now]
        for key in expired:
            address, pred, args = key
            self.expiries.pop(key, None)
            self.expired_count += 1
            self.cluster.nodes[address].delete(pred, args)
        if self.expiries or self.cluster.clock.pending:
            self.cluster.clock.after(self.sweep_interval, self._sweep)

    # ------------------------------------------------------------------
    # Refreshers
    # ------------------------------------------------------------------
    def schedule_refresh(
        self,
        pred: str,
        rows_by_node,
        interval: float,
        rounds: int,
        start: Optional[float] = None,
    ) -> None:
        """Reinsert base rows every ``interval`` for ``rounds`` rounds.

        ``rows_by_node`` maps node address -> iterable of arg tuples.
        """
        start = interval if start is None else start

        def refresh():
            for address, rows in rows_by_node.items():
                node = self.cluster.nodes[address]
                for args in rows:
                    node.insert(pred, tuple(args))

        for index in range(rounds):
            self.cluster.clock.at(start + index * interval, refresh)

"""Update workload drivers for the dynamic experiments (Section 6.5).

"Each update burst involves randomly selecting 10% of all links, and
then updating the cost metric by up to 10%."
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.cluster import Cluster


@dataclass
class BurstRecord:
    time: float
    updated_links: List[Tuple[str, str, float]] = field(default_factory=list)


class LinkUpdateDriver:
    """Applies periodic bursts of link-cost updates to a cluster.

    The driver keeps its own view of current costs so successive bursts
    compound, and it updates both directions of each (bidirectional)
    link atomically at the two endpoints.
    """

    def __init__(
        self,
        cluster: Cluster,
        pred: str = "link",
        metric: str = "random",
        fraction: float = 0.10,
        magnitude: float = 0.10,
        seed: int = 1,
    ):
        self.cluster = cluster
        self.pred = pred
        self.fraction = fraction
        self.magnitude = magnitude
        self.rng = random.Random(seed)
        self.costs: Dict[Tuple[str, str], float] = {
            (a, b): metrics[metric]
            for (a, b), metrics in cluster.overlay.links.items()
        }
        self.bursts: List[BurstRecord] = []

    def apply_burst(self) -> BurstRecord:
        """Update a random ``fraction`` of links by up to ``magnitude``."""
        record = BurstRecord(time=self.cluster.clock.now)
        links = sorted(self.costs)
        count = max(1, int(len(links) * self.fraction))
        for a, b in self.rng.sample(links, count):
            old = self.costs[(a, b)]
            delta = old * self.magnitude * self.rng.uniform(-1.0, 1.0)
            new = max(1.0, round(old + delta, 3))
            self.costs[(a, b)] = new
            self.cluster.nodes[a].insert(self.pred, (a, b, new))
            self.cluster.nodes[b].insert(self.pred, (b, a, new))
            record.updated_links.append((a, b, new))
        self.bursts.append(record)
        return record

    def flap_burst(self, cycles: int = 1) -> BurstRecord:
        """Announce/withdraw a random absent link ``cycles`` times at
        both endpoints, as weighted transient intents.

        Each cycle enqueues a ``+1`` and a ``-1`` intent for the same
        link tuple through the node's cpu-batch commit path; under the
        Z-set queue the whole flap nets to weight zero before any strand
        fires, so a storm of flaps costs O(1) table work per chunk
        instead of O(cycles) insert/delete churn."""
        from repro.engine.facts import Fact

        record = BurstRecord(time=self.cluster.clock.now)
        links = sorted(self.costs)
        a, b = links[self.rng.randrange(len(links))]
        cost = float(self.rng.randint(10, 99))  # distinct from any stored row
        for _ in range(max(1, cycles)):
            for src, dst in ((a, b), (b, a)):
                node = self.cluster.nodes[src]
                node.derive(Fact(self.pred, (src, dst, cost)), 1)
                node.derive(Fact(self.pred, (src, dst, cost)), -1)
        record.updated_links.append((a, b, cost))
        self.bursts.append(record)
        return record

    def schedule_bursts(self, times: Sequence[float]) -> None:
        """Schedule bursts at the given virtual times."""
        for time in times:
            self.cluster.clock.at(time, self.apply_burst)

    def schedule_periodic(
        self, interval: float, count: int, start: Optional[float] = None
    ) -> None:
        start = interval if start is None else start
        self.schedule_bursts([start + i * interval for i in range(count)])

    def schedule_interleaved(
        self,
        intervals: Sequence[float],
        count: int,
        start: float,
    ) -> None:
        """Alternate between the given intervals (Figure 14 interleaves
        2 s and 8 s)."""
        time = start
        times = []
        for index in range(count):
            times.append(time)
            time += intervals[index % len(intervals)]
        self.schedule_bursts(times)

    def current_link_rows(self) -> List[Tuple[str, str, float]]:
        rows = []
        for (a, b), cost in sorted(self.costs.items()):
            rows.append((a, b, cost))
            rows.append((b, a, cost))
        return rows

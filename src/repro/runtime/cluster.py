"""The distributed engine: compile an NDlog program, deploy it on every
node of a simulated overlay, run to quiescence, and measure.

This is the Python analogue of the modified P2 system of Section 6: the
pipeline is validate -> (optional aggregate-selections rewrite) ->
localize (Algorithm 2) -> per-node strand dataflows executing PSN, with
all communication along overlay links under FIFO ordering.

Program compilation routes through :func:`repro.api.compile` -- the one
place rewrite order is decided.  A cluster may be built either from a
plain :class:`~repro.ndlog.ast.Program` (compiled here with the pass
pipeline implied by the :class:`~repro.runtime.config.RuntimeConfig`)
or from an already-compiled :class:`~repro.api.CompiledProgram`
artifact, which is used as-is (localization is ensured, nothing else is
re-applied; the artifact's pass pipeline wins over config flags).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.engine.facts import Fact
from repro.errors import NetworkError, PlanError, SchemaError
from repro.net.channel import Channel
from repro.net.clock import Clock
from repro.net.link import LinkChannel
from repro.net.message import Message
from repro.net.sim import Simulator
from repro.net.stats import ResultTracker, TrafficStats
from repro.planner.localization import is_canonical
from repro.runtime.config import RuntimeConfig
from repro.runtime.node import NodeRuntime
from repro.runtime.transport import ReliableTransport, Transport
from repro.topology.overlay import Overlay


class Cluster:
    """A deployed declarative network."""

    def __init__(
        self,
        overlay: Overlay,
        program,  # Program or repro.api.CompiledProgram
        config: Optional[RuntimeConfig] = None,
        link_loads: Optional[Dict[str, str]] = None,
        clock: Optional[Clock] = None,
    ):
        """``program`` is a :class:`~repro.ndlog.ast.Program` (compiled
        here per the config flags) or a pre-compiled
        :class:`~repro.api.CompiledProgram`.  ``link_loads`` maps each
        link-relation name in the program to the overlay metric that
        fills its cost field (default: ``{"link": "latency"}``).
        Multiple entries let several queries with distinct link
        relations run concurrently (Section 6.4).  ``clock`` is the
        timing substrate (default: a fresh virtual-time
        :class:`Simulator`; the live runtime passes a
        :class:`~repro.net.clock.WallClock`)."""
        # Deferred import: repro.api provides the compile pipeline and
        # itself deploys onto this class (no import cycle at load time).
        from repro.api import CompiledProgram, compile as compile_api

        self.overlay = overlay
        self.config = config or RuntimeConfig()
        self.clock = clock if clock is not None else Simulator()
        #: Back-compat alias: experiments and tests drive the virtual
        #: clock as ``cluster.sim``.
        self.sim = self.clock
        self.stats = TrafficStats()
        self.trackers: List[ResultTracker] = []
        #: Observability (:mod:`repro.obs`): the metrics registry and
        #: the trace recorder, or ``None`` when the config leaves them
        #: off.  Built before transport/chaos/nodes -- all three bind
        #: them at construction time.
        self.metrics = None
        self.tracer = None
        if self.config.metrics:
            from repro.obs import MetricsRegistry

            self.metrics = MetricsRegistry()
        if self.config.trace:
            from repro.obs import Tracer

            self.tracer = Tracer(now=lambda: self.clock.now)
        #: True while a watchdog teardown's repair window is open (the
        #: deferred fallback restores it queued are not yet drained).
        self._repair_pending = False
        self.loss_rng = random.Random(self.config.seed)

        if isinstance(program, CompiledProgram):
            # Pre-compiled artifact: its pass pipeline already decided
            # the rewrites; only ensure it is in deployable form.
            compiled = program.localized()
        else:
            passes = ["aggsel"] if self.config.aggregate_selections else []
            passes.append("localize")
            compiled = compile_api(
                program,
                passes=passes,
                validate=self.config.validate,
                strict=True,
            )
        self.compiled = compiled
        source_program = compiled.before_pass("localize")
        self.source_program = (
            source_program if source_program is not None else compiled.program
        )
        self.program = compiled.program
        if not is_canonical(self.program):
            raise PlanError("localization failed to produce canonical rules",
                            pass_name="localize")

        #: Shared derivation-provenance store (one per deployment; node
        #: records are tagged with their firing node), or ``None`` when
        #: the artifact was compiled without ``provenance=True``.
        self.provenance = None
        if getattr(compiled, "provenance", False):
            from repro.provenance import ProvenanceStore

            self.provenance = ProvenanceStore()

        if self.config.reliable:
            self.transport: Transport = ReliableTransport(self, self.config)
        else:
            self.transport = Transport(self, self.config)
        self._channels: Dict[Tuple[str, str], Channel] = {}
        for (a, b), metrics in overlay.links.items():
            self._channels[(a, b)] = self._make_channel(a, b, metrics)

        #: Fault injector (:mod:`repro.chaos`), or ``None``.  Built
        #: after the channels (it wraps them) and before the nodes
        #: (skewed nodes take their clock view from it).
        self.chaos = None
        if self.config.chaos is not None:
            from repro.chaos import ChaosController

            self.chaos = ChaosController(self, self.config.chaos)
            self.chaos.wrap_channels(self._channels)

        self.nodes: Dict[str, NodeRuntime] = {
            name: NodeRuntime(name, self.program, self)
            for name in overlay.nodes
        }
        self._pkeys: Dict[str, Tuple[int, ...]] = {}
        sample = next(iter(self.nodes.values()))
        for pred, table in sample.db.tables.items():
            self._pkeys[pred] = table.key

        if link_loads is None:
            link_loads = {"link": "latency"}
        #: The deployed link relations -- the watchdog tears failed
        #: links down through exactly these predicates.
        self.link_loads: Dict[str, str] = dict(link_loads)
        self._load_initial(link_loads)

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------
    def _make_channel(self, a: str, b: str, metrics: Dict[str, float]) -> Channel:
        """Channel-backend hook: the simulated cluster builds timer-
        delivery links; :class:`~repro.runtime.live.LiveCluster`
        overrides with queue or UDP channels."""
        return LinkChannel(
            a=a,
            b=b,
            latency=metrics["latency"] / 1000.0,
            bandwidth_bps=self.config.bandwidth_bps,
            loss_rate=self.config.loss_rate,
            metrics=dict(metrics),
        )

    def _load_initial(self, link_loads: Dict[str, str]) -> None:
        """Initial-load hook: install the link relations now (the live
        cluster defers this until its node tasks and sockets exist)."""
        for pred, metric in link_loads.items():
            self.load_links(pred, metric)

    def load_links(self, pred: str, metric: str) -> None:
        """Install ``pred(@src, @dst, cost)`` at each link's source."""
        for src, dst, cost in self.overlay.link_rows(metric):
            self.nodes[src].insert(pred, (src, dst, cost))

    def inject(self, node: str, pred: str, args: Tuple) -> None:
        """Insert a base tuple at ``node`` (e.g. a magic fact)."""
        self.nodes[node].insert(pred, tuple(args))

    def watch(self, pred: str) -> ResultTracker:
        """Track completion times for ``pred`` (Figures 8/10 curves)."""
        tracker = ResultTracker(watch_pred=pred)
        self.trackers.append(tracker)
        return tracker

    # ------------------------------------------------------------------
    # Network plumbing (used by NodeRuntime / Transport)
    # ------------------------------------------------------------------
    def channel(self, a: str, b: str) -> Optional[Channel]:
        key = (a, b) if a <= b else (b, a)
        return self._channels.get(key)

    def ship(self, src: str, dst: str, pred: str, args: Tuple, weight: int,
             prov: Optional[int] = None, trace: Optional[int] = None) -> None:
        self.transport.send(src, dst, pred, args, weight, prov=prov,
                            trace=trace)

    def deliver(self, message: Message) -> None:
        """Channel arrival: chaos delivery guard, then the reliable
        transport's dedup/reassembly filter, then dispatch.  All three
        backends funnel through here (the UDP fabric's ``on_message``
        included), so faults and the delivery contract behave
        identically everywhere."""
        if self.chaos is not None and not self.chaos.deliverable(message):
            return
        for ready in self.transport.on_arrival(message):
            self._dispatch(ready)

    def _dispatch(self, message: Message) -> None:
        """Hand one in-order message to the destination node (the live
        cluster overrides this to enqueue onto the node task's inbox)."""
        node = self.nodes.get(message.dst)
        if node is None:
            raise NetworkError(f"message to unknown node {message.dst}")
        for delta in message.deltas:
            node.receive(delta.pred, delta.args, delta.weight,
                         prov=delta.prov, origin=message.src,
                         trace=delta.trace)

    def clock_for(self, node: str):
        """The clock a node schedules on: the shared cluster clock, or
        its skewed view when the chaos schedule drifts this node."""
        if self.chaos is not None:
            return self.chaos.clock_for(node)
        return self.clock

    def fail_link(self, src: str, dst: str) -> None:
        """Convergence watchdog: ``dst`` stopped acknowledging ``src``.
        Delete the link facts for the pair at the surviving endpoint --
        the same declarative path a planned link update takes -- so the
        protocol re-converges around the dead peer."""
        node = self.nodes.get(src)
        if node is None:
            return
        self.stats.links_torn_down += 1
        if self.tracer is not None:
            self.tracer.fault("link_teardown", src, dst)
        self._begin_repair()
        for pred in self.link_loads:
            table = node.db.tables.get(pred)
            if table is None:
                continue
            for args in [
                row for row in table.rows()
                if len(row) >= 2 and row[0] == src and row[1] == dst
            ]:
                node.delete(pred, args)
        # A deletion cascade cannot route through the dead peer (the
        # localized joins live there), so withdraw its advertisements
        # on its behalf; re-convergence then propagates normally among
        # the survivors.
        node.invalidate_peer(dst)

    def pkey_of(self, pred: str, args: Tuple) -> Tuple:
        key = self._pkeys.get(pred)
        if not key:
            return args
        return tuple(args[i] for i in key)

    def observe_commit(self, node: str, fact: Fact, weight: int) -> None:
        for tracker in self.trackers:
            tracker.on_commit(self.clock.now, fact, weight)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the network until quiescence (or ``until``); returns the
        final virtual time.  Only meaningful on the virtual clock --
        wall time advances by itself (see
        :class:`~repro.runtime.live.LiveCluster`)."""
        if not isinstance(self.clock, Simulator):
            raise NetworkError(
                "cluster.run() drives the virtual clock; a live cluster "
                "advances on wall time (await deployment.quiescent())"
            )
        end = self.clock.run(until=until)
        # Quiescence boundary inside an open repair window (a watchdog
        # teardown happened): restore broken keyed slots -- empty, but
        # with superseded-yet-outstanding versions shadowed -- and run
        # each repair wave to quiescence; when a sweep finds none, the
        # repair is complete.  Restores must wait for quiescence (not
        # run amid churn) or stale re-advertisements into latest-wins
        # slots feed back around topology cycles forever.
        while self.clock.pending == 0 and self._repair_pending:
            if self._queue_slot_repairs():
                end = self.clock.run(until=until)
            else:
                self._repair_pending = False
        return end

    def _begin_repair(self) -> None:
        """Open the repair window: the next quiescence sweeps for broken
        slots (:meth:`~repro.engine.psn.PSNEngine.queue_slot_repairs`)."""
        self._repair_pending = True

    def repair(self) -> float:
        """Run the quiescent slot-repair sweep to fixpoint.  The
        watchdog opens the repair window automatically when it tears a
        link down; calling this explicitly computes the same *repaired*
        fixpoint on a fault-free run (the reference side of a
        :class:`~repro.chaos.ChaosMonitor` comparison)."""
        self._begin_repair()
        return self.run()

    def _queue_slot_repairs(self) -> int:
        down = (
            self.chaos.dead_nodes(self.clock.now)
            if self.chaos is not None else frozenset()
        )
        queued = 0
        for name, node in self.nodes.items():
            if name not in down:
                queued += node.queue_slot_repairs()
        return queued

    @property
    def quiescent(self) -> bool:
        down = (
            self.chaos.dead_nodes(self.clock.now)
            if self.chaos is not None else frozenset()
        )
        # A crashed node's queue is frozen, not pending work: the rest
        # of the network is quiescent without it.
        return self.clock.pending == 0 and all(
            node.quiescent
            for name, node in self.nodes.items()
            if name not in down
        )

    # ------------------------------------------------------------------
    # Result access
    # ------------------------------------------------------------------
    def rows(self, pred: str, node: Optional[str] = None) -> frozenset:
        """Union of ``pred`` rows across nodes (or one node's rows)."""
        if node is not None:
            return frozenset(self.nodes[node].db.table(pred).rows())
        out = set()
        for runtime in self.nodes.values():
            out.update(runtime.db.table(pred).rows())
        return frozenset(out)

    def query_rows(self) -> frozenset:
        if self.source_program.query is None:
            raise PlanError("program has no query")
        return self.rows(self.source_program.query.pred)

    def total_deltas_processed(self) -> int:
        return sum(node.deltas_processed for node in self.nodes.values())

    # ------------------------------------------------------------------
    # Provenance queries
    # ------------------------------------------------------------------
    def _require_provenance(self):
        if self.provenance is None:
            raise PlanError(
                "deployment was compiled without provenance capture; "
                "compile(..., provenance=True) before deploying"
            )
        return self.provenance

    def why(self, pred: str, args: Tuple, max_depth: int = 128):
        """Derivation tree for ``pred(args)``, traced across nodes."""
        from repro.provenance import why as _why

        return _why(self._require_provenance(), pred, tuple(args),
                    max_depth=max_depth)

    def why_not(self, pred: str, args: Tuple, depth: int = 2):
        """Failed-body analysis against the pre-localization rule set
        and the union of every node's tables."""
        from repro.provenance import why_not as _why_not

        def rows_of(name: str):
            try:
                # repr-keyed sort: deterministic enumeration order for
                # the analysis even with mixed-type columns.
                return sorted(self.rows(name), key=repr)
            except SchemaError:
                return ()  # predicate unknown to the deployed schema

        sample = next(iter(self.nodes.values()))
        return _why_not(
            self.source_program, rows_of, pred, tuple(args),
            functions=sample.db.functions, depth=depth,
        )

    def audit(self, strict: Optional[bool] = None,
              exclude_nodes=()):
        """Cross-check per-node derivation counts against the shared
        provenance graph; call at quiescence."""
        self._require_provenance()
        from repro.provenance import audit_cluster

        return audit_cluster(self, strict=strict,
                             exclude_nodes=exclude_nodes)

    # ------------------------------------------------------------------
    # Observability (:mod:`repro.obs`)
    # ------------------------------------------------------------------
    def _require_metrics(self):
        if self.metrics is None:
            raise PlanError(
                "deployment was started without the metrics registry; "
                "deploy(..., metrics=True) to collect it"
            )
        return self.metrics

    def _require_tracer(self):
        if self.tracer is None:
            raise PlanError(
                "deployment was started without delta tracing; "
                "deploy(..., trace=True) to record spans"
            )
        return self.tracer

    def metrics_snapshot(self):
        """Point-in-time :class:`~repro.obs.MetricsSnapshot`: pushed
        counters (rule firings, weighted commits, retransmits) merged
        with state pulled from the engines, tables and traffic stats."""
        return self._require_metrics().snapshot(self)

    def metrics_text(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        return self.metrics_snapshot().to_prometheus()

    def refresh_stats(self) -> None:
        """Feed live table sizes and commit churn into each node's
        :class:`~repro.opt.costbased.StatsCatalog`, closing the loop
        between the metrics registry and the cost-based optimizer."""
        snapshot = self.metrics_snapshot()
        churn = snapshot.churn()
        for name, node in self.nodes.items():
            catalog = node.stats_catalog
            if catalog is None:
                continue
            sizes = {
                pred: float(len(table))
                for pred, table in node.db.tables.items()
                if len(table)
            }
            catalog.refresh(sizes=sizes, churn=churn)

    def profile_report(self):
        """Merged per-(rule, strand) CPU profile across all nodes."""
        if not self.config.profile:
            raise PlanError(
                "deployment was started without profiling; "
                "deploy(..., profile=True) to accumulate strand timings"
            )
        from repro.obs import Profiler

        merged = Profiler()
        for node in self.nodes.values():
            if node.profiler is not None:
                merged.merge(node.profiler)
        return merged

    def save_trace(self, path: str) -> None:
        """Export the recorded spans as Chrome trace-event JSON."""
        self._require_tracer().save(path)

"""Distributed runtime: per-node PSN dataflows over the simulated
network, with transport-level optimizations and dynamic workloads."""

from repro.runtime.cluster import Cluster
from repro.runtime.config import CachePolicy, RuntimeConfig, ShareSpec
from repro.runtime.node import NodeRuntime
from repro.runtime.softstate import SoftStateManager
from repro.runtime.updates import LinkUpdateDriver

__all__ = [
    "Cluster",
    "RuntimeConfig",
    "ShareSpec",
    "CachePolicy",
    "NodeRuntime",
    "SoftStateManager",
    "LinkUpdateDriver",
]

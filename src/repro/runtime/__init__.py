"""Distributed runtime: per-node PSN dataflows over either execution
target -- the virtual-time simulated network or the live wall-clock
asyncio runtime -- with transport-level optimizations and dynamic
workloads."""

from repro.runtime.cluster import Cluster
from repro.runtime.config import CachePolicy, RuntimeConfig, ShareSpec
from repro.runtime.live import LiveCluster, LiveDeployment
from repro.runtime.node import NodeRuntime
from repro.runtime.softstate import SoftStateManager
from repro.runtime.updates import LinkUpdateDriver

__all__ = [
    "Cluster",
    "LiveCluster",
    "LiveDeployment",
    "RuntimeConfig",
    "ShareSpec",
    "CachePolicy",
    "NodeRuntime",
    "SoftStateManager",
    "LinkUpdateDriver",
]

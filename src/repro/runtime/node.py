"""Per-node runtime: a PSN engine embedded in the simulated network.

Each node runs the localized program over its own partition of every
relation (horizontal partitioning by location specifier, Section 2.1).
Rule strands execute exactly as in the centralized engine; the only
difference is head routing: a head tuple whose location specifier is a
different address is shipped along the link (Claim 1 guarantees the
destination is a link neighbour).

Processing costs virtual CPU time: each queued delta consumed charges
``cpu_delay``, which serializes a node's work the way a single P2
dataflow thread would.  A tick consumes up to ``config.cpu_batch``
deltas through the engine's micro-batched commit path and books the
node for the corresponding multiple of ``cpu_delay``, so virtual-time
accounting is independent of the batch size while the host-side
simulation does per-event work once per batch instead of once per
delta.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.engine.database import Database
from repro.engine.facts import Fact
from repro.engine.psn import PSNEngine, QueuedDelta
from repro.engine.rules import CompiledRule
from repro.ndlog.ast import Program
from repro.ndlog.functions import REGISTRY

_SUBPATH = REGISTRY["f_subpath"]
_CONCAT = REGISTRY["f_concatPath"]
_LAST = REGISTRY["f_last"]


class NodeRuntime(PSNEngine):
    """One network node executing the localized program."""

    def __init__(self, address: str, program: Program, cluster):
        # Set before super().__init__: the engine's batchable-predicate
        # scan calls back into _unbatchable_preds, which reads the
        # cluster's cache policy.
        self.address = address
        self.cluster = cluster
        #: This node's scheduling clock: the shared cluster clock, or a
        #: drifted view of it when a chaos schedule skews this node.
        #: (``self.clock`` is taken: PSN's logical timestamp counter.)
        self.net_clock = cluster.clock_for(address)
        store = getattr(cluster, "provenance", None)
        recorder = None
        if store is not None:
            recorder = store.recorder(
                node=address, clock=lambda: cluster.clock.now
            )
        # Observability handles follow the provenance recorder's shape:
        # per-node views bound off the cluster-wide registries, or
        # ``None`` so every hot-path site is one attribute check.
        registry = getattr(cluster, "metrics", None)
        metrics = registry.node(address) if registry is not None else None
        shared_tracer = getattr(cluster, "tracer", None)
        tracer = (
            shared_tracer.recorder(address)
            if shared_tracer is not None else None
        )
        profiler = None
        if cluster.config.profile:
            from repro.obs import Profiler

            profiler = Profiler()
        super().__init__(program, db=Database.for_program(program),
                         batch_size=cluster.config.cpu_batch,
                         provenance=recorder, metrics=metrics,
                         tracer=tracer, profiler=profiler)
        self._tick_scheduled = False
        self.deltas_processed = 0
        self.on_commit = self._commit_hook
        #: Net arrivals per neighbor: peer -> fact -> (inserts - deletes).
        #: Maintained only under the reliable transport, where the
        #: convergence watchdog may need to invalidate everything a dead
        #: peer ever advertised (a deletion cascade cannot route through
        #: a crashed node -- the joins live there).
        self.peer_ledger: Dict[str, Dict[Fact, int]] = {}
        #: Query-result cache: dst -> (path_suffix, cost).  Section 5.2.
        self.result_cache: Dict[str, Tuple[Tuple, float]] = {}
        self.cache_hits = 0

    def _unbatchable_preds(self):
        """Cache-intercepted query tuples must flow through the
        per-delta path so :meth:`_fire_strands` can suppress the
        flooding strands on a hit."""
        policy = self.cluster.config.cache
        return () if policy is None else (policy.query_pred,)

    # ------------------------------------------------------------------
    # Scheduling: up to cpu_batch deltas per CPU tick
    # ------------------------------------------------------------------
    def _enqueue(self, delta: QueuedDelta) -> None:
        self.queue.append(delta)
        self._schedule_tick()

    def _schedule_tick(self) -> None:
        if self._tick_scheduled or not self.queue:
            return
        self._tick_scheduled = True
        self.net_clock.post(self.cluster.config.cpu_delay, self._tick)

    def _tick(self) -> None:
        chaos = self.cluster.chaos
        if chaos is not None:
            resume = chaos.down_until(self.address)
            if resume is not None:
                # Fail-pause crash: the dataflow freezes with its queue
                # intact.  With a scheduled restart the tick parks until
                # then and processing resumes on the retained state;
                # without one the node is dead for good and its queue
                # stays parked (quiescence checks skip it).
                if resume == float("inf"):
                    self._tick_scheduled = False
                    return
                self.net_clock.post(
                    max(0.0, resume - self.net_clock.now)
                    + self.cluster.config.cpu_delay,
                    self._tick,
                )
                return
        metrics = self.metrics
        if metrics is not None:
            depth = len(self.queue)
            if depth > metrics.queue_peak:
                metrics.queue_peak = depth
        processed = 0
        if self.queue:
            if self.batch_size > 1:
                processed = self.process_chunk(self.batch_size)
            else:
                self.process_next()
                processed = 1
            self.deltas_processed += processed
        # The tick that fired was charged one cpu_delay ahead (for its
        # first delta); the remaining (processed - 1) deltas owe their
        # CPU time now, so the node stays booked for it -- deltas
        # arriving meanwhile wait their turn exactly as behind a busy
        # single-threaded dataflow.  With batch_size=1 this reduces to
        # the historical schedule: one charged delta per event, idle
        # immediately after a drain.
        delay = self.cluster.config.cpu_delay
        if self.queue:
            self.net_clock.post(delay * max(processed, 1), self._tick)
        elif processed > 1:
            self.net_clock.post(delay * (processed - 1), self._tick)
        else:
            self._tick_scheduled = False

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------
    def receive(self, pred: str, args: Tuple, weight: int,
                prov: Optional[int] = None,
                origin: Optional[str] = None,
                trace: Optional[int] = None) -> None:
        """A weighted tuple arrived over a link: enqueue it like a local
        delta ("a timestamp is added to each tuple at arrival", Section
        3.3.2 -- in our commit discipline the arrival order itself is
        the timestamp).  ``weight`` is the Z-set weight off the wire
        (``+-1`` per visibility transition; larger magnitudes when the
        sender coalesced a window).  ``prov`` is the piggybacked
        derivation id from the producing node, noted on the shared
        store so the arrival is traceable even across a real (UDP)
        wire; ``origin`` is the sending neighbor, booked on the peer
        ledger when the watchdog may later need to invalidate that
        neighbor's contributions."""
        fact = Fact(pred, tuple(args))
        if origin is not None and self.cluster.config.reliable:
            ledger = self.peer_ledger.setdefault(origin, {})
            count = ledger.get(fact, 0) + weight
            if count:
                ledger[fact] = count
            else:
                ledger.pop(fact, None)
        if prov is not None and self.provenance is not None and weight > 0:
            self.provenance.arrival(fact, prov)
        if trace is not None and weight and self.tracer is not None:
            # Continue the sender's trace: record the arrival span and
            # enqueue with the id attached so downstream derivations and
            # the local commit stay causally linked.
            self.tracer.receive(fact, weight, trace, origin)
            self._enqueue(QueuedDelta(fact, weight, trace=trace))
        else:
            self.derive(fact, weight)

    def invalidate_peer(self, peer: str) -> None:
        """Watchdog support: retract every net contribution ``peer``
        shipped here, as if the dead neighbor had withdrawn its
        advertisements itself (the deletion cascade then propagates
        among the survivors normally).  Each fact's net count withdraws
        as one weighted intent -- the Z-set representation's payoff:
        the dead peer's whole ledger is a handful of bulk deltas."""
        ledger = self.peer_ledger.pop(peer, {})
        for fact, count in ledger.items():
            if count > 0:
                self.derive(fact, -count)

    def _emit(self, crule: CompiledRule, head: Tuple, sign: int) -> None:
        pred = crule.head.pred
        if crule.aggregate is not None:
            # Aggregate rules are local rules (their inputs and output
            # share the node), so the view output stays here.
            view = self.views[pred]
            for view_sign, view_args in view.apply(head, sign):
                self.derive(Fact(pred, view_args), view_sign)
            return
        if crule.argmin is not None:
            view = self.argmin_views[pred]
            for view_sign, view_args in view.apply(head, sign):
                self.derive(Fact(pred, view_args), view_sign)
            return
        destination = head[0]
        if destination == self.address:
            self.derive(Fact(pred, head), sign)
        else:
            if self._local_only:
                # Fallback restore in progress: the restored row is an
                # old advertisement -- downstream already saw (and moved
                # past) it, so it must not be re-announced.
                return
            prov = None
            if self.provenance is not None and sign > 0:
                # Piggyback the freshest live derivation id so the
                # remote materialization links back to this firing.
                prov = self.provenance.store.latest_live_id(
                    Fact(pred, head)
                )
            self.cluster.ship(self.address, destination, pred, head, sign,
                              prov=prov, trace=self._active_trace)

    # ------------------------------------------------------------------
    # Query-result caching hooks (Section 5.2)
    # ------------------------------------------------------------------
    def _commit_hook(self, fact: Fact, weight: int) -> None:
        """Weighted visibility transition: ``+w`` derivations became
        visible (or refreshed), or ``-w`` left visibility -- a ``+k``
        burst counts ``k``, not 1 (see ``PSNEngine.on_commit``)."""
        cluster = self.cluster
        policy = cluster.config.cache
        if (policy is not None and weight > 0
                and fact.pred == policy.answer_pred):
            self._cache_answer(policy, fact.args)
        metrics = self.metrics
        if metrics is not None:
            counters = metrics.commits if weight > 0 else metrics.retractions
            counters[fact.pred] = counters.get(fact.pred, 0) + abs(weight)
        if self.tracer is not None and self._active_trace is not None:
            self.tracer.commit(fact, weight, self._active_trace)
        cluster.observe_commit(self.address, fact, weight)

    def _cache_answer(self, policy, args: Tuple) -> None:
        """Install a cache entry from an answer travelling the reverse
        path: the suffix of the answer path from this node to the
        destination is itself an optimal path ("since the subpaths of
        shortest paths are optimal, these can also be cached")."""
        path = args[policy.answer_path_position]
        if not isinstance(path, tuple) or self.address not in path:
            return
        suffix = _SUBPATH(path, self.address)
        if len(suffix) < 2:
            return
        destination = _LAST(path)
        cost = len(suffix) - 1  # hop-count workload (Section 6.3)
        existing = self.result_cache.get(destination)
        if existing is None or cost < existing[1]:
            self.result_cache[destination] = (suffix, cost)

    def _fire_strands(self, fact: Fact, sign: int) -> None:
        policy = self.cluster.config.cache
        suppress = ()
        if (
            policy is not None
            and sign > 0
            and fact.pred == policy.query_pred
        ):
            suppress = self._try_cache_hit(policy, fact)
        for strand in self.strands.get(fact.pred, ()):
            if suppress and strand.crule.rule.label in suppress:
                continue
            self._fire_strand(strand, fact, sign)

    def _try_cache_hit(self, policy, fact: Fact) -> Tuple[str, ...]:
        """On a cached destination, answer directly and stop the flood
        ("this cached value can be reused by all queries for destination
        d that pass through a")."""
        args = fact.args
        destination = args[policy.dst_position]
        if destination == self.address:
            return ()
        entry = self.result_cache.get(destination)
        if entry is None:
            return ()
        suffix, suffix_cost = entry
        prefix = args[policy.path_position]
        if any(node in prefix for node in suffix[1:]):
            return ()  # joining would create a loop; flood normally
        full_path = _CONCAT(prefix, suffix)
        full_cost = args[policy.cost_position] + suffix_cost
        qid = args[1]
        self.cache_hits += 1
        answer = Fact(policy.answer_pred,
                      (self.address, qid, full_path, full_cost))
        if self.provenance is not None:
            # A cache hit synthesizes the answer outside any rule strand;
            # record it so the derivation graph still supports the tuple.
            self.provenance.record_fact("<cache>", answer, (fact,), 1)
        self.derive(answer, 1)
        return policy.suppress_labels

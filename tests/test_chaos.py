"""Chaos harness tests: schedule DSL, deterministic replay, reliable
delivery under injected faults, the convergence watchdog, and the
hardened wire path.

The scenarios follow the acceptance bar of the chaos work: a seeded
fault plan on an 8-node overlay must converge to the *exact* fault-free
fixpoint with ``reliable=True`` (provenance auditor clean), the same
plan without the reliable layer must demonstrably lose or corrupt
state, and identical seeds must replay identical fault traces.
"""

import pytest

import repro
from repro.chaos import ChaosMonitor, ChaosSchedule, Fault
from repro.errors import NetworkError
from repro.ndlog import programs
from repro.net.live import decode_message, encode_message
from repro.net.message import Message, NetDelta
from repro.net.reliable import Flow
from repro.runtime import RuntimeConfig
from repro.topology import build_overlay, transit_stub


def overlay8():
    return build_overlay(transit_stub(seed=5), n_nodes=8, degree=3, seed=5)


@pytest.fixture(scope="module")
def sp_compiled():
    return repro.compile(programs.shortest_path_dynamic(),
                         passes=["localize"])


@pytest.fixture(scope="module")
def sp_provenance():
    return repro.compile(programs.shortest_path_dynamic(),
                         passes=["localize"], provenance=True)


def combined_schedule():
    """The acceptance scenario: every message fault plus a partition
    that heals, on one seed."""
    return (ChaosSchedule(seed=23)
            .drop(rate=0.1, start=0.0, end=2.0)
            .duplicate(rate=0.1, start=0.0, end=2.0)
            .reorder(rate=0.15, start=0.0, end=2.0)
            .corrupt(rate=0.05, start=0.0, end=1.5)
            .partition(["n1", "n4"], start=0.8, end=1.4)
            .clock_skew("n6", drift=1.02))


class TestScheduleDSL:
    def test_json_round_trip_is_exact(self):
        schedule = combined_schedule().crash("n2", at=1.0, restart=2.0)
        assert ChaosSchedule.from_json(schedule.to_json()) == schedule

    def test_malformed_json_is_a_network_error(self):
        with pytest.raises(NetworkError, match="malformed"):
            ChaosSchedule.from_json("{nope")

    def test_unknown_fault_field_is_a_network_error(self):
        with pytest.raises(NetworkError, match="bad fault record"):
            ChaosSchedule.from_dict(
                {"seed": 1, "faults": [{"kind": "drop", "sauce": 1}]}
            )

    @pytest.mark.parametrize("bad", [
        lambda s: s.drop(rate=1.5),
        lambda s: s.drop(rate=0.1, start=2.0, end=1.0),
        lambda s: s.partition([], start=0.0),
        lambda s: s.crash("n0", at=1.0, restart=0.5),
        lambda s: s.clock_skew("n0", drift=0.0),
        lambda s: s.reorder(rate=0.1, min_delay=0.2, max_delay=0.1),
    ])
    def test_invalid_faults_rejected(self, bad):
        with pytest.raises(NetworkError):
            bad(ChaosSchedule(seed=1))

    def test_fault_windows_and_link_scope(self):
        fault = Fault("drop", start=1.0, end=2.0, rate=0.5,
                      link=("a", "b"))
        assert not fault.active(0.5)
        assert fault.active(1.0) and fault.active(1.999)
        assert not fault.active(2.0)
        assert fault.on_link("a", "b") and fault.on_link("b", "a")
        assert not fault.on_link("a", "c")
        assert Fault("drop").active(1e9)  # end=None: until the run ends


class TestReliableProtocol:
    """Unit coverage of the per-direction Flow state machine."""

    def make_flow(self):
        return Flow("a", "b", rto_base=0.1)

    def test_cumulative_ack_clears_and_resets_backoff(self):
        flow = self.make_flow()
        for _ in range(3):
            flow.stamp(Message(src="a", dst="b", deltas=()))
        flow.backoff(2.0, 1.0)
        assert flow.retries == 1 and flow.rto == pytest.approx(0.2)
        assert flow.absorb_ack(2)  # covers seqs 1 and 2
        assert list(flow.unacked) == [3]
        assert flow.retries == 0 and flow.rto == pytest.approx(0.1)

    def test_stale_ack_does_not_reset_backoff(self):
        flow = self.make_flow()
        flow.stamp(Message(src="a", dst="b", deltas=()))
        assert flow.absorb_ack(1)
        flow.stamp(Message(src="a", dst="b", deltas=()))
        flow.backoff(2.0, 1.0)
        assert not flow.absorb_ack(1)  # duplicate of an old ack
        assert flow.retries == 1

    def test_backoff_caps_at_rto_max(self):
        flow = self.make_flow()
        for _ in range(10):
            flow.backoff(2.0, 0.5)
        assert flow.rto == pytest.approx(0.5)
        assert flow.retries == 10

    def test_receiver_dedups_and_reassembles_in_order(self):
        flow = self.make_flow()
        m = {s: Message(src="a", dst="b", deltas=(), seq=s)
             for s in range(1, 5)}
        ready, dup, healed = flow.admit(2, m[2])  # gap: buffered
        assert (ready, dup, healed) == ([], False, 0)
        ready, dup, healed = flow.admit(2, m[2])  # duplicate of buffered
        assert (ready, dup, healed) == ([], True, 0)
        ready, dup, healed = flow.admit(1, m[1])  # heals the gap
        assert [r.seq for r in ready] == [1, 2] and healed == 1
        ready, dup, healed = flow.admit(1, m[1])  # duplicate of delivered
        assert (ready, dup, healed) == ([], True, 0)
        ready, _, _ = flow.admit(3, m[3])
        assert [r.seq for r in ready] == [3]


class TestWireHardening:
    def test_decode_round_trip(self):
        message = Message(src="a", dst="b",
                          deltas=(NetDelta("link", ("a", "b", 1.0), 1),),
                          seq=7, ack=3)
        decoded = decode_message(encode_message(message))
        assert decoded.src == "a" and decoded.seq == 7 and decoded.ack == 3
        assert decoded.deltas == message.deltas

    @pytest.mark.parametrize("blob", [
        b"\xff\x00garbage",
        b"{}",
        b'{"src": 3, "dst": "b", "deltas": []}',
        encode_message(Message(src="a", dst="b", deltas=()))[:-4],
    ])
    def test_malformed_datagrams_raise_network_error(self, blob):
        with pytest.raises(NetworkError, match="malformed"):
            decode_message(blob)


class TestDeterministicReplay:
    def test_identical_seeds_replay_identical_traces(self, sp_compiled):
        traces = []
        for _ in range(2):
            deployment = sp_compiled.deploy(
                topology=overlay8(), chaos=combined_schedule(),
                reliable=True,
            )
            deployment.advance()
            traces.append(tuple(deployment.cluster.chaos.trace))
        assert traces[0] == traces[1]
        assert len(traces[0]) > 100  # the plan really fired

    def test_different_seeds_diverge(self, sp_compiled):
        traces = []
        for seed in (23, 24):
            schedule = ChaosSchedule(seed=seed).drop(rate=0.2)
            deployment = sp_compiled.deploy(
                topology=overlay8(), chaos=schedule, reliable=True,
            )
            deployment.advance()
            traces.append(tuple(deployment.cluster.chaos.trace))
        assert traces[0] != traces[1]


class TestLossyConvergence:
    """Lossy links + reliable transport must reach the exact fault-free
    fixpoint (shortest-path and the DSR-style on-demand magic form)."""

    @pytest.mark.parametrize("loss_rate", [0.05, 0.2])
    def test_sim_shortest_path_converges_under_loss(
        self, sp_compiled, loss_rate
    ):
        monitor = ChaosMonitor(sp_compiled, overlay8())
        deployment = sp_compiled.deploy(
            topology=overlay8(),
            chaos=ChaosSchedule(seed=11).drop(rate=loss_rate),
            reliable=True,
        )
        deployment.advance()
        verdict = monitor.check(deployment)
        assert verdict.ok, verdict.summary()
        assert verdict.stats["retransmits"] > 0

    @pytest.mark.parametrize("loss_rate", [0.05, 0.2])
    def test_sim_dsr_style_magic_converges_under_loss(self, loss_rate):
        compiled = repro.compile(programs.multi_query_magic(),
                                 passes=["localize"])
        topology = overlay8()
        src, dst = topology.nodes[0], topology.nodes[-1]
        monitor = ChaosMonitor(compiled, topology,
                               link_loads={"link": "hopcount"})
        monitor.inject(src, "magicQuery", (src, "q0", dst))
        deployment = compiled.deploy(
            topology=topology, link_loads={"link": "hopcount"},
            chaos=ChaosSchedule(seed=11).drop(rate=loss_rate),
            reliable=True,
        )
        deployment.inject(src, "magicQuery", (src, "q0", dst))
        deployment.advance()
        verdict = monitor.check(deployment)
        assert verdict.ok, verdict.summary()
        assert deployment.rows("queryResult")  # the query got an answer

    @pytest.mark.parametrize("loss_rate", [0.05, 0.2])
    def test_live_inproc_converges_under_loss(self, sp_compiled, loss_rate):
        monitor = ChaosMonitor(sp_compiled, overlay8())
        live = sp_compiled.deploy(
            topology=overlay8(), target="live",
            chaos=ChaosSchedule(seed=11).drop(rate=loss_rate),
            reliable=True,
        )
        assert live.converge(timeout=120.0)
        verdict = monitor.check(live)
        assert verdict.ok, verdict.summary()
        assert verdict.stats["retransmits"] > 0

    def test_live_udp_converges_under_loss(self, sp_compiled):
        monitor = ChaosMonitor(sp_compiled, overlay8())
        live = sp_compiled.deploy(
            topology=overlay8(), target="live", channels="udp",
            chaos=ChaosSchedule(seed=11).drop(rate=0.1),
            reliable=True,
        )
        try:
            converged = live.converge(timeout=120.0)
        except OSError as exc:  # no loopback sockets in this sandbox
            pytest.skip(f"cannot open UDP sockets: {exc}")
        assert converged
        verdict = monitor.check(live)
        assert verdict.ok, verdict.summary()
        assert verdict.stats["retransmits"] > 0

    def test_raw_transport_diverges_under_loss(self, sp_compiled):
        """Same loss without the reliable layer: facts are lost or stale
        state survives -- the contrast that motivates the transport."""
        deployment = sp_compiled.deploy(
            topology=overlay8(),
            chaos=ChaosSchedule(seed=11).drop(rate=0.2),
        )
        deployment.advance()
        verdict = ChaosMonitor(sp_compiled, overlay8()).check(deployment)
        assert not verdict.fixpoint_match


class TestCombinedScenario:
    """The acceptance scenario: all fault kinds at once."""

    def test_combined_schedule_exact_fixpoint_and_clean_audit(
        self, sp_provenance
    ):
        monitor = ChaosMonitor(sp_provenance, overlay8())
        deployment = sp_provenance.deploy(
            topology=overlay8(), chaos=combined_schedule(), reliable=True,
        )
        deployment.advance()
        verdict = monitor.check(deployment)
        assert verdict.ok, verdict.summary()
        assert verdict.audit_ok is True
        assert verdict.stats["faults"] > 500
        assert verdict.stats["dup_dropped"] > 0
        assert verdict.stats["malformed_dropped"] > 0

    def test_combined_schedule_without_reliable_diverges(self, sp_compiled):
        deployment = sp_compiled.deploy(
            topology=overlay8(), chaos=combined_schedule(),
        )
        deployment.advance()
        verdict = ChaosMonitor(sp_compiled, overlay8()).check(deployment)
        assert not verdict.fixpoint_match

    def test_crash_with_restart_recovers(self, sp_compiled):
        schedule = ChaosSchedule(seed=9).crash("n2", at=0.3, restart=0.9)
        monitor = ChaosMonitor(sp_compiled, overlay8())
        deployment = sp_compiled.deploy(
            topology=overlay8(), chaos=schedule, reliable=True,
        )
        deployment.advance()
        verdict = monitor.check(deployment)
        assert verdict.ok, verdict.summary()


class TestWatchdog:
    def test_watchdog_tears_down_dead_links_and_routes_around(
        self, sp_provenance
    ):
        """Crash without restart: the retry budget exhausts on every
        link of the dead node, the watchdog tears them down through the
        link-update path, and the survivors re-converge to the fixpoint
        of the post-fault topology.  The provenance audit must come
        back clean too -- the crashed node's frozen tables are exempt,
        the survivors' are not."""
        dead = "n3"
        post = overlay8()
        post.links = {k: v for k, v in post.links.items()
                      if dead not in k}
        monitor = ChaosMonitor(sp_provenance, post)
        deployment = sp_provenance.deploy(
            topology=overlay8(),
            config=RuntimeConfig(reliable=True, retry_budget=4),
            chaos=ChaosSchedule(seed=7).crash(dead, at=0.5),
        )
        deployment.advance()
        verdict = monitor.check(deployment, exclude_nodes=[dead])
        assert verdict.ok, verdict.summary()
        assert verdict.audit_ok is True
        # n3 had degree 5 in this overlay: every surviving neighbour's
        # watchdog independently declared it dead.
        assert verdict.stats["links_torn_down"] == 5
        survivors = [n for n in overlay8().nodes if n != dead]
        reached = {row[:2] for node in survivors
                   for row in deployment.rows("path", node=node)}
        # Survivors still route to each other without the dead node.
        for src in survivors[:3]:
            assert any(s == src for s, _d in reached)

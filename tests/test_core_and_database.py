"""Tests for the core facade and schema derivation."""

import pytest

from repro import core
from repro.engine import Database
from repro.errors import PlanError, SchemaError
from repro.ndlog import parse, programs

FIGURE2_LINKS = [
    ("a", "b", 5), ("b", "a", 5),
    ("a", "c", 1), ("c", "a", 1),
    ("c", "b", 1), ("b", "c", 1),
]


class TestCoreFacade:
    def test_run_centralized_from_source(self):
        result = core.run_centralized(
            programs.SHORTEST_PATH_SAFE,
            facts={"link": FIGURE2_LINKS},
        )
        assert ("a", "b", ("a", "c", "b"), 2) in result.rows("shortestPath")

    def test_run_centralized_all_engines_agree(self):
        outcomes = {
            engine: core.run_centralized(
                programs.transitive_closure(),
                facts={"edge": [("x", "y"), ("y", "z")]},
                engine=engine,
            ).rows("tc")
            for engine in ("naive", "seminaive", "bsn", "psn")
        }
        assert len(set(outcomes.values())) == 1
        assert ("x", "z") in next(iter(outcomes.values()))

    def test_unknown_engine_rejected(self):
        with pytest.raises(PlanError):
            core.run_centralized(programs.transitive_closure(),
                                 engine="quantum")

    def test_compile_program_pipeline(self):
        program = core.compile_program(
            programs.shortest_path(),
            aggregate_selections=True,
            localized=True,
        )
        from repro.planner.localization import is_canonical

        assert is_canonical(program)
        assert "path__best" in program.predicates()

    def test_deploy_runs(self):
        cluster = core.deploy(programs.shortest_path(), n_nodes=10,
                              degree=3, seed=4, metric="hopcount")
        cluster.run()
        assert cluster.rows("shortestPath")


class TestSchemaDerivation:
    def test_link_relation_keyed_on_endpoints(self):
        db = Database.for_program(programs.shortest_path())
        assert db.table("link").key == (0, 1)

    def test_aggregate_head_keyed_on_group(self):
        db = Database.for_program(programs.shortest_path())
        assert db.table("spCost").key == (0, 1)

    def test_default_full_key(self):
        db = Database.for_program(programs.shortest_path())
        assert db.table("path").key == (0, 1, 2, 3, 4)

    def test_materialize_overrides(self):
        db = Database.for_program(programs.shortest_path_dynamic())
        assert db.table("path").key == (0, 1, 2)

    def test_finite_lifetime_recorded(self):
        program = parse(
            """
            materialize(beacon, 2.5, infinity, keys(1, 2)).
            B1: seen(@D, S) :- #beacon(@S, @D, C).
            """
        )
        db = Database.for_program(program)
        assert db.table("beacon").lifetime == 2.5

    def test_arity_conflict_rejected(self):
        program = parse("p(@S) :- q(@S).\nr(@S) :- q(@S, X).")
        with pytest.raises(SchemaError):
            Database.for_program(program)

    def test_unknown_table_access_raises(self):
        db = Database.for_program(programs.transitive_closure())
        with pytest.raises(SchemaError):
            db.table("nope")

    def test_snapshot(self):
        db = Database.for_program(programs.transitive_closure())
        db.load_facts("edge", [("a", "b")])
        snap = db.snapshot()
        assert snap["edge"] == frozenset({("a", "b")})
        assert snap["tc"] == frozenset()

"""The live execution target and the seams it shares with the sim:
Clock conformance (virtual vs wall), the wire format, sim-vs-live
fixpoint equivalence over in-process channels, and UDP convergence."""

import asyncio

import pytest

import repro
from repro.errors import NetworkError
from repro.ndlog import parse, programs
from repro.ndlog.terms import ConstructedTuple
from repro.net.clock import WallClock
from repro.net.link import LinkChannel
from repro.net.live import QueueChannel, decode_message, encode_message
from repro.net.message import Message, NetDelta, single
from repro.net.sim import Simulator
from repro.runtime import LiveCluster, LiveDeployment, RuntimeConfig
from repro.topology import build_overlay, transit_stub


# ----------------------------------------------------------------------
# Clock conformance: the same contract on virtual and wall time
# ----------------------------------------------------------------------
def drive_sim(setup, duration):
    clock = Simulator()
    setup(clock)
    clock.run(until=duration)
    return clock


def drive_wall(setup, duration):
    async def main():
        clock = WallClock()
        setup(clock)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + duration + 2.0
        while (clock.pending or clock.now < duration) \
                and loop.time() < deadline:
            await asyncio.sleep(0.005)
        return clock
    return asyncio.run(main())


@pytest.fixture(params=["virtual", "wall"])
def drive(request):
    """Run a scheduling scenario to completion on either clock."""
    return drive_sim if request.param == "virtual" else drive_wall


class TestClockConformance:
    def test_after_fires_in_delay_order(self, drive):
        log = []

        def setup(clock):
            clock.after(0.01, lambda: log.append("a"))
            clock.after(0.09, lambda: log.append("b"))
            clock.after(0.05, lambda: log.append("c"))

        drive(setup, 0.15)
        assert log == ["a", "c", "b"]

    def test_negative_delay_raises(self, drive):
        def setup(clock):
            with pytest.raises(NetworkError):
                clock.after(-0.1, lambda: None)
            with pytest.raises(NetworkError):
                clock.post(-0.1, lambda: None)

        drive(setup, 0.01)

    def test_post_fires_without_a_handle(self, drive):
        log = []
        drive(lambda clock: clock.post(0.01, lambda: log.append("x")), 0.05)
        assert log == ["x"]

    def test_cancellation_prevents_firing_and_releases_pending(self, drive):
        log = []

        def setup(clock):
            handle = clock.after(0.03, lambda: log.append("no"))
            clock.after(0.01, lambda: log.append("yes"))
            handle.cancel()

        clock = drive(setup, 0.1)
        assert log == ["yes"]
        assert clock.pending == 0

    def test_pending_counts_scheduled_events(self, drive):
        observed = []

        def setup(clock):
            for delay in (0.01, 0.02, 0.03):
                clock.after(delay, lambda: None)
            observed.append(clock.pending)

        clock = drive(setup, 0.1)
        assert observed == [3]
        assert clock.pending == 0

    def test_now_reaches_fire_times_and_observation_horizon(self, drive):
        seen = []

        def setup(clock):
            clock.at(0.05, lambda: seen.append(clock.now))

        clock = drive(setup, 0.12)
        assert len(seen) == 1
        # A timer never fires early (wall timers may be a little late).
        assert seen[0] >= 0.05 - 1e-9
        assert clock.now >= 0.12 - 1e-9

    def test_events_scheduled_from_callbacks_run(self, drive):
        log = []

        def setup(clock):
            def chain(n):
                log.append(n)
                if n < 3:
                    clock.after(0.01, lambda: chain(n + 1))

            clock.after(0.01, lambda: chain(0))

        drive(setup, 0.2)
        assert log == [0, 1, 2, 3]


class TestWallClock:
    def test_requires_running_loop(self):
        with pytest.raises(RuntimeError):
            WallClock()

    def test_at_in_the_past_fires_immediately(self):
        async def main():
            clock = WallClock()
            log = []
            await asyncio.sleep(0.02)
            clock.at(0.0, lambda: log.append(clock.now))  # already past
            await asyncio.sleep(0.02)
            return log

        log = asyncio.run(main())
        assert len(log) == 1

    def test_callback_failures_are_captured_not_swallowed_by_loop(self):
        async def main():
            clock = WallClock()
            clock.after(0.0, lambda: 1 / 0)
            await asyncio.sleep(0.02)
            return clock

        clock = asyncio.run(main())
        assert len(clock.failures) == 1
        assert isinstance(clock.failures[0][1], ZeroDivisionError)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def test_round_trip_preserves_nested_tuples_and_sizes(self):
        message = Message(
            src="n1", dst="n2",
            deltas=(
                NetDelta("path", ("n1", "n2", ("n1", "x", "n2"), 3.5), 1),
                NetDelta("link", ("n1", "n2", 2), -1),
            ),
            shared_bytes=7,
        )
        decoded = decode_message(encode_message(message))
        assert decoded == message
        assert decoded.deltas[0].args[2] == ("n1", "x", "n2")
        assert isinstance(decoded.deltas[0].args[2], tuple)
        assert decoded.size == message.size

    def test_round_trip_constructed_tuples(self):
        value = ConstructedTuple("link", ("a", "b", 5))
        message = single("a", "b", "p", (value, ("a", "b")), 1)
        decoded = decode_message(encode_message(message))
        got = decoded.deltas[0].args[0]
        assert isinstance(got, ConstructedTuple)
        assert got.pred == "link" and got.values == ("a", "b", 5)

    def test_unencodable_value_is_a_clear_error(self):
        message = single("a", "b", "p", (object(),), 1)
        with pytest.raises(NetworkError, match="cannot encode"):
            encode_message(message)


# ----------------------------------------------------------------------
# Channel interface: the live backends share the sim's emulation
# ----------------------------------------------------------------------
class TestChannelUnification:
    def test_queue_channel_matches_link_channel_arrival_times(self):
        """Same emulation model: identical booking on either backend."""
        sim = Simulator()
        messages = [single("a", "b", "p", (i, "x" * i), 1) for i in range(4)]
        kwargs = dict(latency=0.02, bandwidth_bps=8_000)
        link = LinkChannel("a", "b", **kwargs)
        queue = QueueChannel("a", "b", **kwargs)
        link_arrivals = [link.transmit(sim, m, lambda m: None)
                         for m in messages]
        queue_arrivals = [queue.transmit(sim, m, lambda m: None)
                          for m in messages]
        assert link_arrivals == queue_arrivals

    def test_queue_channel_emulated_loss(self):
        sim = Simulator()
        channel = QueueChannel("a", "b", latency=0.0, loss_rate=1.0)
        delivered = []
        channel.transmit(sim, single("a", "b", "p", (1,), 1),
                         delivered.append)
        sim.run()
        assert delivered == []


# ----------------------------------------------------------------------
# Sim-vs-live equivalence and UDP convergence
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def eight_node_overlay():
    return build_overlay(transit_stub(seed=5), n_nodes=8, degree=3, seed=5)


@pytest.fixture(scope="module")
def sp_compiled():
    return repro.compile(programs.shortest_path_safe(), passes=["localize"])


@pytest.fixture(scope="module")
def sim_fixpoint(sp_compiled, eight_node_overlay):
    deployment = sp_compiled.deploy(topology=eight_node_overlay,
                                    link_loads={"link": "hopcount"})
    deployment.advance()
    return deployment.query_rows()


class TestSimLiveEquivalence:
    def test_inproc_live_reaches_the_sim_fixpoint(
        self, sp_compiled, eight_node_overlay, sim_fixpoint
    ):
        """Same program + topology on the wall clock over asyncio queue
        channels converges to the same shortest-path rows as the
        virtual-clock simulator."""
        live = sp_compiled.deploy(
            topology=eight_node_overlay, link_loads={"link": "hopcount"},
            target="live",
        )
        assert live.converge(timeout=60.0)
        assert live.query_rows() == sim_fixpoint
        assert sim_fixpoint  # the comparison is not vacuous

    def test_udp_live_reaches_the_sim_fixpoint(
        self, sp_compiled, eight_node_overlay, sim_fixpoint
    ):
        live = sp_compiled.deploy(
            topology=eight_node_overlay, link_loads={"link": "hopcount"},
            target="live", channels="udp",
        )
        try:
            converged = live.converge(timeout=60.0)
        except OSError as exc:  # no loopback sockets in this sandbox
            pytest.skip(f"cannot open UDP sockets: {exc}")
        assert converged
        assert live.query_rows() == sim_fixpoint
        fabric = live.cluster.fabric
        assert fabric.datagrams_sent > 0  # deltas really crossed sockets

    def test_live_watch_and_buffered_inject(self, eight_node_overlay):
        """Pre-start watch/inject are replayed once the network is up;
        commit observation runs on wall time."""
        program = parse(
            """
            R1: reach(@D, S) :- #edge(@S, @D).
            Query: reach(@D, S).
            """, name="reach"
        )
        compiled = repro.compile(program, passes=["localize"],
                                 validate=False)
        nodes = eight_node_overlay.nodes
        a, b = nodes[0], eight_node_overlay.neighbors(nodes[0])[0]
        live = compiled.deploy(topology=eight_node_overlay,
                               link_loads={}, target="live")
        tracker = live.watch("reach")
        live.inject(a, "edge", (a, b))
        assert live.converge(timeout=30.0)
        assert live.rows("reach", node=b) == frozenset({(b, a)})
        assert tracker.completion_times()  # observed on the wall clock

    def test_node_failures_surface_at_stop(self, eight_node_overlay):
        async def main():
            compiled = repro.compile(programs.shortest_path_safe(),
                                     passes=["localize"])
            cluster = LiveCluster(eight_node_overlay, compiled,
                                  RuntimeConfig(),
                                  link_loads={"link": "hopcount"})
            await cluster.start()
            cluster._task_failures.append(("n0", RuntimeError("boom")))
            with pytest.raises(NetworkError, match="boom"):
                await cluster.stop()

        asyncio.run(main())

    def test_unknown_backend_rejected(self, sp_compiled, eight_node_overlay):
        with pytest.raises(NetworkError, match="channel backend"):
            LiveDeployment(sp_compiled, eight_node_overlay,
                           channels="carrier-pigeon")

    def test_data_verbs_require_start(self, sp_compiled, eight_node_overlay):
        live = sp_compiled.deploy(topology=eight_node_overlay,
                                  target="live")
        with pytest.raises(NetworkError, match="not started"):
            live.query_rows()

    def test_workload_verbs_after_stop_raise_clearly(
        self, sp_compiled, eight_node_overlay
    ):
        """The wall clock dies with its event loop; post-stop workload
        calls must be a clear library error, not an asyncio 'Event loop
        is closed' from deep inside a timer."""
        live = sp_compiled.deploy(
            topology=eight_node_overlay, link_loads={"link": "hopcount"},
            target="live",
        )
        assert live.converge(timeout=60.0)
        rows = live.query_rows()  # results stay readable
        assert rows
        a = eight_node_overlay.nodes[0]
        with pytest.raises(NetworkError, match="already stopped"):
            live.delete(a, "link", (a, "x", 1))
        with pytest.raises(NetworkError, match="already stopped"):
            live.converge(timeout=1.0)
        assert live.query_rows() == rows

    def test_sim_cluster_run_is_rejected_on_wall_clock(
        self, sp_compiled, eight_node_overlay
    ):
        async def main():
            cluster = LiveCluster(eight_node_overlay, sp_compiled,
                                  RuntimeConfig(),
                                  link_loads={"link": "hopcount"})
            with pytest.raises(NetworkError, match="virtual clock"):
                cluster.run()
            await cluster.start()
            await cluster.stop()

        asyncio.run(main())

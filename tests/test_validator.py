"""NDlog validity checks (Definitions 1-6 of the paper)."""

import pytest

from repro.errors import NDlogValidationError
from repro.ndlog import check, parse, validate
from repro.ndlog.programs import (
    magic_src_dst,
    multi_query_magic,
    reachability,
    shortest_path,
    shortest_path_dynamic,
)
from repro.ndlog.validator import is_link_restricted, is_local_rule


def first_rule(source):
    return parse(source).rules[0]


def test_paper_program_is_valid():
    report = validate(shortest_path(), strict_address_types=False)
    assert report.ok, report.errors


def test_paper_rule_classification():
    """SP1, SP3, SP4 are local; SP2 is (non-local) link-restricted --
    exactly as stated in Section 2.1."""
    report = validate(shortest_path(), strict_address_types=False)
    assert set(report.local_rules) == {"SP1", "SP3", "SP4"}
    assert set(report.link_restricted_rules) == {"SP2"}


def test_canonical_programs_valid():
    for builder in (reachability, magic_src_dst, multi_query_magic,
                    shortest_path_dynamic):
        report = validate(builder(), strict_address_types=False)
        assert report.ok, (builder.__name__, report.errors)


def test_local_rule_definition():
    assert is_local_rule(first_rule("p(@S, X) :- q(@S, X), r(@S)."))
    assert not is_local_rule(first_rule("p(@D, X) :- q(@S, X), r(@D)."))


def test_link_restricted_example_from_paper():
    # "p(@D,...) :- #link(@S,@D,...), p1(@S,...), ..., pn(@S,...)."
    rule = first_rule(
        "p(@D, X) :- #link(@S, @D, C), p1(@S, X), p2(@S, X)."
    )
    assert is_link_restricted(rule)


def test_link_restricted_mixed_endpoints():
    # SP2 style: body predicates at both the source and destination.
    rule = first_rule(
        "p(@S, D, X) :- #link(@S, @Z, C), q(@Z, D, X)."
    )
    assert is_link_restricted(rule)


def test_not_link_restricted_without_link():
    rule = first_rule("p(@D, X) :- q(@S, X).")
    assert not is_link_restricted(rule)


def test_not_link_restricted_two_links():
    rule = first_rule(
        "p(@D, X) :- #link(@S, @D, C), #link(@D, @Z, C2), q(@S, X)."
    )
    assert not is_link_restricted(rule)


def test_not_link_restricted_third_party_location():
    rule = first_rule(
        "p(@D, X) :- #link(@S, @D, C), q(@W, X)."
    )
    assert not is_link_restricted(rule)


def test_constraint1_missing_location_specifier():
    report = validate(parse("p(S) :- q(S)."))
    assert not report.ok
    assert any("location specifier" in e for e in report.errors)


def test_constraint2_address_type_safety_strict():
    # S is used as an address in the head and as a plain value in q.
    program = parse("p(@S) :- q(@X, S).")
    report = validate(program, strict_address_types=True)
    assert any("address" in e for e in report.errors)
    relaxed = validate(program, strict_address_types=False)
    # Still fails link-restriction (non-local, no link), but not the
    # address check.
    assert not any("address and" in e for e in relaxed.errors)


def test_constraint3_derived_link_relation_rejected():
    program = parse(
        """
        bad(@S, @D, C) :- #link(@S, @D, C).
        p(@S, X) :- #bad(@S, @D, C), q(@D, X).
        """
    )
    report = validate(program, strict_address_types=False)
    assert any("must be stored" in e or "link relation" in e
               for e in report.errors)


def test_constraint4_non_link_restricted_rejected():
    program = parse("p(@D, X) :- q(@S, X).")
    report = validate(program, strict_address_types=False)
    assert any("link-restricted" in e for e in report.errors)


def test_negation_rejected():
    program = parse("p(@S) :- q(@S), !r(@S).")
    report = validate(program, strict_address_types=False)
    assert any("negation" in e for e in report.errors)


def test_aggregate_in_body_literal_rejected():
    # Construct via AST (the parser already refuses the syntax).
    from repro.ndlog.ast import Literal, Program, Rule
    from repro.ndlog.terms import AggregateSpec, Variable

    head = Literal("p", (Variable("S", location=True),))
    body = Literal("q", (Variable("S", location=True),
                         AggregateSpec("min", "C")))
    program = Program(rules=[Rule(head=head, body=(body,))])
    report = validate(program, strict_address_types=False)
    assert any("aggregate in rule body" in e for e in report.errors)


def test_unbound_head_variable_rejected():
    program = parse("p(@S, X) :- q(@S).")
    report = validate(program, strict_address_types=False)
    assert any("not bound" in e for e in report.errors)


def test_non_ground_fact_rejected():
    program = parse("p(@a, X).")
    report = validate(program, strict_address_types=False)
    assert any("not ground" in e for e in report.errors)


def test_check_raises_on_invalid():
    with pytest.raises(NDlogValidationError):
        check(parse("p(@D, X) :- q(@S, X)."))


def test_check_returns_program_on_valid():
    program = shortest_path()
    assert check(program) is program

"""Tokenizer tests."""

import pytest

from repro.errors import NDlogSyntaxError
from repro.ndlog import lexer


def kinds(source):
    return [t.kind for t in lexer.tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in lexer.tokenize(source)][:-1]


def test_simple_rule_tokens():
    toks = values("p(@S, D) :- q(@S, D).")
    assert toks == ["p", "(", "@", "S", ",", "D", ")", ":-",
                    "q", "(", "@", "S", ",", "D", ")", "."]


def test_ident_vs_variable():
    assert kinds("path Path _x") == [lexer.IDENT, lexer.VARIABLE, lexer.IDENT]


def test_numbers_int_and_float():
    toks = lexer.tokenize("42 3.14 0.5")
    assert [t.value for t in toks[:-1]] == ["42", "3.14", "0.5"]
    assert all(t.kind == lexer.NUMBER for t in toks[:-1])


def test_number_then_period_is_statement_end():
    toks = values("p(1).")
    assert toks == ["p", "(", "1", ")", "."]


def test_multi_char_operators_are_greedy():
    assert values("a := b == c != d <= e >= f") == [
        "a", ":=", "b", "==", "c", "!=", "d", "<=", "e", ">=", "f"
    ]


def test_rule_arrow_not_split():
    assert ":-" in values("p(@X) :- q(@X).")


def test_line_comments():
    assert values("p(a). // comment\nq(b). % other\n") == [
        "p", "(", "a", ")", ".", "q", "(", "b", ")", "."
    ]


def test_block_comment():
    assert values("p(/* hi \n there */ a).") == ["p", "(", "a", ")", "."]


def test_unterminated_block_comment_raises():
    with pytest.raises(NDlogSyntaxError):
        lexer.tokenize("p(a). /* nope")


def test_string_literals_with_escapes():
    toks = lexer.tokenize(r'"hi\n" "a\"b"')
    assert toks[0].value == "hi\n"
    assert toks[1].value == 'a"b'


def test_unterminated_string_raises():
    with pytest.raises(NDlogSyntaxError):
        lexer.tokenize('"oops')


def test_unexpected_character_raises_with_position():
    with pytest.raises(NDlogSyntaxError) as err:
        lexer.tokenize("p(a) ^ q(b)")
    assert "line 1" in str(err.value)


def test_line_and_column_tracking():
    toks = lexer.tokenize("p(a).\nq(b).")
    q_tok = [t for t in toks if t.value == "q"][0]
    assert q_tok.line == 2
    assert q_tok.column == 1


def test_hash_and_at_tokens():
    assert values("#link(@S)") == ["#", "link", "(", "@", "S", ")"]


def test_aggregate_angle_brackets():
    assert values("min<C>") == ["min", "<", "C", ">"]

"""Table store tests: primary keys, derivation counts, replacement,
indexes."""

import pytest

from repro.errors import SchemaError
from repro.engine.table import Table


def test_insert_and_contains():
    t = Table("p", 2)
    assert t.insert(("a", 1)) == [(1, ("a", 1))]
    assert ("a", 1) in t
    assert len(t) == 1


def test_duplicate_insert_increments_count_no_delta():
    t = Table("p", 2)
    t.insert(("a", 1))
    assert t.insert(("a", 1)) == []
    assert t.count(("a", 1)) == 2
    assert len(t) == 1


def test_delete_respects_count():
    t = Table("p", 2)
    t.insert(("a", 1))
    t.insert(("a", 1))
    assert t.delete(("a", 1)) == []          # 2 -> 1, still visible
    assert t.delete(("a", 1)) == [(-1, ("a", 1))]
    assert ("a", 1) not in t


def test_delete_absent_is_noop():
    t = Table("p", 2)
    assert t.delete(("a", 1)) == []


def test_force_delete_ignores_count():
    t = Table("p", 2)
    t.insert(("a", 1))
    t.insert(("a", 1))
    assert t.force_delete(("a", 1)) == [(-1, ("a", 1))]
    assert len(t) == 0


def test_primary_key_replacement():
    """P2 semantics: a tuple with an existing key replaces the old one
    (how link-cost updates enter the system, Section 4)."""
    t = Table("link", 3, key=(0, 1))
    t.insert(("a", "b", 5))
    deltas = t.insert(("a", "b", 7))
    assert deltas == [(-1, ("a", "b", 5)), (1, ("a", "b", 7))]
    assert t.rows() == [("a", "b", 7)]


def test_replacement_ignores_old_count():
    t = Table("link", 3, key=(0, 1))
    t.insert(("a", "b", 5))
    t.insert(("a", "b", 5))
    deltas = t.insert(("a", "b", 7))
    assert (-1, ("a", "b", 5)) in deltas
    assert t.count(("a", "b", 5)) == 0


def test_full_key_default():
    t = Table("p", 3)
    t.insert(("a", "b", 1))
    t.insert(("a", "b", 2))  # different full tuple -> coexists
    assert len(t) == 2


def test_get_by_key():
    t = Table("link", 3, key=(0, 1))
    t.insert(("a", "b", 5))
    assert t.get_by_key(("a", "b")) == ("a", "b", 5)
    assert t.get_by_key(("a", "z")) is None


def test_lookup_builds_and_maintains_index():
    t = Table("p", 2)
    t.insert(("a", 1))
    t.insert(("a", 2))
    t.insert(("b", 3))
    assert set(t.lookup((0,), ("a",))) == {("a", 1), ("a", 2)}
    # Index maintained across mutations.
    t.insert(("a", 4))
    assert set(t.lookup((0,), ("a",))) == {("a", 1), ("a", 2), ("a", 4)}
    t.delete(("a", 1))
    assert set(t.lookup((0,), ("a",))) == {("a", 2), ("a", 4)}


def test_lookup_no_positions_scans_all():
    t = Table("p", 1)
    t.insert(("a",))
    t.insert(("b",))
    assert set(t.lookup((), ())) == {("a",), ("b",)}


def test_lookup_multiple_positions():
    t = Table("p", 3)
    t.insert(("a", "b", 1))
    t.insert(("a", "c", 2))
    assert set(t.lookup((0, 1), ("a", "b"))) == {("a", "b", 1)}


def test_timestamps():
    t = Table("p", 1)
    t.insert(("a",), ts=7)
    assert t.ts(("a",)) == 7
    assert t.ts(("zz",)) == -1
    t.restamp(("a",), 9)
    assert t.ts(("a",)) == 9


def test_duplicate_insert_refreshes_ts():
    """A re-inserted fact is a *refresh* (Section 4.2: soft-state facts
    "must be explicitly reinserted ... with a new TTL"), so the stored
    timestamp must track the latest (re-)insertion, not the first."""
    t = Table("p", 1)
    t.insert(("a",), ts=3)
    t.insert(("a",), ts=9)
    assert t.count(("a",)) == 2
    assert t.ts(("a",)) == 9
    # A refresh never rewinds: callers that omit ts (default 0) keep
    # the newest stamp.
    t.insert(("a",))
    assert t.ts(("a",)) == 9


def test_duplicate_insert_refresh_visible_to_ts_limit_consumers():
    """Regression: the stale timestamp made any ``ts_limit`` filter
    treat a refreshed fact as old, and soft-state refreshes kept the
    original expiry."""
    t = Table("p", 2)
    t.insert(("a", 1), ts=1)
    t.insert(("b", 2), ts=2)
    t.insert(("a", 1), ts=5)
    fresh = [args for args in t.rows() if t.ts(args) > 2]
    assert fresh == [("a", 1)]


def test_arity_checked():
    t = Table("p", 2)
    with pytest.raises(SchemaError):
        t.insert(("a",))


def test_bad_key_position_rejected():
    with pytest.raises(SchemaError):
        Table("p", 2, key=(5,))


def test_zero_arity_rejected():
    with pytest.raises(SchemaError):
        Table("p", 0)


def test_clear():
    t = Table("p", 1)
    t.insert(("a",))
    t.lookup((0,), ("a",))
    t.clear()
    assert len(t) == 0
    assert set(t.lookup((0,), ("a",))) == set()

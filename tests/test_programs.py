"""Tests over the canonical program library and paper traces:
Figure 2's iteration narrative and Figure 6's derivation/deletion trees
reproduced as engine behaviour."""

import pytest

from repro.engine import Database, psn, seminaive
from repro.engine.psn import PSNEngine
from repro.ndlog import programs, validate

FIGURE2_LINKS = [
    ("a", "b", 5), ("b", "a", 5),
    ("a", "c", 1), ("c", "a", 1),
    ("c", "b", 1), ("b", "c", 1),
    ("b", "d", 1), ("d", "b", 1),
    ("e", "a", 1), ("a", "e", 1),
]

ALL_BUILDERS = [
    programs.shortest_path,
    programs.shortest_path_safe,
    programs.shortest_path_dynamic,
    programs.magic_dst,
    programs.magic_src_dst,
    programs.multi_query_magic,
    programs.reachability,
    programs.distance_vector,
    programs.transitive_closure,
    programs.transitive_closure_nonlinear,
    programs.same_generation,
]


@pytest.mark.parametrize("builder", ALL_BUILDERS,
                         ids=lambda b: b.__name__)
def test_program_parses_fresh_each_call(builder):
    one, two = builder(), builder()
    assert one is not two
    assert one.rules == two.rules


@pytest.mark.parametrize(
    "builder",
    [programs.shortest_path, programs.shortest_path_safe,
     programs.shortest_path_dynamic, programs.magic_dst,
     programs.magic_src_dst, programs.multi_query_magic,
     programs.reachability, programs.distance_vector],
    ids=lambda b: b.__name__,
)
def test_network_programs_are_valid_ndlog(builder):
    report = validate(builder(), strict_address_types=False)
    assert report.ok, report.errors


class TestFigure2Trace:
    """Section 2.2's narrated execution."""

    def run(self):
        program = programs.shortest_path_safe()
        db = Database.for_program(program)
        db.load_facts("link", FIGURE2_LINKS)
        return psn.evaluate(program, db)

    def test_one_hop_paths_of_iteration_1(self):
        paths = self.run().rows("path")
        assert ("a", "b", "b", ("a", "b"), 5) in paths
        assert ("a", "c", "c", ("a", "c"), 1) in paths
        assert ("c", "b", "b", ("c", "b"), 1) in paths
        assert ("b", "d", "d", ("b", "d"), 1) in paths
        assert ("e", "a", "a", ("e", "a"), 1) in paths

    def test_two_hop_paths_of_iteration_2(self):
        paths = self.run().rows("path")
        # "path(a,d,b,[a,b,d],6) is generated at node b ... and
        # propagated to node a."
        assert ("a", "d", "b", ("a", "b", "d"), 6) in paths
        assert ("a", "b", "c", ("a", "c", "b"), 2) in paths
        assert ("c", "d", "b", ("c", "b", "d"), 2) in paths
        assert ("e", "b", "a", ("e", "a", "b"), 6) in paths
        assert ("e", "c", "a", ("e", "a", "c"), 2) in paths

    def test_shortest_path_replaces_initial_guess(self):
        # "a new shortestPath(a,b,[a,c,b],2) replaces the previous value"
        sp = self.run().rows("shortestPath")
        assert ("a", "b", ("a", "c", "b"), 2) in sp
        assert ("a", "b", ("a", "b"), 5) not in sp


class TestFigure6Trees:
    """Section 4.1's derivation-tree examples: link(a,b) cost update and
    link(b,e) deletion, on the network fragment of Figure 6."""

    LINKS = [("e", "a", 1), ("a", "e", 1),
             ("a", "b", 5), ("b", "a", 5),
             ("b", "e", 1), ("e", "b", 1)]

    def engine(self):
        program = programs.shortest_path_safe()
        db = Database.for_program(program)
        db.load_facts("link", self.LINKS)
        engine = PSNEngine(program, db=db)
        engine.fixpoint()
        return engine

    def test_update_rederives_up_the_tree(self):
        engine = self.engine()
        paths = frozenset(engine.db.table("path").rows())
        assert ("a", "e", "b", ("a", "b", "e"), 6) in paths
        # "when the cost of #link(a,b,5) is updated from 5 to 1,
        # path(a,e,b,[a,b,e],2) ... [is] re-derived"
        engine.update("link", ("a", "b", 1))
        engine.update("link", ("b", "a", 1))
        engine.run()
        paths = frozenset(engine.db.table("path").rows())
        assert ("a", "e", "b", ("a", "b", "e"), 2) in paths
        assert ("a", "e", "b", ("a", "b", "e"), 6) not in paths

    def test_deletion_cascades_up_the_tree(self):
        engine = self.engine()
        # "the deletion of link(b,e,1) leads to the deletion of
        # path(b,e,e,[b,e],1) [and] path(a,e,b,[a,b,e],6)"
        engine.delete("link", ("b", "e", 1))
        engine.delete("link", ("e", "b", 1))
        engine.run()
        paths = frozenset(engine.db.table("path").rows())
        assert ("b", "e", "e", ("b", "e"), 1) not in paths
        assert ("a", "e", "b", ("a", "b", "e"), 6) not in paths
        # e remains reachable directly from a.
        assert ("a", "e", "e", ("a", "e"), 1) in paths


class TestDistanceVector:
    def test_hop_bound_16(self):
        """DV2's ``C < 16`` bound: nodes further than 15 hops are
        unreachable, RIP-style."""
        program = programs.distance_vector()
        db = Database.for_program(program)
        chain = []
        for i in range(20):
            chain += [(f"h{i}", f"h{i+1}", 1), (f"h{i+1}", f"h{i}", 1)]
        db.load_facts("link", chain)
        result = psn.evaluate(program, db)
        costs = {(s, d): c for s, d, _z, c in result.rows("bestRoute")}
        assert costs[("h0", "h15")] == 15
        assert ("h0", "h16") not in costs

    def test_next_hops_consistent(self):
        program = programs.distance_vector()
        db = Database.for_program(program)
        db.load_facts("link", FIGURE2_LINKS)
        result = psn.evaluate(program, db)
        routes = {(s, d): z for s, d, z, _c in result.rows("bestRoute")}
        # a reaches d through its next hop's own route.
        nxt = routes[("a", "d")]
        assert nxt in ("b", "c", "e", "d")
        if nxt != "d":
            assert (nxt, "d") in routes


class TestMagicVariantsCentralized:
    def test_magic_dst_limits_destinations(self):
        program = programs.magic_dst()
        db = Database.for_program(program)
        db.load_facts("link", FIGURE2_LINKS)
        db.load_facts("magicDst", [("d",)])
        result = seminaive.evaluate(program, db)
        destinations = {d for _s, d, _p, _c in result.rows("shortestPath")}
        assert destinations == {"d"}

    def test_magic_src_dst_filters_both(self):
        program = programs.magic_src_dst()
        db = Database.for_program(program)
        db.load_facts("link", FIGURE2_LINKS)
        db.load_facts("magicSrc", [("e",)])
        db.load_facts("magicDst", [("d",)])
        result = seminaive.evaluate(program, db)
        rows = result.rows("shortestPath")
        # shortestPath(@D,@S,...) is stored at the destination.
        assert {(d, s) for d, s, _p, _c in rows} == {("d", "e")}
        ((_d, _s, path, cost),) = rows
        assert cost == 4  # e->a->c->b->d
        assert path[0] == "e" and path[-1] == "d"

"""Topology substrate tests: transit-stub underlay, overlay, and the
neighborhood function."""

import pytest

from repro.errors import NetworkError
from repro.topology import (
    METRICS,
    build_overlay,
    hop_distance,
    hop_distances,
    neighborhood_at,
    neighborhood_function,
    optimal_split,
    search_costs,
    transit_stub,
)


@pytest.fixture(scope="module")
def underlay():
    return transit_stub(seed=3)


@pytest.fixture(scope="module")
def overlay(underlay):
    return build_overlay(underlay, n_nodes=30, degree=3, seed=3)


class TestTransitStub:
    def test_paper_parameters_give_100_nodes(self, underlay):
        # 4 transit + 4 * 3 * 8 stub nodes = 100 (Section 6.1).
        assert len(underlay.nodes) == 100
        assert len(underlay.transit_nodes) == 4
        assert len(underlay.stub_nodes) == 96

    def test_connected(self, underlay):
        assert underlay.is_connected()

    def test_latency_classes(self, underlay):
        latencies = set(underlay.edges.values())
        assert latencies == {0.050, 0.010, 0.002}

    def test_transit_clique(self, underlay):
        for i, a in enumerate(underlay.transit_nodes):
            for b in underlay.transit_nodes[i + 1:]:
                key = (a, b) if a <= b else (b, a)
                assert underlay.edges[key] == 0.050

    def test_cross_stub_latency_traverses_transit(self, underlay):
        # Nodes in stubs of different transit domains are >= 50ms apart
        # plus gateway hops.
        a = "s0_0_1"
        b = "s3_2_4"
        dist = underlay.latencies_from(a)[b]
        assert dist >= 0.050 + 2 * 0.010

    def test_intra_stub_cheap(self, underlay):
        dist = underlay.latencies_from("s0_0_0")["s0_0_4"]
        assert dist <= 8 * 0.002

    def test_custom_shape(self):
        small = transit_stub(transits=2, stubs_per_transit=2,
                             nodes_per_stub=3, seed=9)
        assert len(small.nodes) == 2 + 2 * 2 * 3
        assert small.is_connected()


class TestOverlay:
    def test_size_and_connectivity(self, overlay):
        assert len(overlay.nodes) == 30
        assert overlay.is_connected()

    def test_degree_at_least_requested(self, overlay):
        # Each node picked 3 neighbors; unioning bidirectional picks can
        # only increase a node's degree.
        for node in overlay.nodes:
            assert overlay.degree(node) >= 3

    def test_metrics_present_and_sane(self, overlay):
        for metrics in overlay.links.values():
            assert set(metrics) == set(METRICS)
            assert metrics["hopcount"] == 1
            assert metrics["latency"] >= 1.0
            assert 1 <= metrics["random"] <= 100

    def test_reliability_correlated_with_latency(self, overlay):
        # Paper: "reliability (link loss correlated with latency)".
        pairs = [(m["latency"], m["reliability"])
                 for m in overlay.links.values()]
        n = len(pairs)
        mean_l = sum(p[0] for p in pairs) / n
        mean_r = sum(p[1] for p in pairs) / n
        cov = sum((l - mean_l) * (r - mean_r) for l, r in pairs)
        var_l = sum((l - mean_l) ** 2 for l, _ in pairs)
        var_r = sum((r - mean_r) ** 2 for _, r in pairs)
        correlation = cov / (var_l ** 0.5 * var_r ** 0.5)
        assert correlation > 0.9

    def test_link_rows_bidirectional(self, overlay):
        rows = overlay.link_rows("hopcount")
        assert len(rows) == 2 * len(overlay.links)
        row_set = {(a, b) for a, b, _c in rows}
        for a, b in overlay.links:
            assert (a, b) in row_set and (b, a) in row_set

    def test_unknown_metric_rejected(self, overlay):
        with pytest.raises(NetworkError):
            overlay.link_rows("bogus")

    def test_link_metrics_symmetric_lookup(self, overlay):
        (a, b) = next(iter(overlay.links))
        assert overlay.link_metrics(a, b) == overlay.link_metrics(b, a)

    def test_deterministic_given_seed(self, underlay):
        o1 = build_overlay(underlay, n_nodes=20, degree=3, seed=7)
        o2 = build_overlay(underlay, n_nodes=20, degree=3, seed=7)
        assert o1.links == o2.links


class TestNeighborhood:
    def test_hop_distances_bfs(self, overlay):
        source = overlay.nodes[0]
        dist = hop_distances(overlay, source)
        assert dist[source] == 0
        assert len(dist) == len(overlay.nodes)  # connected

    def test_neighborhood_function_monotone_and_complete(self, overlay):
        node = overlay.nodes[0]
        nf = neighborhood_function(overlay, node)
        assert nf[0] == 1  # the node itself
        assert all(nf[i] <= nf[i + 1] for i in range(len(nf) - 1))
        assert nf[-1] == len(overlay.nodes)  # transitive closure size

    def test_neighborhood_at_clamps(self, overlay):
        node = overlay.nodes[0]
        assert neighborhood_at(overlay, node, 999) == len(overlay.nodes)
        assert neighborhood_at(overlay, node, 1) == 1 + overlay.degree(node)

    def test_optimal_split_is_optimal(self, overlay):
        src, dst = overlay.nodes[0], overlay.nodes[-1]
        rs, rd, cost = optimal_split(overlay, src, dst)
        distance = hop_distance(overlay, src, dst)
        assert rs + rd == distance
        nf_s = neighborhood_function(overlay, src)
        nf_d = neighborhood_function(overlay, dst)

        def at(nf, r):
            return nf[min(r, len(nf) - 1)]

        for r in range(distance + 1):
            assert cost <= at(nf_s, r) + at(nf_d, distance - r)

    def test_hybrid_never_worse_than_td_or_bu(self, overlay):
        """Section 5.3: the hybrid split is at least as good as either
        pure strategy."""
        nodes = overlay.nodes
        for src, dst in [(nodes[0], nodes[5]), (nodes[3], nodes[-1]),
                         (nodes[10], nodes[20])]:
            costs = search_costs(overlay, src, dst)
            assert costs["hybrid"] <= costs["td"]
            assert costs["hybrid"] <= costs["bu"]

"""Weighted Z-set delta core: weighted == signed equivalence.

The engine's native delta is now a fact with an integer weight (a
Z-set / generalized-multiset element); a signed one-at-a-time delta is
the special case ``weight = +-1``.  These tests hold the two readings
observationally equal: any interleaving of weighted intents must reach
the same fixpoint, derivation counts, aggregate views, and net commit
multiset as the same interleaving decomposed into unit intents and
processed one delta at a time (the ``batch_size=1`` reference path).
The distributed checks pin the sim / in-process / UDP targets to one
fixpoint and exercise the weighted wire format both ways.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.engine import Database, naive, seminaive
from repro.engine.bsn import BSNEngine
from repro.engine.facts import Delta, Fact
from repro.engine.psn import PSNEngine
from repro.errors import NetworkError
from repro.ndlog import programs
from repro.ndlog.pretty import format_delta
from repro.net.live import decode_message, encode_message
from repro.net.message import Message, NetDelta, coalesce, single
from repro.topology import build_overlay, transit_stub

SETTINGS = dict(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)

nodes = st.integers(min_value=0, max_value=4).map(lambda i: f"n{i}")
undirected_edges = st.sets(
    st.tuples(nodes, nodes).filter(lambda e: e[0] < e[1]),
    min_size=1, max_size=8,
)

# One burst operation: (kind, edge-index, cost, weight).
operations = st.lists(
    st.tuples(
        st.sampled_from(["ins", "del", "upd", "flap", "dup"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=1, max_size=8,
)


def _link_rows(state):
    rows = []
    for (a, b), cost in state.items():
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows


def counts_snapshot(db):
    return {
        name: {args: table.count(args) for args in table.rows()}
        for name, table in db.tables.items()
    }


def view_rows(engine):
    out = {}
    for pred, view in engine.views.items():
        out[pred] = frozenset(view.current_rows())
    for pred, view in engine.argmin_views.items():
        out[pred] = frozenset(view.current_rows())
    return out


def weighted_burst_run(edge_set, ops, batch_size, unit_intents):
    """Converge shortest-path, apply ``ops`` as one enqueued burst, run
    to quiescence.  ``unit_intents=True`` decomposes every weighted
    intent into unit intents -- the signed one-at-a-time reading."""
    rng = random.Random(7)
    state = {}
    for a, b in sorted(edge_set):
        state[(a, b)] = rng.randint(1, 9)

    program = programs.shortest_path_safe()
    db = Database.for_program(program)
    db.load_facts("link", _link_rows(state))
    commits = {}

    def on_commit(fact, sign):
        commits[fact] = commits.get(fact, 0) + sign

    engine = PSNEngine(program, db=db, batch_size=batch_size,
                       on_commit=on_commit)
    engine.fixpoint()
    commits.clear()  # compare the burst phase only

    def derive(fact, weight):
        if unit_intents:
            step = 1 if weight > 0 else -1
            for _ in range(abs(weight)):
                engine.derive(fact, step)
        else:
            engine.derive(fact, weight)

    pairs = sorted(edge_set)
    for kind, index, cost, weight in ops:
        pair = pairs[index % len(pairs)]
        if kind == "ins" and pair not in state:
            state[pair] = cost
            engine.insert("link", (*pair, cost))
            engine.insert("link", (pair[1], pair[0], cost))
        elif kind == "del" and pair in state:
            old = state.pop(pair)
            engine.delete("link", (*pair, old))
            engine.delete("link", (pair[1], pair[0], old))
        elif kind == "upd" and pair in state:
            state[pair] = cost
            engine.update("link", (*pair, cost))
            engine.update("link", (pair[1], pair[0], cost))
        elif kind == "flap" and pair not in state:
            # Transient weighted announce/withdraw: nets to zero weight.
            derive(Fact("link", (*pair, cost)), weight)
            derive(Fact("link", (pair[1], pair[0], cost)), weight)
            derive(Fact("link", (*pair, cost)), -weight)
            derive(Fact("link", (pair[1], pair[0], cost)), -weight)
        elif kind == "dup" and pair in state:
            # Weighted duplicate support on a stored row, withdrawn in
            # the same burst: count bumps by +w then -w.
            old = state[pair]
            derive(Fact("link", (*pair, old)), weight)
            derive(Fact("link", (*pair, old)), -weight)
    engine.run()
    return engine, commits


@given(edge_set=undirected_edges, ops=operations)
@settings(**SETTINGS)
def test_weighted_intents_match_signed_reference(edge_set, ops):
    """Weighted interleavings at every batch size are observationally
    equal to the same interleavings as one-at-a-time unit intents."""
    reference = None
    for batch_size, unit_intents in ((1, True), (1, False), (7, False),
                                     (64, False)):
        engine, commits = weighted_burst_run(
            edge_set, ops, batch_size, unit_intents,
        )
        observed = (
            engine.db.snapshot(),
            counts_snapshot(engine.db),
            view_rows(engine),
            {fact: net for fact, net in commits.items() if net != 0},
        )
        if reference is None:
            reference = observed
        else:
            label = f"batch={batch_size} unit={unit_intents}"
            assert observed[0] == reference[0], f"rows @ {label}"
            assert observed[1] == reference[1], f"counts @ {label}"
            assert observed[2] == reference[2], f"views @ {label}"
            assert observed[3] == reference[3], f"commits @ {label}"


@given(edge_set=undirected_edges, seed=st.integers(min_value=0, max_value=99))
@settings(**SETTINGS)
def test_all_four_engines_reach_one_fixpoint(edge_set, seed):
    """naive, seminaive, PSN, and BSN agree on the weighted-core
    fixpoint of the same loaded database."""
    rng = random.Random(seed)
    links = []
    for a, b in sorted(edge_set):
        cost = rng.randint(1, 9)
        links.append((a, b, cost))
        links.append((b, a, cost))

    def fresh_db(program):
        db = Database.for_program(program)
        db.load_facts("link", links)
        return db

    program = programs.shortest_path_safe()
    reference = naive.evaluate(program, fresh_db(program)).db.snapshot()
    assert seminaive.evaluate(
        program, fresh_db(program)).db.snapshot() == reference
    for engine_cls in (PSNEngine, BSNEngine):
        for batch_size in (1, 16):
            engine = engine_cls(program, db=fresh_db(program),
                                batch_size=batch_size)
            engine.fixpoint()
            assert engine.db.snapshot() == reference, (
                engine_cls.__name__, batch_size,
            )


# ----------------------------------------------------------------------
# Weighted deltas across the execution targets
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def six_node_overlay():
    return build_overlay(transit_stub(seed=3), n_nodes=6, degree=3, seed=3)


@pytest.fixture(scope="module")
def zset_compiled():
    return repro.compile(programs.shortest_path_safe(), passes=["localize"])


@pytest.fixture(scope="module")
def sim_rows(zset_compiled, six_node_overlay):
    deployment = zset_compiled.deploy(topology=six_node_overlay,
                                      link_loads={"link": "hopcount"})
    deployment.advance()
    stats = deployment.cluster.stats
    assert stats.netdeltas_shipped > 0  # the weighted wire was exercised
    return deployment.query_rows()


def test_sim_target_fixpoint_is_nonempty(sim_rows):
    assert sim_rows


def test_inproc_target_matches_sim(zset_compiled, six_node_overlay,
                                   sim_rows):
    live = zset_compiled.deploy(
        topology=six_node_overlay, link_loads={"link": "hopcount"},
        target="live",
    )
    assert live.converge(timeout=60.0)
    assert live.query_rows() == sim_rows


def test_udp_target_matches_sim(zset_compiled, six_node_overlay, sim_rows):
    live = zset_compiled.deploy(
        topology=six_node_overlay, link_loads={"link": "hopcount"},
        target="live", channels="udp",
    )
    try:
        converged = live.converge(timeout=60.0)
    except OSError as exc:  # no loopback sockets in this sandbox
        pytest.skip(f"cannot open UDP sockets: {exc}")
    assert converged
    assert live.query_rows() == sim_rows


# ----------------------------------------------------------------------
# Weighted wire format and rendering
# ----------------------------------------------------------------------
def test_coalesce_sums_weights_per_fact():
    deltas = (
        NetDelta("p", (1,), 2), NetDelta("q", (2,), 1),
        NetDelta("p", (1,), -2), NetDelta("q", (2,), 3, prov=9),
    )
    assert coalesce(deltas) == (NetDelta("q", (2,), 4, prov=9),)


def test_weighted_frame_round_trips():
    message = Message(src="a", dst="b",
                      deltas=(NetDelta("p", ("x", 2), 3, prov=5),
                              NetDelta("q", (1,), -2)),
                      shared_bytes=0)
    assert decode_message(encode_message(message)) == message


def test_old_signed_frame_decodes_as_unit_weights():
    # A frame as a pre-weight sender built it: sign in slot 1.
    wire = (b'{"s":"a","d":"b","h":0,'
            b'"t":[["p",1,["x"]],["p",-1,["y"],7]]}')
    message = decode_message(wire)
    assert message.deltas == (NetDelta("p", ("x",), 1),
                              NetDelta("p", ("y",), -1, prov=7))
    assert message.deltas[0].sign == 1
    assert message.deltas[1].sign == -1


@pytest.mark.parametrize("weight", ["0", "1.5", "true", '"+1"', "null"])
def test_malformed_weights_are_rejected(weight):
    wire = ('{"s":"a","d":"b","h":0,"t":[["p",%s,["x"]]]}'
            % weight).encode()
    with pytest.raises(NetworkError):
        decode_message(wire)


def test_zero_weight_send_is_dropped():
    assert single("a", "b", "p", (1,), 0) is not None  # constructor only
    assert coalesce((NetDelta("p", (1,), 1),
                     NetDelta("p", (1,), -1))) == ()


def test_weighted_delta_rendering():
    delta = Delta(Fact("link", ("a", "b", 3)), 2, 17)
    assert repr(delta) == "+2 link('a', 'b', 3)@17"
    assert format_delta(delta) == "+2 link(a, b, 3)@17"


def test_weighted_delta_sign_property():
    assert Delta(Fact("p", ()), 3, 0).sign == 1
    assert Delta(Fact("p", ()), -2, 0).sign == -1

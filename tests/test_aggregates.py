"""Incremental aggregate maintenance tests (Sections 3.3.2 and 4)."""

import pytest

from repro.engine.aggregates import AggregateView, GroupState
from repro.engine.rules import AggregateInfo
from repro.errors import EvaluationError


def make_view(func="min"):
    # spCost(@S, @D, min<C>): group = (S, D) at positions (0, 1),
    # value at position 2.
    info = AggregateInfo(func=func, var="C", value_position=2,
                         group_positions=(0, 1))
    return AggregateView("spCost", info)


class TestGroupState:
    def test_min_incremental(self):
        g = GroupState("min")
        g.add(5)
        assert g.current() == 5
        g.add(3)
        assert g.current() == 3
        g.add(7)
        assert g.current() == 3

    def test_min_retraction_recomputes(self):
        g = GroupState("min")
        for v in (5, 3, 7):
            g.add(v)
        g.remove(3)
        assert g.current() == 5
        g.remove(5)
        assert g.current() == 7
        g.remove(7)
        assert g.current() is None

    def test_max(self):
        g = GroupState("max")
        for v in (5, 3, 7):
            g.add(v)
        assert g.current() == 7
        g.remove(7)
        assert g.current() == 5

    def test_count_counts_derivations(self):
        g = GroupState("count")
        g.add(1)
        g.add(1)
        g.add(1)
        assert g.current() == 3
        g.remove(1)
        assert g.current() == 2

    def test_sum_over_distinct_values(self):
        g = GroupState("sum")
        g.add(2)
        g.add(2)  # duplicate derivation of the same value
        g.add(3)
        assert g.current() == 5
        g.remove(2)  # one derivation remains, value still present
        assert g.current() == 5
        g.remove(2)
        assert g.current() == 3

    def test_avg(self):
        g = GroupState("avg")
        g.add(2)
        g.add(4)
        assert g.current() == 3

    def test_remove_unknown_value_raises(self):
        g = GroupState("min")
        with pytest.raises(EvaluationError):
            g.remove(99)

    def test_unknown_func_raises(self):
        g = GroupState("median")
        g.add(1)
        with pytest.raises(EvaluationError):
            g.current()


class TestAggregateView:
    def test_first_contribution_emits_insert(self):
        view = make_view()
        deltas = view.apply(("a", "b", 5), 1)
        assert deltas == [(1, ("a", "b", 5))]

    def test_improvement_replaces(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        deltas = view.apply(("a", "b", 2), 1)
        assert deltas == [(-1, ("a", "b", 5)), (1, ("a", "b", 2))]

    def test_non_improvement_is_silent(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        assert view.apply(("a", "b", 9), 1) == []

    def test_retracting_best_falls_back(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        view.apply(("a", "b", 2), 1)
        deltas = view.apply(("a", "b", 2), -1)
        assert deltas == [(-1, ("a", "b", 2)), (1, ("a", "b", 5))]

    def test_retracting_last_value_deletes_group(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        deltas = view.apply(("a", "b", 5), -1)
        assert deltas == [(-1, ("a", "b", 5))]
        assert view.groups == {}

    def test_groups_are_independent(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        deltas = view.apply(("a", "c", 9), 1)
        assert deltas == [(1, ("a", "c", 9))]

    def test_duplicate_value_needs_two_retractions(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        view.apply(("a", "b", 5), 1)
        assert view.apply(("a", "b", 5), -1) == []
        assert view.apply(("a", "b", 5), -1) == [(-1, ("a", "b", 5))]

    def test_current_rows(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        view.apply(("a", "c", 3), 1)
        assert sorted(view.current_rows()) == [("a", "b", 5), ("a", "c", 3)]

    def test_value_position_not_last(self):
        # bestFirst(min<C>, @S): aggregate in position 0.
        info = AggregateInfo(func="min", var="C", value_position=0,
                             group_positions=(1,))
        view = AggregateView("bestFirst", info)
        assert view.apply((5, "a"), 1) == [(1, (5, "a"))]
        assert view.apply((3, "a"), 1) == [(-1, (5, "a")), (1, (3, "a"))]

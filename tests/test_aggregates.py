"""Incremental aggregate maintenance tests (Sections 3.3.2 and 4)."""

import random

import pytest

from repro.engine.aggregates import (
    AggregateView,
    ArgExtremeView,
    GroupState,
    order_key,
)
from repro.engine.rules import AggregateInfo
from repro.errors import EvaluationError


def make_view(func="min"):
    # spCost(@S, @D, min<C>): group = (S, D) at positions (0, 1),
    # value at position 2.
    info = AggregateInfo(func=func, var="C", value_position=2,
                         group_positions=(0, 1))
    return AggregateView("spCost", info)


class TestGroupState:
    def test_min_incremental(self):
        g = GroupState("min")
        g.add(5)
        assert g.current() == 5
        g.add(3)
        assert g.current() == 3
        g.add(7)
        assert g.current() == 3

    def test_min_retraction_recomputes(self):
        g = GroupState("min")
        for v in (5, 3, 7):
            g.add(v)
        g.remove(3)
        assert g.current() == 5
        g.remove(5)
        assert g.current() == 7
        g.remove(7)
        assert g.current() is None

    def test_max(self):
        g = GroupState("max")
        for v in (5, 3, 7):
            g.add(v)
        assert g.current() == 7
        g.remove(7)
        assert g.current() == 5

    def test_count_counts_derivations(self):
        g = GroupState("count")
        g.add(1)
        g.add(1)
        g.add(1)
        assert g.current() == 3
        g.remove(1)
        assert g.current() == 2

    def test_sum_over_distinct_values(self):
        g = GroupState("sum")
        g.add(2)
        g.add(2)  # duplicate derivation of the same value
        g.add(3)
        assert g.current() == 5
        g.remove(2)  # one derivation remains, value still present
        assert g.current() == 5
        g.remove(2)
        assert g.current() == 3

    def test_avg(self):
        g = GroupState("avg")
        g.add(2)
        g.add(4)
        assert g.current() == 3

    def test_remove_unknown_value_raises(self):
        g = GroupState("min")
        with pytest.raises(EvaluationError):
            g.remove(99)

    def test_unknown_func_raises(self):
        g = GroupState("median")
        g.add(1)
        with pytest.raises(EvaluationError):
            g.current()


class TestAggregateView:
    def test_first_contribution_emits_insert(self):
        view = make_view()
        deltas = view.apply(("a", "b", 5), 1)
        assert deltas == [(1, ("a", "b", 5))]

    def test_improvement_replaces(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        deltas = view.apply(("a", "b", 2), 1)
        assert deltas == [(-1, ("a", "b", 5)), (1, ("a", "b", 2))]

    def test_non_improvement_is_silent(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        assert view.apply(("a", "b", 9), 1) == []

    def test_retracting_best_falls_back(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        view.apply(("a", "b", 2), 1)
        deltas = view.apply(("a", "b", 2), -1)
        assert deltas == [(-1, ("a", "b", 2)), (1, ("a", "b", 5))]

    def test_retracting_last_value_deletes_group(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        deltas = view.apply(("a", "b", 5), -1)
        assert deltas == [(-1, ("a", "b", 5))]
        assert view.groups == {}

    def test_groups_are_independent(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        deltas = view.apply(("a", "c", 9), 1)
        assert deltas == [(1, ("a", "c", 9))]

    def test_duplicate_value_needs_two_retractions(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        view.apply(("a", "b", 5), 1)
        assert view.apply(("a", "b", 5), -1) == []
        assert view.apply(("a", "b", 5), -1) == [(-1, ("a", "b", 5))]

    def test_current_rows(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        view.apply(("a", "c", 3), 1)
        assert sorted(view.current_rows()) == [("a", "b", 5), ("a", "c", 3)]

    def test_value_position_not_last(self):
        # bestFirst(min<C>, @S): aggregate in position 0.
        info = AggregateInfo(func="min", var="C", value_position=0,
                             group_positions=(1,))
        view = AggregateView("bestFirst", info)
        assert view.apply((5, "a"), 1) == [(1, (5, "a"))]
        assert view.apply((3, "a"), 1) == [(-1, (5, "a")), (1, (3, "a"))]

    def test_apply_many_emits_net_change_only(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        deltas = view.apply_many(
            [("a", "b", 4), ("a", "b", 3), ("a", "b", 2)], 1)
        # 5 -> 4 -> 3 -> 2 collapses to one retract + one insert.
        assert deltas == [(-1, ("a", "b", 5)), (1, ("a", "b", 2))]

    def test_apply_many_retractions(self):
        view = make_view()
        view.apply(("a", "b", 5), 1)
        assert view.apply_many([("a", "b", 5)], -1) == [(-1, ("a", "b", 5))]
        view.apply(("a", "b", 5), 1)
        # Retract and re-add the only value in one chunk: no net change.
        view.apply(("a", "b", 4), 1)
        deltas = view.apply_many([("a", "b", 4)], -1)
        assert deltas == [(-1, ("a", "b", 4)), (1, ("a", "b", 5))]


class TestHeapBackedExtremes:
    """The lazy-deletion heaps must agree with a from-scratch min/max
    under arbitrary churn (the O(log n) structure of [27])."""

    @pytest.mark.parametrize("func", ["min", "max"])
    def test_random_churn_matches_rescan(self, func):
        rng = random.Random(42)
        g = GroupState(func)
        shadow = []
        for _ in range(3000):
            if shadow and rng.random() < 0.45:
                value = rng.choice(shadow)
                shadow.remove(value)
                g.remove(value)
            else:
                value = rng.randint(0, 50)
                shadow.append(value)
                g.add(value)
            expected = None
            if shadow:
                expected = min(shadow) if func == "min" else max(shadow)
            assert g.current() == expected

    def test_heap_stays_compact_under_churn(self):
        g = GroupState("min")
        for i in range(1000):
            g.add(i)
        for i in range(995):
            g.remove(i)
        assert g.current() == 995
        assert len(g._heap) <= 2 * len(g.values) + 16 + 1

    @pytest.mark.parametrize("func", ["min", "max"])
    def test_argextreme_random_churn_matches_rescan(self, func):
        rng = random.Random(7)
        view = ArgExtremeView("best", (0,), 1, func=func)
        shadow = {}
        for _ in range(2000):
            group = rng.choice(["g1", "g2"])
            members = shadow.setdefault(group, [])
            if members and rng.random() < 0.45:
                args = rng.choice(members)
                members.remove(args)
                view.apply(args, -1)
            else:
                args = (group, rng.randint(0, 30))
                members.append(args)
                view.apply(args, 1)
            for g, rows in shadow.items():
                if not rows:
                    assert (g,) not in view.winners
                    continue
                best = view.winners[(g,)]
                values = [r[1] for r in rows]
                expected = min(values) if func == "min" else max(values)
                assert best[1] == expected


class TestOrderKey:
    def test_orders_numbers_numerically_across_int_float(self):
        assert order_key(1.5) < order_key(2)
        assert order_key(2) < order_key(2.5)

    def test_bools_pool_with_numbers_like_raw_comparison(self):
        # Raw comparisons treat True as 1; the heap order must agree
        # with ArgExtremeView._better or promotion picks a non-extreme.
        assert order_key(True) < order_key(2)
        assert order_key(0) < order_key(True)
        view = ArgExtremeView("best", (0,), 1, func="min")
        view.apply(("g", 0), 1)
        view.apply(("g", True), 1)
        view.apply(("g", 2), 1)
        deltas = view.apply(("g", 0), -1)
        assert deltas == [(-1, ("g", 0)), (1, ("g", True))]

    def test_orders_across_types_deterministically(self):
        values = ["b", 3, ("x", 1), "a", 2.5, ("x",)]
        ordered = sorted(values, key=order_key)
        assert ordered == sorted(values, key=order_key)  # stable/total
        assert ordered.index(2.5) < ordered.index(3)
        assert ordered.index("a") < ordered.index("b")
        assert ordered.index(("x",)) < ordered.index(("x", 1))

    def test_nonwinner_churn_keeps_heap_compact(self):
        """Flapping a non-winning alternative must not grow the lazy
        heap unboundedly (compaction also runs off the non-winner
        removal path)."""
        view = ArgExtremeView("best", (0,), 1, func="min")
        view.apply(("g", 1), 1)  # stable winner
        for _ in range(5000):
            view.apply(("g", 7), 1)
            view.apply(("g", 7), -1)
        assert view.winners[("g",)] == ("g", 1)
        assert len(view._heaps[("g",)]) <= 2 * 1 + 16 + 1

    def test_unorderable_values_tie_break_deterministically(self):
        """Witness tuples may carry values with no natural order (e.g.
        ConstructedTuple); the tie-break key must not raise on insert
        and promotion must stay deterministic."""
        from repro.ndlog.terms import ConstructedTuple

        class Opaque:  # no __lt__
            def __init__(self, tag):
                self.tag = tag

            def __repr__(self):
                return f"Opaque({self.tag})"

        view = ArgExtremeView("best", (0,), 1, func="min")
        a = ConstructedTuple("link", ("a", "b"))
        b = ConstructedTuple("link", ("a", "c"))
        view.apply(("g", 5, a), 1)
        view.apply(("g", 5, b), 1)  # value tie; unorderable third field
        deltas = view.apply(("g", 5, a), -1)
        assert deltas == [(-1, ("g", 5, a)), (1, ("g", 5, b))]
        view2 = ArgExtremeView("best", (0,), 1, func="min")
        ox, oy = Opaque("x"), Opaque("y")
        view2.apply(("g", 5, ox), 1)
        view2.apply(("g", 5, oy), 1)
        deltas = view2.apply(("g", 5, ox), -1)  # no TypeError on promote
        assert deltas == [(-1, ("g", 5, ox)), (1, ("g", 5, oy))]

    def test_tie_break_promotes_least_tuple(self):
        view = ArgExtremeView("best", (0,), 1, func="min")
        view.apply(("g", 5, "zebra"), 1)     # incumbent
        view.apply(("g", 5, "aardvark"), 1)  # tie: incumbent kept
        assert view.winners[("g",)] == ("g", 5, "zebra")
        deltas = view.apply(("g", 5, "zebra"), -1)
        # Promotion is deterministic: the least tuple under order_key.
        assert deltas == [(-1, ("g", 5, "zebra")), (1, ("g", 5, "aardvark"))]

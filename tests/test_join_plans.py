"""The compiled join-plan layer (``repro.engine.rules``): plan compiler
unit tests, planned-vs-interpreted equivalence at the rule level, and
the cross-engine property that planned and unplanned evaluation compute
identical fixpoints (with identical inference counts -- planning must
not change *what* fires, only how fast)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Database, bsn, naive, psn, seminaive
from repro.engine.psn import PSNEngine
from repro.engine.rules import (
    AssignStep,
    CompiledRule,
    CondStep,
    LiteralStep,
    SetSource,
    compile_driver_step,
    compile_plan,
    execute_plan,
    solve,
)
from repro.engine.table import Table
from repro.errors import PlanError
from repro.ndlog import parse, programs
from repro.ndlog.functions import default_functions
from repro.opt.costbased import StatsCatalog
from repro.planner.reorder import bound_positions, greedy_join_order

ENGINES = (naive, seminaive, bsn, psn)


def rule_of(text):
    return parse(text).rules[0]


# ----------------------------------------------------------------------
# Plan compiler units
# ----------------------------------------------------------------------
def test_literal_step_classification():
    crule = CompiledRule(rule_of(
        "R: out(@A, B) :- p(@A, B, c1, A, B + 1)."
    ))
    # No prefix bound: A and B bind, the constant is a lookup, the
    # repeated A is a positional check, B + 1 is a residual expression.
    step = LiteralStep(crule.body[0], 0, frozenset())
    assert step.positions == (2,)            # the constant c1
    assert step.static_values == ("c1",)
    assert [name for _pos, name in step.bind_specs] == ["A", "B"]
    assert step.dup_checks == ((3, 0),)      # position 3 must equal 0
    assert [pos for pos, _fn in step.residual_exprs] == [4]

    # With A and B prefix-bound everything becomes an index lookup.
    step = LiteralStep(crule.body[0], 0, frozenset({"A", "B"}))
    assert step.positions == (0, 1, 2, 3, 4)
    assert step.bind_specs == ()
    assert step.dup_checks == ()
    assert step.residual_exprs == ()


def test_driver_step_fast_path_and_mismatch():
    crule = CompiledRule(rule_of("R: out(@A, C) :- p(@A, B, C)."))
    step = compile_driver_step(crule, 0)
    assert step.fast_bind == ("A", "B", "C")
    assert step.match(("x", "y", 3), {}, {}) == {"A": "x", "B": "y", "C": 3}
    assert step.match(("x", "y"), {}, {}) is None  # arity mismatch

    crule = CompiledRule(rule_of("R: out(@A) :- p(@A, A, c7)."))
    step = compile_driver_step(crule, 0)
    assert step.fast_bind is None
    assert step.match(("x", "x", "c7"), {}, {}) == {"A": "x"}
    assert step.match(("x", "y", "c7"), {}, {}) is None   # dup check
    assert step.match(("x", "x", "c8"), {}, {}) is None   # constant


def test_strand_plan_orders_bound_literal_first():
    # Driven by q (binding B), the r literal shares B while s shares
    # nothing -- the plan must join r before s regardless of body order.
    crule = CompiledRule(rule_of(
        "R: out(@A, D) :- q(@A, B), s(@C, D), r(@B, C)."
    ))
    plan = compile_plan(crule, driver_index=0)
    assert plan.order == (2, 1)  # r (body index 2) before s (body index 1)


def test_plan_respects_selectivity_stats():
    crule = CompiledRule(rule_of(
        "R: out(@A) :- big(@A, B), small(@A, C)."
    ))
    stats = StatsCatalog({"big": 10_000.0, "small": 10.0})
    plan = compile_plan(crule, stats=stats)
    assert plan.order[0] == 1  # small first


def test_lead_index_forces_delta_literal_first():
    crule = CompiledRule(rule_of(
        "T2: tc(X, Z) :- edge(X, Y), tc(Y, Z)."
    ))
    plan = compile_plan(crule, lead_index=1)
    assert plan.order == (1, 0)


def test_driver_and_lead_are_mutually_exclusive():
    crule = CompiledRule(rule_of(
        "T2: tc(X, Z) :- edge(X, Y), tc(Y, Z)."
    ))
    with pytest.raises(PlanError):
        compile_plan(crule, driver_index=0, lead_index=1)


def test_conditions_and_assignments_run_at_earliest_bound_point():
    crule = CompiledRule(rule_of(
        "R: out(@A, C) :- p(@A, B), q(@B, C), C := B + 1, B != z9."
    ))
    plan = compile_plan(crule)
    kinds = [type(step).__name__ for step in plan.steps]
    # The guard and the assignment depend only on B, so both run right
    # after p binds B -- before the q join.
    assert kinds == ["LiteralStep", "AssignStep", "CondStep", "LiteralStep"]


def test_planned_bodies_have_declarative_order_semantics():
    """An assignment written before the literal that binds its input is
    legal under plans (conjuncts commute; the assignment waits for the
    literal), while the strictly left-to-right interpreter rejects it.
    An assignment whose inputs never bind still raises on both paths."""
    program = parse("Q: q(A, B) :- B := A + 1, p(A).")
    db = Database.for_program(program)
    db.load_facts("p", [(3,)])
    result = naive.evaluate(program, db, use_plans=True)
    assert result.rows("q") == frozenset({(3, 4)})
    from repro.errors import EvaluationError
    with pytest.raises(EvaluationError):
        db2 = Database.for_program(program)
        db2.load_facts("p", [(3,)])
        naive.evaluate(program, db2, use_plans=False)

    never_bound = parse("Q: q(A, B) :- B := Z + 1, p(A).")
    for use_plans in (True, False):
        db3 = Database.for_program(never_bound)
        db3.load_facts("p", [(3,)])
        with pytest.raises(EvaluationError):
            naive.evaluate(never_bound, db3, use_plans=use_plans)


def test_index_requests_cover_probed_positions():
    crule = CompiledRule(rule_of(
        "T2: tc(X, Z) :- edge(X, Y), tc(Y, Z)."
    ))
    plan = compile_plan(crule, driver_index=0)  # driven by edge
    assert plan.index_requests() == [("tc", (0,))]


def test_exclude_driver_marks_preceding_same_pred_literals():
    crule = CompiledRule(rule_of(
        "T2: tc(X, Z) :- tc(X, Y), tc(Y, Z)."
    ))
    plan = compile_plan(crule, driver_index=1)  # driven by second tc
    (step,) = plan.literal_steps()
    assert step.body_index == 0
    assert step.exclude_driver
    plan = compile_plan(crule, driver_index=0)  # driven by first tc
    (step,) = plan.literal_steps()
    assert not step.exclude_driver


def test_table_indexes_preregistered_on_engine_construction():
    program = programs.transitive_closure()
    engine = PSNEngine(program)
    # T2's edge-driven strand probes tc on position 0 (Y bound), and its
    # tc-driven strand probes edge on position 1 (Y bound).
    assert (0,) in engine.db.table("tc")._indexes
    assert (1,) in engine.db.table("edge")._indexes


# ----------------------------------------------------------------------
# execute_plan vs solve
# ----------------------------------------------------------------------
def solutions(bindings_iter, head_vars):
    return sorted(
        tuple(b[v] for v in head_vars) for b in bindings_iter
    )


def test_execute_plan_matches_solve_on_joins():
    crule = CompiledRule(rule_of(
        "R: out(@A, D) :- p(@A, B), q(@B, C), r(@C, D), B != D."
    ))
    functions = default_functions()
    rng = random.Random(5)
    rows = {
        0: [(f"a{rng.randrange(4)}", f"b{rng.randrange(4)}") for _ in range(12)],
        1: [(f"b{rng.randrange(4)}", f"c{rng.randrange(4)}") for _ in range(12)],
        2: [(f"c{rng.randrange(4)}", f"a{rng.randrange(4)}") for _ in range(12)],
    }
    sources = {i: SetSource(r) for i, r in rows.items()}
    plan = compile_plan(crule)
    planned = solutions(
        execute_plan(plan, sources, functions), ("A", "B", "C", "D")
    )
    interpreted = solutions(
        solve(crule, sources, functions), ("A", "B", "C", "D")
    )
    assert planned == interpreted
    assert planned  # non-vacuous


def test_execute_plan_skip_fact_matches_solve_self_join():
    crule = CompiledRule(rule_of(
        "T2: tc(X, Z) :- tc(X, Y), tc(Y, Z)."
    ))
    functions = default_functions()
    table = Table("tc", 2)
    for row in [("a", "b"), ("b", "c"), ("c", "a"), ("b", "a")]:
        table.insert(row)

    class FakeFact:
        pred = "tc"
        args = ("b", "c")

    seed_literal = compile_driver_step(crule, 1)
    seed = seed_literal.match(FakeFact.args, {}, functions)
    plan = compile_plan(crule, driver_index=1)
    planned = solutions(
        execute_plan(plan, {0: table}, functions, bindings=dict(seed),
                     skip_fact=FakeFact),
        ("X", "Y", "Z"),
    )
    interpreted = solutions(
        solve(crule, {0: table}, functions, bindings=dict(seed),
              skip_index=1, skip_fact=FakeFact),
        ("X", "Y", "Z"),
    )
    assert planned == interpreted


def test_execute_plan_honors_ts_limit():
    crule = CompiledRule(rule_of("R: out(X, Y) :- p(X, Y)."))
    functions = default_functions()
    table = Table("p", 2)
    table.insert(("a", "b"), ts=1)
    table.insert(("c", "d"), ts=5)
    plan = compile_plan(crule)
    got = solutions(
        execute_plan(plan, {0: table}, functions, ts_limit=2), ("X", "Y")
    )
    assert got == [("a", "b")]


# ----------------------------------------------------------------------
# Ordering helpers and statistics
# ----------------------------------------------------------------------
def test_bound_positions_counts_constants_vars_and_exprs():
    crule = CompiledRule(rule_of("R: out(@A) :- p(@A, c3, B, A + 1)."))
    literal = crule.body[0]
    assert bound_positions(literal, set()) == 1           # just c3
    assert bound_positions(literal, {"A"}) == 3           # A, c3, A + 1
    assert bound_positions(literal, {"A", "B"}) == 4


def test_greedy_join_order_prefers_bound_then_small():
    program = parse("R: out(@A) :- big(@B, C), small(@D, E), tied(@A, B).")
    literals = list(enumerate(program.rules[0].body_literals))
    stats = StatsCatalog({"big": 1e6, "small": 4.0, "tied": 1e6})
    # A bound: tied has a bound position, then small (tiny), then big.
    assert greedy_join_order(literals, {"A"}, stats) == [2, 0, 1]


def test_stats_catalog_estimates():
    stats = StatsCatalog({"p": 100.0}, default_rows=50.0)
    assert stats.estimated_candidates("p", 2, 0) == 100.0
    assert stats.estimated_candidates("p", 2, 2) == 1.0
    assert stats.estimated_candidates("p", 2, 1) == pytest.approx(10.0)
    assert stats.estimated_candidates("unknown", 1, 0) == 50.0


def test_stats_catalog_from_database_skips_empty_tables():
    program = programs.transitive_closure()
    db = Database.for_program(program)
    db.load_facts("edge", [("a", "b"), ("b", "c")])
    stats = StatsCatalog.from_database(db)
    assert stats.table_rows("edge") == 2.0
    assert stats.table_rows("tc") == StatsCatalog.DEFAULT_ROWS


# ----------------------------------------------------------------------
# Property: planned == unplanned on every engine
# ----------------------------------------------------------------------
SETTINGS = dict(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)

nodes = st.integers(min_value=0, max_value=5).map(lambda i: f"n{i}")
edges = st.sets(st.tuples(nodes, nodes).filter(lambda e: e[0] != e[1]),
                min_size=1, max_size=12)

GRAPH_PROGRAMS = (
    ("edge", programs.transitive_closure),
    ("edge", programs.transitive_closure_nonlinear),
)


def weighted(edge_set, seed=3):
    rng = random.Random(seed)
    rows = []
    for a, b in sorted(edge_set):
        cost = rng.randint(1, 9)
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows


@given(edge_set=edges)
@settings(**SETTINGS)
def test_property_planned_equals_unplanned_tc(edge_set):
    for pred, builder in GRAPH_PROGRAMS:
        for module in ENGINES:
            snapshots = []
            inference_counts = []
            for use_plans in (True, False):
                program = builder()
                db = Database.for_program(program)
                db.load_facts(pred, edge_set)
                result = module.evaluate(program, db, use_plans=use_plans)
                snapshots.append(result.db.snapshot())
                inference_counts.append(result.inferences)
            assert snapshots[0] == snapshots[1], (module.__name__, builder.__name__)
            assert inference_counts[0] == inference_counts[1]


@given(edge_set=edges)
@settings(**SETTINGS)
def test_property_planned_equals_unplanned_shortest_path(edge_set):
    links = weighted(edge_set)
    for module in ENGINES:
        snapshots = []
        for use_plans in (True, False):
            program = programs.shortest_path_safe()
            db = Database.for_program(program)
            db.load_facts("link", links)
            result = module.evaluate(program, db, use_plans=use_plans)
            snapshots.append(result.db.snapshot())
        assert snapshots[0] == snapshots[1], module.__name__


@given(edge_set=edges)
@settings(**SETTINGS)
def test_property_planned_equals_unplanned_distance_vector(edge_set):
    links = weighted(edge_set, seed=9)
    for module in ENGINES:
        snapshots = []
        for use_plans in (True, False):
            program = programs.distance_vector()
            db = Database.for_program(program)
            db.load_facts("link", links)
            result = module.evaluate(program, db, use_plans=use_plans)
            snapshots.append(result.db.snapshot())
        assert snapshots[0] == snapshots[1], module.__name__


def test_planned_incremental_updates_match_rebuild():
    """PSN with plans: after a burst of inserts and deletes, the
    incrementally maintained state equals evaluation from scratch on the
    final base tables (Theorem 3, now through the planned path)."""
    rng = random.Random(17)
    program = programs.transitive_closure()
    engine = PSNEngine(program)
    live = set()
    for _ in range(60):
        a, b = f"n{rng.randrange(6)}", f"n{rng.randrange(6)}"
        if a == b:
            continue
        if (a, b) in live:
            if rng.random() < 0.4:
                engine.delete("edge", (a, b))
                live.discard((a, b))
        else:
            engine.insert("edge", (a, b))
            live.add((a, b))
    engine.run()

    fresh = PSNEngine(programs.transitive_closure())
    for edge in live:
        fresh.insert("edge", edge)
    fresh.run()
    assert (frozenset(engine.db.table("tc").rows())
            == frozenset(fresh.db.table("tc").rows()))

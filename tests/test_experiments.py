"""Smoke tests for the experiment harness at miniature scale: every
figure driver runs end to end, reports, and keeps its key shape
properties even on a small overlay (the full-scale shape assertions run
in benchmarks/)."""

import pytest

pytestmark = pytest.mark.slow  # multi-minute sims; run with `pytest -m slow`

from repro.experiments import fig7_8, fig9_10, fig11, fig12, fig13_14
from repro.experiments.common import (
    Scale,
    current_scale,
    format_series,
    format_table,
)
from repro.opt.costbased import hybrid_study, recommend_strategy, zone_radius
from repro.topology import build_overlay, transit_stub

TINY = Scale(
    name="tiny", n_nodes=16, degree=3,
    query_counts=(2, 6),
    burst_count=2, burst_interval=8.0,
    seed=5,
)


@pytest.fixture(scope="module")
def overlay():
    return build_overlay(transit_stub(seed=TINY.seed),
                         n_nodes=TINY.n_nodes, degree=TINY.degree,
                         seed=TINY.seed)


def test_scale_selection_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert current_scale().name == "small"
    monkeypatch.setenv("REPRO_SCALE", "full")
    full = current_scale()
    assert full.name == "full"
    assert full.n_nodes == 100  # the paper's deployment size


def test_fig7_8_smoke(overlay):
    result = fig7_8.run(overlay=overlay, scale=TINY)
    assert set(result.runs) == {"hopcount", "latency", "reliability",
                                "random"}
    for run in result.runs.values():
        assert run.convergence > 0
        assert run.total_mb > 0
        assert run.results_series[-1][1] == 1.0
    # Core orderings hold even at tiny scale.
    assert result.runs["hopcount"].total_mb < result.runs["random"].total_mb
    assert "Hop-Count" in result.report()


def test_fig9_10_smoke(overlay):
    result = fig9_10.run(overlay=overlay, scale=TINY, interval=0.3)
    for metric in result.periodic.runs:
        assert result.reduction(metric) > 0
    assert "periodic" in result.report()


def test_fig11_smoke(overlay):
    result = fig11.run(overlay=overlay, scale=TINY)
    assert result.lines["MS"] == sorted(result.lines["MS"])
    assert len(result.lines["No-MS"]) == len(TINY.query_counts)
    assert result.lines["MSC-10%"][-1] <= result.lines["MSC"][-1] + 1e-9
    assert "Figure 11" in result.report()


def test_fig12_smoke(overlay):
    result = fig12.run(overlay=overlay, scale=TINY)
    assert result.share_mb < result.no_share_mb
    assert result.saving > 0
    assert "sharing" in result.report()


def test_fig13_smoke(overlay):
    result = fig13_14.run_fig13(overlay=overlay, scale=TINY)
    assert result.consistent
    assert result.mean_burst_mb < result.initial_mb
    assert "Figure 13" in result.report()


def test_fig14_smoke(overlay):
    result = fig13_14.run_fig14(overlay=overlay, scale=TINY)
    assert result.consistent
    assert "Figure 14" in result.report()


class TestCostBased:
    def test_hybrid_study(self, overlay):
        study = hybrid_study(overlay, pairs=20, seed=3)
        assert study.hybrid_total <= study.td_total
        assert study.hybrid_total <= study.bu_total
        assert "hybrid" in study.report()

    def test_recommend_strategy_valid(self, overlay):
        pick = recommend_strategy(overlay, overlay.nodes[0],
                                  overlay.nodes[-1])
        assert pick in ("td", "bu", "hybrid")

    def test_zone_radius_budget(self, overlay):
        node = overlay.nodes[0]
        small = zone_radius(overlay, node, budget=1)
        large = zone_radius(overlay, node, budget=len(overlay.nodes))
        assert small == 0
        assert large >= small
        from repro.topology import neighborhood_at

        assert neighborhood_at(overlay, node,
                               zone_radius(overlay, node, 8)) <= 8


class TestReporting:
    def test_format_table(self):
        text = format_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[2] or "333" in lines[3]

    def test_format_series_downsamples(self):
        series = [(i * 0.1, float(i)) for i in range(100)]
        text = format_series(series, max_points=5)
        assert text.count(":") <= 8
        assert "9.9" in text  # last point always kept

    def test_format_series_empty(self):
        assert format_series([]) == "(empty)"

"""The observability layer (:mod:`repro.obs`): metrics registry,
delta-propagation tracing, profiling hooks -- and the satellite
contracts that ride with it (weight-aware commit observation, traffic
time-series helpers, fault trace events, sim-vs-live equivalence)."""

import json

import pytest

import repro
from repro.chaos import ChaosSchedule
from repro.engine.facts import Fact
from repro.engine.psn import PSNEngine
from repro.errors import PlanError
from repro.ndlog import parse, programs
from repro.net.live import decode_message, encode_message
from repro.net.message import Message, NetDelta, coalesce
from repro.net.stats import ResultTracker, TrafficStats
from repro.obs import MetricsRegistry, Profiler, Tracer
from repro.obs.__main__ import main as obs_cli
from repro.opt.costbased import StatsCatalog
from repro.runtime import RuntimeConfig
from repro.topology import build_overlay, transit_stub
from repro.topology.overlay import Overlay


# ----------------------------------------------------------------------
# Shared fixtures: a directed-line reachability deployment
# ----------------------------------------------------------------------
#: Directed reachability whose every fact has exactly ONE derivation:
#: R2's body is single-site at the predecessor @Z and the head ships
#: along the (directed) link to @S.  With link facts injected in one
#: direction only there are no alternate paths, so commit attribution,
#: counter totals and span graphs are identical on every target.
DIRECTED_REACH = """
materialize(link, infinity, infinity, keys(1,2)).
materialize(reach, infinity, infinity, keys(1,2)).
R1: reach(@S, @D) :- #link(@S, @D, C).
R2: reach(@S, @D) :- #link(@Z, @S, C), reach(@Z, @D).
Query: reach(@S, @D).
"""

LINE_N = 4


def line_overlay(n=LINE_N):
    names = [f"n{i}" for i in range(n)]
    links = {
        (names[i], names[i + 1]): {"latency": 10.0, "hopcount": 1.0}
        for i in range(n - 1)
    }
    return Overlay(nodes=names, host={name: "h" for name in names},
                   links=links)


def deploy_line(**kwargs):
    """Sim deployment of the directed line; link facts injected one
    direction only (link_loads={} keeps the symmetric auto-load off)."""
    compiled = repro.compile(DIRECTED_REACH, name="dreach")
    deployment = compiled.deploy(topology=line_overlay(), link_loads={},
                                 **kwargs)
    for i in range(LINE_N - 1):
        deployment.inject(f"n{i}", "link", (f"n{i}", f"n{i+1}", 1.0))
    return deployment


@pytest.fixture
def observed():
    deployment = deploy_line(metrics=True, trace=True, profile=True)
    deployment.advance()
    return deployment


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_snapshot_rule_and_relation_counters(self, observed):
        snap = observed.metrics()
        totals = snap.rule_totals()
        # R1 fires once per link fact; R2 once per upstream reach fact.
        assert totals["R1"]["inferences"] == 3
        assert totals["R2"]["inferences"] == 6
        relations = snap.relation_totals()
        assert relations["link"]["commits"] == 3
        assert relations["reach"]["commits"] == 9
        assert relations["reach"]["rows"] == 9
        assert relations["reach"]["retractions"] == 0

    def test_snapshot_node_gauges(self, observed):
        snap = observed.metrics()
        assert set(snap.nodes) == {f"n{i}" for i in range(LINE_N)}
        for counts in snap.nodes.values():
            assert counts["queue_depth"] == 0  # quiescent
            assert counts["steps"] >= counts["netted"]
        # Every node that processed anything saw a queue-depth peak.
        assert any(c["queue_peak"] > 0 for c in snap.nodes.values())

    def test_transport_counters_track_wire(self, observed):
        snap = observed.metrics()
        assert snap.transport["messages"] == observed.stats.messages
        assert snap.transport["bytes"] == observed.stats.total_bytes()
        assert snap.transport["netdeltas_shipped"] == 6

    def test_counter_totals_excludes_gauges(self, observed):
        totals = observed.metrics().counter_totals()
        assert not any(key.startswith("queue") for key in totals)
        assert totals["messages"] == observed.stats.messages
        assert totals["commits:n3:reach"] == 3

    def test_prometheus_exposition(self, observed):
        text = observed.metrics_text()
        assert '# TYPE ndlog_rule_firings_total counter' in text
        assert 'ndlog_rule_firings_total{node="n0",rule="R1"} 1' in text
        assert 'ndlog_commits_total{node="n3",relation="reach"} 3' in text
        assert '# TYPE ndlog_table_rows gauge' in text
        assert 'ndlog_transport{counter="messages"}' in text
        assert text.endswith("\n")

    def test_metrics_off_raises_planerror(self):
        deployment = deploy_line()
        deployment.advance()
        with pytest.raises(PlanError, match="metrics=True"):
            deployment.metrics()
        with pytest.raises(PlanError, match="metrics=True"):
            deployment.metrics_text()

    def test_view_changes_counted_for_aggregates(self):
        overlay = build_overlay(transit_stub(seed=2), n_nodes=12,
                                degree=3, seed=2)
        compiled = repro.compile(programs.shortest_path())
        deployment = compiled.deploy(
            topology=overlay,
            config=RuntimeConfig(aggregate_selections=True, metrics=True),
            link_loads={"link": "hopcount"},
        )
        deployment.advance()
        totals = deployment.metrics().relation_totals()
        changed = [pred for pred, counts in totals.items()
                   if counts["view_changes"]]
        assert changed  # the aggsel view emitted group transitions

    def test_link_retransmits_under_loss(self):
        deployment = deploy_line(
            metrics=True,
            config=RuntimeConfig(loss_rate=0.4, seed=7),
            reliable=True,
        )
        deployment.advance()
        snap = deployment.metrics()
        assert snap.links  # per-(src, dst) retransmit counters
        assert sum(snap.links.values()) == deployment.stats.retransmits
        text = snap.to_prometheus()
        assert "ndlog_link_retransmits_total{src=" in text

    def test_refresh_stats_feeds_catalogs(self, observed):
        observed.refresh_stats()
        node = observed.nodes["n1"]
        catalog = node.stats_catalog
        assert catalog.table_rows("reach") == float(
            len(node.db.tables["reach"])
        )
        assert catalog.churn_of("reach") > 0
        assert catalog.churn_of("never_seen") == 0.0


class TestStatsCatalogRefresh:
    def test_refresh_is_incremental(self):
        catalog = StatsCatalog({"a": 10.0})
        catalog.refresh(sizes={"b": 5}, churn={"b": 2})
        assert catalog.table_rows("a") == 10.0
        assert catalog.table_rows("b") == 5.0
        assert catalog.churn_of("b") == 2.0
        catalog.refresh(churn={"b": 7})
        assert catalog.churn_of("b") == 7.0
        assert catalog.table_rows("b") == 5.0


# ----------------------------------------------------------------------
# Satellite: weight-aware commit observation
# ----------------------------------------------------------------------
class TestWeightedCommits:
    def test_tracker_counts_weighted_bursts(self):
        tracker = ResultTracker(watch_pred="out")
        fact = Fact("out", (1,))
        tracker.on_commit(1.0, fact, 3)
        assert tracker.committed_weight == 3
        assert tracker.last_insert[(1,)] == 1.0
        tracker.on_commit(2.0, fact, -3)
        assert tracker.retracted_weight == 3
        assert (1,) not in tracker.last_insert
        # Sign-only callers (the historical contract) still work.
        tracker.on_commit(3.0, fact, 1)
        assert tracker.committed_weight == 4

    def test_tracker_ignores_other_predicates(self):
        tracker = ResultTracker(watch_pred="out")
        tracker.on_commit(1.0, Fact("other", (1,)), 5)
        assert tracker.committed_weight == 0

    def test_engine_reports_burst_weight_not_one(self):
        program = parse(
            "materialize(out, infinity, infinity, keys(1)).\n"
            "r: out(X) :- seed(X).\n"
        )
        events = []
        engine = PSNEngine(
            program, on_commit=lambda fact, weight: events.append(
                (fact.pred, fact.args, weight))
        )
        fact = Fact("out", (1,))
        engine.derive(fact, 3)
        engine.fixpoint()
        assert ("out", (1,), 3) in events
        # run(), not fixpoint(): fixpoint re-seeds existing rows, which
        # is the from-scratch driver; incremental deltas after
        # convergence drain through the plain queue.
        engine.derive(fact, -3)
        engine.run()
        assert ("out", (1,), -3) in events

    def test_subscribe_delivers_weights(self):
        deployment = deploy_line()
        seen = []
        deployment.subscribe(
            "reach", lambda now, fact, weight: seen.append(weight))
        deployment.advance()
        assert len(seen) == 9
        assert all(weight == 1 for weight in seen)


# ----------------------------------------------------------------------
# Satellite: TrafficStats time-series helpers
# ----------------------------------------------------------------------
class TestTrafficSeries:
    def test_per_node_kbps_bin_edges(self):
        stats = TrafficStats()
        stats.record(0.0, "a", 250)      # bin 0 [0, 0.25)
        stats.record(0.25, "a", 500)     # exactly on the edge -> bin 1
        stats.record(0.49, "a", 250)     # still bin 1
        series = stats.per_node_kbps_series(node_count=1, bin_seconds=0.25)
        assert [t for t, _ in series] == [0.25, 0.5]
        # bin 0: 250 B / 0.25 s = 1 kB/s; bin 1: 750 B / 0.25 s = 3 kB/s.
        assert [kbps for _, kbps in series] == [1.0, 3.0]

    def test_last_bin_clamps_late_records(self):
        stats = TrafficStats()
        stats.record(0.9, "a", 100)
        series = stats.per_node_kbps_series(
            node_count=1, bin_seconds=0.25, until=0.5
        )
        # end is max(until, last record) -> the 0.9 s record defines
        # the range and lands in its own (final) bin.
        assert series[-1][0] == 1.0
        assert series[-1][1] == pytest.approx(100 / 0.25 / 1e3)

    def test_empty_records_with_until_yields_zero_bins(self):
        stats = TrafficStats()
        assert stats.per_node_kbps_series(node_count=3) == []
        series = stats.per_node_kbps_series(
            node_count=3, bin_seconds=0.5, until=1.0
        )
        assert [t for t, _ in series] == [0.5, 1.0, 1.5]
        assert all(kbps == 0.0 for _, kbps in series)

    def test_bytes_between_boundaries(self):
        stats = TrafficStats()
        stats.record(1.0, "a", 10)
        stats.record(2.0, "a", 20)
        stats.record(3.0, "a", 40)
        # Inclusive start, exclusive end.
        assert stats.bytes_between(1.0, 3.0) == 30
        assert stats.bytes_between(1.0, 3.0001) == 70
        assert stats.bytes_between(0.0, 1.0) == 0
        assert stats.bytes_between(3.0, 3.0) == 0


# ----------------------------------------------------------------------
# Delta-propagation tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_span_kinds_cover_the_delta_lifecycle(self, observed):
        kinds = {event.kind for event in observed.tracer.events}
        assert {"inject", "derive", "ship", "receive", "commit"} <= kinds

    def test_trace_links_injection_to_remote_commits(self, observed):
        tracer = observed.tracer
        trace = tracer.trace_of("link", ("n0", "n1", 1.0))
        assert trace is not None
        spans = tracer.span_graph()[trace]
        commits = [s for s in spans if s[0] == "commit"]
        # The injected link commits at n0 and its reach consequences
        # propagate (and commit) down the whole line.
        nodes = {s[1] for s in commits}
        assert "n0" in nodes and "n3" in nodes
        ships = [s for s in spans if s[0] == "ship"]
        receives = [s for s in spans if s[0] == "receive"]
        assert len(ships) == len(receives) > 0

    def test_chrome_export_pairs_flows(self, observed, tmp_path):
        path = tmp_path / "trace.json"
        observed.save_trace(str(path))
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        process_names = {
            ev["args"]["name"] for ev in events
            if ev.get("ph") == "M" and ev["name"] == "process_name"
        }
        assert {f"n{i}" for i in range(LINE_N)} <= process_names
        starts = [ev for ev in events if ev.get("ph") == "s"]
        finishes = [ev for ev in events if ev.get("ph") == "f"]
        assert len(starts) == len(finishes) > 0
        assert sorted(ev["id"] for ev in starts) == \
            sorted(ev["id"] for ev in finishes)

    def test_cli_summarize_and_render(self, observed, tmp_path, capsys):
        path = tmp_path / "trace.json"
        observed.save_trace(str(path))
        assert obs_cli([str(path)]) == 0
        out = capsys.readouterr().out
        assert "spans by kind" in out
        assert "commit" in out
        trace = observed.tracer.trace_of("link", ("n0", "n1", 1.0))
        assert obs_cli([str(path), "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"trace {trace}:" in out
        assert "ship" in out

    def test_trace_off_raises_planerror(self):
        deployment = deploy_line()
        deployment.advance()
        assert deployment.tracer is None
        with pytest.raises(PlanError, match="trace=True"):
            deployment.save_trace("/tmp/never-written.json")

    def test_fault_injections_become_trace_events(self):
        deployment = deploy_line(
            trace=True, chaos=ChaosSchedule(seed=5).drop(rate=0.3),
            reliable=True,
        )
        deployment.advance()
        faults = [event for event in deployment.tracer.events
                  if event.kind.startswith("fault:")]
        assert faults
        assert all(event.trace is None for event in faults)
        assert deployment.stats.faults_injected

    def test_watchdog_teardown_becomes_trace_event(self, observed):
        observed.cluster.fail_link("n0", "n1")
        kinds = [event.kind for event in observed.tracer.events]
        assert "link_teardown" in kinds


# ----------------------------------------------------------------------
# Wire format: the piggybacked trace id
# ----------------------------------------------------------------------
class TestTraceOnTheWire:
    def roundtrip(self, delta):
        message = Message(src="a", dst="b", deltas=(delta,))
        return decode_message(encode_message(message)).deltas[0]

    def test_trace_and_prov_roundtrip(self):
        got = self.roundtrip(NetDelta("p", ("x", 1), 2, prov=9, trace=4))
        assert (got.prov, got.trace) == (9, 4)

    def test_trace_without_prov_roundtrips(self):
        got = self.roundtrip(NetDelta("p", ("x",), 1, trace=7))
        assert got.prov is None
        assert got.trace == 7

    def test_untagged_layout_unchanged(self):
        message = Message(src="a", dst="b",
                          deltas=(NetDelta("p", ("x",), 1),))
        frame = json.loads(encode_message(message))
        assert frame["t"][0] == ["p", 1, ["x"]]

    def test_coalesce_keeps_latest_trace(self):
        merged = coalesce([
            NetDelta("p", ("x",), 1, trace=1),
            NetDelta("p", ("x",), 1, trace=2),
            NetDelta("p", ("y",), 1, trace=3),
            NetDelta("p", ("y",), -1),
        ])
        assert len(merged) == 1
        assert merged[0].weight == 2
        assert merged[0].trace == 2


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------
class TestProfiling:
    def test_deployment_profile_rows(self, observed):
        profile = observed.profile()
        rules = profile.rule_totals()
        assert set(rules) == {"R1", "R2"}
        assert all(seconds > 0 for seconds in rules.values())
        report = profile.report()
        assert "R2" in report and "us/call" in report

    def test_profile_off_raises_planerror(self):
        deployment = deploy_line()
        deployment.advance()
        with pytest.raises(PlanError, match="profile=True"):
            deployment.profile()

    def test_centralized_evaluate_accepts_profiler(self):
        profiler = Profiler()
        compiled = repro.compile(programs.reachability())
        overlay = line_overlay()
        result = compiled.run(
            engine="psn",
            facts={"link": overlay.link_rows("hopcount")},
            profiler=profiler,
        )
        assert result.rows("reach")
        assert profiler.total_seconds() > 0

    def test_explain_timings_opt_in(self):
        compiled = repro.compile(DIRECTED_REACH, name="dreach")
        assert "-- pass timings --" not in compiled.explain()
        timed = compiled.explain(timings=True)
        assert "-- pass timings --" in timed
        assert "aggsel:" in timed
        assert "total:" in timed


# ----------------------------------------------------------------------
# Sim-vs-live equivalence (the acceptance criterion)
# ----------------------------------------------------------------------
def run_target(target, channels=None):
    kwargs = {"target": target}
    if channels is not None:
        kwargs["channels"] = channels
    deployment = deploy_line(metrics=True, trace=True, **kwargs)
    if target == "sim":
        deployment.advance()
    else:
        assert deployment.converge(timeout=60.0)
    totals = deployment.metrics().counter_totals()
    graphs = sorted(map(repr, deployment.tracer.span_graph().values()))
    return totals, graphs


class TestSimLiveEquivalence:
    def test_sim_inproc_udp_agree_on_counters_and_spans(self):
        sim_totals, sim_graphs = run_target("sim")
        live_totals, live_graphs = run_target("live", "inproc")
        udp_totals, udp_graphs = run_target("live", "udp")
        assert sim_totals == live_totals == udp_totals
        assert sim_graphs == live_graphs == udp_graphs

    def test_counter_totals_are_meaningful(self):
        totals, graphs = run_target("sim")
        assert totals["commits:n3:reach"] == 3
        assert totals["messages"] == 6
        assert len(graphs) == 3  # one causal graph per injected link


# ----------------------------------------------------------------------
# Registry internals
# ----------------------------------------------------------------------
class TestRegistry:
    def test_node_handles_are_cached(self):
        registry = MetricsRegistry()
        assert registry.node("a") is registry.node("a")
        assert registry.node("a") is not registry.node("b")

    def test_tracer_mints_unique_ids(self):
        tracer = Tracer(now=lambda: 0.0)
        recorder = tracer.recorder("n")
        first = recorder.mint(Fact("p", (1,)), 1)
        second = recorder.mint(Fact("p", (2,)), 1)
        assert first != second
        assert tracer.trace_of("p", (2,)) == second

    def test_profiler_merge_accumulates(self):
        left, right = Profiler(), Profiler()
        left.add("r1", "link", 0.5)
        right.add("r1", "link", 0.25)
        right.add("r2", "path", 1.0)
        left.merge(right)
        assert left.strands[("r1", "link")] == [0.75, 2]
        assert left.rule_totals()["r2"] == 1.0
        assert left.total_seconds() == pytest.approx(1.75)

"""Property-based tests (hypothesis) for the core invariants:

* Theorem 1: SN, BSN and PSN compute the naive fixpoint;
* Theorem 2: the delta engines never repeat an inference;
* Theorem 3: incremental maintenance under random update bursts equals
  evaluation from scratch on the quiesced state;
* parser round-trip: pretty-printing then re-parsing is the identity;
* f_concatPath algebra.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Database, bsn, naive, psn, seminaive
from repro.engine.bsn import BSNEngine
from repro.engine.psn import PSNEngine
from repro.ndlog import parse, pretty, programs
from repro.ndlog.functions import REGISTRY

SETTINGS = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)

nodes = st.integers(min_value=0, max_value=6).map(lambda i: f"n{i}")
edges = st.sets(st.tuples(nodes, nodes).filter(lambda e: e[0] != e[1]),
                min_size=1, max_size=16)
#: Undirected links: canonical (a < b) pairs, so that the two directions
#: of one physical link never carry different costs.
undirected_edges = st.sets(
    st.tuples(nodes, nodes).filter(lambda e: e[0] < e[1]),
    min_size=1, max_size=12,
)
weights = st.integers(min_value=1, max_value=9)


def weighted_links(edge_set, seed):
    rng = random.Random(seed)
    rows = []
    for a, b in sorted(edge_set):
        cost = rng.randint(1, 9)
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows


@given(edge_set=edges)
@settings(**SETTINGS)
def test_theorem1_engines_agree_on_tc(edge_set):
    reference = None
    for module in (naive, seminaive, bsn, psn):
        program = programs.transitive_closure()
        db = Database.for_program(program)
        db.load_facts("edge", edge_set)
        rows = module.evaluate(program, db).rows("tc")
        if reference is None:
            reference = rows
        else:
            assert rows == reference


@given(edge_set=edges)
@settings(**SETTINGS)
def test_theorem1_engines_agree_on_nonlinear_tc(edge_set):
    reference = None
    for module in (seminaive, bsn, psn):
        program = programs.transitive_closure_nonlinear()
        db = Database.for_program(program)
        db.load_facts("edge", edge_set)
        rows = module.evaluate(program, db).rows("tc")
        if reference is None:
            reference = rows
        else:
            assert rows == reference


@given(edge_set=edges)
@settings(**SETTINGS)
def test_theorem2_inference_parity(edge_set):
    counts = set()
    for module in (seminaive, bsn, psn):
        program = programs.transitive_closure_nonlinear()
        db = Database.for_program(program)
        db.load_facts("edge", edge_set)
        counts.add(module.evaluate(program, db).inferences)
    assert len(counts) == 1


@given(edge_set=edges, seed=st.integers(min_value=0, max_value=999))
@settings(**SETTINGS)
def test_bsn_arbitrary_batching(edge_set, seed):
    """BSN may buffer arbitrarily (Section 3.3.1): any schedule reaches
    the same fixpoint."""
    program = programs.transitive_closure()
    db = Database.for_program(program)
    db.load_facts("edge", edge_set)
    reference = seminaive.evaluate(program, db).rows("tc")

    rng = random.Random(seed)
    program2 = programs.transitive_closure()
    db2 = Database.for_program(program2)
    db2.load_facts("edge", edge_set)
    engine = BSNEngine(program2, db=db2,
                       scheduler=lambda n: rng.randint(1, max(1, n)))
    assert engine.fixpoint().rows("tc") == reference


@given(
    edge_set=undirected_edges,
    seed=st.integers(min_value=0, max_value=999),
    ops=st.integers(min_value=1, max_value=8),
)
@settings(**SETTINGS)
def test_theorem3_bursty_updates_converge(edge_set, seed, ops):
    """Random insert/delete/update bursts on the shortest-path program:
    the quiesced incremental state equals from-scratch."""
    rng = random.Random(seed)
    state = {}
    for a, b in sorted(edge_set):
        state[(a, b)] = rng.randint(1, 9)

    program = programs.shortest_path_safe()
    db = Database.for_program(program)
    db.load_facts("link", weighted_rows(state))
    engine = PSNEngine(program, db=db)
    engine.fixpoint()

    pairs = sorted(edge_set)
    for _ in range(ops):
        kind = rng.choice(["del", "ins", "upd"])
        if kind == "del" and state:
            pair = rng.choice(sorted(state))
            cost = state.pop(pair)
            engine.delete("link", (*pair, cost))
            engine.delete("link", (pair[1], pair[0], cost))
        elif kind == "ins":
            pair = tuple(rng.choice(pairs))
            if pair not in state:
                cost = rng.randint(1, 9)
                state[pair] = cost
                engine.insert("link", (*pair, cost))
                engine.insert("link", (pair[1], pair[0], cost))
        elif kind == "upd" and state:
            pair = rng.choice(sorted(state))
            cost = rng.randint(1, 9)
            state[pair] = cost
            engine.update("link", (*pair, cost))
            engine.update("link", (pair[1], pair[0], cost))
    engine.run()

    scratch_db = Database.for_program(program)
    scratch_db.load_facts("link", weighted_rows(state))
    scratch = PSNEngine(program, db=scratch_db)
    scratch.fixpoint()
    for pred in ("path", "spCost", "shortestPath"):
        assert frozenset(engine.db.table(pred).rows()) == frozenset(
            scratch.db.table(pred).rows()
        ), pred


def weighted_rows(state):
    rows = []
    for (a, b), cost in state.items():
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows


# ----------------------------------------------------------------------
# Parser round-trip
# ----------------------------------------------------------------------
CANONICAL_PROGRAMS = [
    programs.shortest_path,
    programs.shortest_path_safe,
    programs.shortest_path_dynamic,
    programs.magic_dst,
    programs.magic_src_dst,
    programs.multi_query_magic,
    programs.reachability,
    programs.distance_vector,
    programs.transitive_closure,
    programs.same_generation,
]


@given(builder=st.sampled_from(CANONICAL_PROGRAMS))
@settings(deadline=None, max_examples=len(CANONICAL_PROGRAMS))
def test_pretty_parse_roundtrip(builder):
    program = builder()
    text = pretty.format_program(program)
    again = parse(text)
    assert again.rules == program.rules
    assert again.facts == program.facts
    assert again.query == program.query
    assert again.materializations == program.materializations
    # Idempotence: printing the re-parse gives the same text.
    assert pretty.format_program(again) == text


# ----------------------------------------------------------------------
# f_concatPath algebra
# ----------------------------------------------------------------------
paths = st.lists(nodes, min_size=1, max_size=5).map(tuple)


@given(a=paths, b=paths, c=paths)
@settings(deadline=None, max_examples=60)
def test_concat_path_associative(a, b, c):
    concat = REGISTRY["f_concatPath"]
    assert concat(concat(a, b), c) == concat(a, concat(b, c))


@given(p=paths)
@settings(deadline=None, max_examples=30)
def test_concat_path_nil_identity(p):
    concat = REGISTRY["f_concatPath"]
    assert concat(p, ()) == p
    assert concat((), p) == p


@given(a=paths, b=paths)
@settings(deadline=None, max_examples=60)
def test_concat_path_junction_collapse(a, b):
    concat = REGISTRY["f_concatPath"]
    joined = concat(a, b)
    if a[-1] == b[0]:
        assert len(joined) == len(a) + len(b) - 1
    else:
        assert len(joined) == len(a) + len(b)
    assert joined[0] == a[0]
    assert joined[-1] == b[-1]

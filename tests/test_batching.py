"""Batched vs unbatched delta processing.

The micro-batched commit path (``batch_size > 1``: Z-set weight
netting at the queue, run-batched strand firing, netted aggregate
views) may change *intermediate* traffic but must never change what
the engines compute: property tests hold the fixpoint contents, the
final derivation counts, the aggregate views, and the net commit
multiset equal across batch sizes and engines; deterministic tests pin
the netting pass's slot-order discipline (runs seal at replacements,
forced deletes and restores) one case at a time -- including the two
injected patterns where the batch is deliberately *atomic* and
diverges from per-delta replay (see ``engine/psn.py``'s module
docstring).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import Database, seminaive
from repro.engine.bsn import BSNEngine
from repro.engine.psn import PSNEngine
from repro.ndlog import parse, programs

SETTINGS = dict(
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)

BATCH_SIZES = (1, 7, 64)

nodes = st.integers(min_value=0, max_value=5).map(lambda i: f"n{i}")
undirected_edges = st.sets(
    st.tuples(nodes, nodes).filter(lambda e: e[0] < e[1]),
    min_size=1, max_size=10,
)


def weighted_rows(state):
    rows = []
    for (a, b), cost in state.items():
        rows.append((a, b, cost))
        rows.append((b, a, cost))
    return rows


def counts_snapshot(db):
    """Per-tuple derivation counts of every table (the [Gupta et al. 93]
    bookkeeping batching must preserve exactly)."""
    return {
        name: {args: table.count(args) for args in table.rows()}
        for name, table in db.tables.items()
    }


def view_rows(engine):
    out = {}
    for pred, view in engine.views.items():
        out[pred] = frozenset(view.current_rows())
    for pred, view in engine.argmin_views.items():
        out[pred] = frozenset(view.current_rows())
    return out


def interleaved_burst_run(program_builder, batch_size, edge_set, seed, ops,
                          engine_cls=PSNEngine, record_commits=False):
    """Converge, apply ``ops`` random insert/delete/update operations as
    one enqueued burst, run to quiescence; return the observable state."""
    rng = random.Random(seed)
    state = {}
    for a, b in sorted(edge_set):
        state[(a, b)] = rng.randint(1, 9)

    program = program_builder()
    db = Database.for_program(program)
    db.load_facts("link", weighted_rows(state))
    commits = {}

    def on_commit(fact, sign):
        commits[fact] = commits.get(fact, 0) + sign

    engine = engine_cls(
        program, db=db, batch_size=batch_size,
        on_commit=on_commit if record_commits else None,
    )
    engine.fixpoint()
    if record_commits:
        commits.clear()  # compare the burst phase only

    pairs = sorted(edge_set)
    for _ in range(ops):
        kind = rng.choice(["del", "ins", "upd", "flap"])
        if kind == "del" and state:
            pair = rng.choice(sorted(state))
            cost = state.pop(pair)
            engine.delete("link", (*pair, cost))
            engine.delete("link", (pair[1], pair[0], cost))
        elif kind == "ins":
            pair = tuple(rng.choice(pairs))
            if pair not in state:
                cost = rng.randint(1, 9)
                state[pair] = cost
                engine.insert("link", (*pair, cost))
                engine.insert("link", (pair[1], pair[0], cost))
        elif kind == "upd" and state:
            pair = rng.choice(sorted(state))
            cost = rng.randint(1, 9)
            state[pair] = cost
            engine.update("link", (*pair, cost))
            engine.update("link", (pair[1], pair[0], cost))
        elif kind == "flap":
            # Transient announce/withdraw of a link that is not part of
            # the stored graph: the plus-first pattern cancellation is
            # allowed to annihilate.
            pair = tuple(rng.choice(pairs))
            if pair not in state:
                cost = rng.randint(1, 9)
                from repro.engine.facts import Fact
                engine.derive(Fact("link", (*pair, cost)), 1)
                engine.derive(Fact("link", (pair[1], pair[0], cost)), 1)
                engine.derive(Fact("link", (*pair, cost)), -1)
                engine.derive(Fact("link", (pair[1], pair[0], cost)), -1)
    engine.run()
    return engine, commits


@given(
    edge_set=undirected_edges,
    seed=st.integers(min_value=0, max_value=999),
    ops=st.integers(min_value=1, max_value=8),
)
@settings(**SETTINGS)
def test_batched_psn_matches_reference_on_shortest_path(edge_set, seed, ops):
    """Fixpoint contents, derivation counts, aggregate views and the net
    commit multiset agree across batch sizes on interleaved bursts."""
    reference = None
    for batch_size in BATCH_SIZES:
        engine, commits = interleaved_burst_run(
            programs.shortest_path_safe, batch_size, edge_set, seed, ops,
            record_commits=True,
        )
        observed = (
            engine.db.snapshot(),
            counts_snapshot(engine.db),
            view_rows(engine),
            # Net commit multiset: transient facts net to zero either by
            # committing +1/-1 (sequential) or by never committing at
            # all (cancelled); both read as "no net commit".
            {fact: net for fact, net in commits.items() if net != 0},
        )
        if reference is None:
            reference = observed
        else:
            assert observed[0] == reference[0], f"rows @ batch={batch_size}"
            assert observed[1] == reference[1], f"counts @ batch={batch_size}"
            assert observed[2] == reference[2], f"views @ batch={batch_size}"
            assert observed[3] == reference[3], f"commits @ batch={batch_size}"


@given(edge_set=undirected_edges, seed=st.integers(min_value=0, max_value=99))
@settings(**SETTINGS)
def test_batched_engines_match_seminaive_fixpoint(edge_set, seed):
    """PSN and BSN at every batch size reach the semi-naive fixpoint,
    including on self-join rules (which fall back to the per-delta path
    inside a chunk)."""
    rng = random.Random(seed)
    links = []
    for a, b in sorted(edge_set):
        cost = rng.randint(1, 9)
        links.append((a, b, cost))
        links.append((b, a, cost))
    for builder, pred, rows in (
        (programs.transitive_closure_nonlinear, "edge", sorted(edge_set)),
        (programs.shortest_path_safe, "link", links),
    ):
        program = builder()
        db = Database.for_program(program)
        db.load_facts(pred, rows)
        reference = seminaive.evaluate(program, db).db.snapshot()
        for engine_cls in (PSNEngine, BSNEngine):
            for batch_size in BATCH_SIZES[1:]:
                program2 = builder()
                db2 = Database.for_program(program2)
                db2.load_facts(pred, rows)
                engine = engine_cls(program2, db=db2, batch_size=batch_size)
                engine.fixpoint()
                assert engine.db.snapshot() == reference, (
                    engine_cls.__name__, batch_size, builder.__name__,
                )


# ----------------------------------------------------------------------
# Z-set netting semantics, pinned deterministically
# ----------------------------------------------------------------------
KV_PROGRAM = """
materialize(kv, infinity, infinity, keys(1)).
materialize(out, infinity, infinity, keys(1, 2)).
KV1: out(@K, V) :- #kv(@K, V).
"""


def kv_engine(batch_size, rows=()):
    program = parse(KV_PROGRAM)
    db = Database.for_program(program)
    if rows:
        db.load_facts("kv", rows)
    engine = PSNEngine(program, db=db, batch_size=batch_size)
    engine.fixpoint()
    return engine


def enqueue(engine, sign, args, force=False):
    from repro.engine.facts import Fact
    from repro.engine.psn import QueuedDelta
    engine._enqueue(QueuedDelta(Fact("kv", args), sign, force))


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_transient_announce_withdraw_cancels(batch_size):
    """+f then -f on an absent fact nets to nothing; batched processing
    cancels the pair at the queue before any strand work."""
    engine = kv_engine(batch_size)
    enqueue(engine, 1, ("a", 1))
    enqueue(engine, -1, ("a", 1))
    engine.run()
    assert engine.db.table("kv").rows() == []
    assert engine.db.table("out").rows() == []
    if batch_size > 1:
        assert engine.cancelled == 2
    else:
        assert engine.cancelled == 0


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_minus_first_pair_is_not_cancelled(batch_size):
    """-f then +f on an absent fact must leave f visible: the run's
    prefix sum dips below zero, so sequentially the minus floors
    against the store as a no-op and the plus then lands.  Netting the
    pair to zero would lose the insert -- dipping runs replay
    intent-by-intent instead."""
    engine = kv_engine(batch_size)
    enqueue(engine, -1, ("a", 1))
    enqueue(engine, 1, ("a", 1))
    engine.run()
    assert engine.db.table("kv").rows() == [("a", 1)]
    assert engine.db.table("out").rows() == [("a", 1)]
    assert engine.cancelled == 0


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_forced_deletes_never_cancel(batch_size):
    """delete() removes a fact regardless of derivation count; pairing
    it with one insert intent would under-delete."""
    engine = kv_engine(batch_size, rows=[("a", 1), ("a", 1)])  # count 2
    assert engine.db.table("kv").count(("a", 1)) == 2
    enqueue(engine, 1, ("a", 1))
    engine.delete("kv", ("a", 1))
    engine.run()
    assert engine.db.table("kv").rows() == []
    assert engine.cancelled == 0


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_zero_net_run_replays_over_conflicting_row(batch_size):
    """[+g, +f, -f] with g and f sharing a primary key: sequentially
    f's insert destroys g (replacement) and f then dies, leaving the
    key empty.  Annihilating f's zero-net pair would resurrect g, so
    the slot -- touched by two distinct tuples in one chunk -- is
    ineligible for folding and replays intent-by-intent."""
    engine = kv_engine(batch_size)
    enqueue(engine, 1, ("k", 1))   # g
    enqueue(engine, 1, ("k", 2))   # f: transient
    enqueue(engine, -1, ("k", 2))  # f nets to zero
    engine.run()
    assert engine.db.table("kv").rows() == []
    assert engine.db.table("out").rows() == []


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_zero_net_run_replays_over_stored_conflicting_row(batch_size):
    """[+f, -f] where the key is held by a *different* stored row g:
    sequentially f's insert destroys g (replacement) and f then dies,
    leaving the key empty.  Annihilating the zero-net pair would spare
    g -- and make the fixpoint depend on where the chunk boundary
    fell -- so the stored-row check routes it through replay."""
    engine = kv_engine(batch_size, rows=[("k", 1)])
    enqueue(engine, 1, ("k", 2))
    enqueue(engine, -1, ("k", 2))
    engine.run()
    assert engine.db.table("kv").rows() == []
    assert engine.db.table("out").rows() == []


@pytest.mark.parametrize("batch_size", BATCH_SIZES[1:])
def test_replacement_seals_the_netting_run(batch_size):
    """[+f, +g, +f] with f and g sharing a primary key: the g intent
    makes the slot non-uniform, so the two f weights must NOT merge --
    merging would commit +2 f before g and let g win the slot, while
    sequentially the last writer f wins.  Both paths must end with f."""
    engine = kv_engine(batch_size)
    enqueue(engine, 1, ("k", 1))   # f
    enqueue(engine, 1, ("k", 2))   # g replaces f
    enqueue(engine, 1, ("k", 1))   # f replaces g back
    engine.run()
    assert engine.db.table("kv").rows() == [("k", 1)]
    assert engine.db.table("out").rows() == [("k", 1)]


@pytest.mark.parametrize("batch_size", BATCH_SIZES[1:])
def test_forced_delete_seals_the_netting_run(batch_size):
    """[+f, force -f, +f]: the forced delete is an assignment, not a
    group element, and spoils its slot's eligibility; netting the two
    inserts across it would commit +2 f, wipe it, and end empty, while
    sequentially the trailing insert lands after the wipe.  Both paths
    must end with f visible."""
    engine = kv_engine(batch_size)
    enqueue(engine, 1, ("a", 1))
    enqueue(engine, -1, ("a", 1), force=True)
    enqueue(engine, 1, ("a", 1))
    engine.run()
    assert engine.db.table("kv").rows() == [("a", 1)]
    assert engine.db.table("out").rows() == [("a", 1)]
    assert engine.db.table("kv").count(("a", 1)) == 1


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_duplicate_then_delete_nets_to_count(batch_size):
    """[+f, -f] on a fact stored with count 1: both paths end with
    count 1 (the dup bump and the decrement annihilate)."""
    engine = kv_engine(batch_size, rows=[("a", 1)])
    enqueue(engine, 1, ("a", 1))
    enqueue(engine, -1, ("a", 1))
    engine.run()
    assert engine.db.table("kv").count(("a", 1)) == 1
    assert engine.db.table("out").rows() == [("a", 1)]


def test_chunk_limit_is_exact():
    """max_steps counts consumed deltas exactly, chunked or not."""
    from repro.errors import EvaluationError
    engine = kv_engine(64)
    for i in range(10):
        enqueue(engine, 1, (f"k{i}", i))
    with pytest.raises(EvaluationError):
        engine.run(max_steps=5)
    assert engine.steps == 5

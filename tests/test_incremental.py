"""Incremental view maintenance under dynamics (Section 4).

Theorem 3: under the bursty update model, the set of tuples derived by
PSN equals what PSN would compute from scratch on the quiesced state.
"""

import random

import pytest

from repro.engine import Database
from repro.engine.psn import PSNEngine
from repro.ndlog import parse
from repro.ndlog.programs import (
    shortest_path_safe,
    transitive_closure,
    transitive_closure_nonlinear,
)

CHECK_PREDS = ("path", "spCost", "shortestPath")


def fresh_fixpoint(program_builder, link_rows):
    program = program_builder()
    db = Database.for_program(program)
    db.load_facts("link", link_rows)
    engine = PSNEngine(program, db=db)
    engine.fixpoint()
    return engine


def link_rows(state):
    rows = []
    for (a, b), c in state.items():
        rows += [(a, b, c), (b, a, c)]
    return rows


def assert_matches_scratch(engine, program_builder, state, preds=CHECK_PREDS):
    scratch = fresh_fixpoint(program_builder, link_rows(state))
    for pred in preds:
        got = frozenset(engine.db.table(pred).rows())
        want = frozenset(scratch.db.table(pred).rows())
        assert got == want, (pred, got ^ want)


class TestBaseTableChanges:
    def test_insertion_extends_paths(self):
        engine = fresh_fixpoint(shortest_path_safe,
                                [("a", "b", 1), ("b", "a", 1)])
        engine.insert("link", ("b", "c", 1))
        engine.insert("link", ("c", "b", 1))
        engine.run()
        sp = frozenset(engine.db.table("shortestPath").rows())
        assert ("a", "c", ("a", "b", "c"), 2) in sp

    def test_deletion_cascades(self):
        """Figure 6 right: deleting a link deletes every path derived
        from it."""
        state = {("a", "b"): 5, ("b", "e"): 1, ("e", "a"): 1}
        engine = fresh_fixpoint(shortest_path_safe, link_rows(state))
        engine.delete("link", ("b", "e", 1))
        engine.delete("link", ("e", "b", 1))
        engine.run()
        state.pop(("b", "e"))
        assert_matches_scratch(engine, shortest_path_safe, state)
        paths = frozenset(engine.db.table("path").rows())
        assert not any("e" in (s, d) and ("b", "e") in zip(p, p[1:])
                       for s, d, _z, p, _c in paths)

    def test_cost_update_rederives(self):
        """Figure 6 left: updating link(a,b) from 5 to 1 re-derives the
        dependent paths with the new cost."""
        state = {("a", "b"): 5, ("b", "e"): 1, ("e", "a"): 1}
        engine = fresh_fixpoint(shortest_path_safe, link_rows(state))
        engine.update("link", ("a", "b", 1))
        engine.update("link", ("b", "a", 1))
        engine.run()
        state[("a", "b")] = 1
        assert_matches_scratch(engine, shortest_path_safe, state)
        sp = frozenset(engine.db.table("shortestPath").rows())
        assert ("a", "b", ("a", "b"), 1) in sp

    def test_update_is_delete_plus_insert(self):
        engine = fresh_fixpoint(shortest_path_safe, [("a", "b", 5), ("b", "a", 5)])
        commits = []
        engine.on_commit = lambda fact, sign: commits.append((sign, fact))
        engine.update("link", ("a", "b", 2))
        engine.run()
        link_commits = [(s, f) for s, f in commits if f.pred == "link"]
        assert link_commits[0][0] == -1
        assert link_commits[0][1].args == ("a", "b", 5)
        assert link_commits[1][0] == 1
        assert link_commits[1][1].args == ("a", "b", 2)


class TestTheorem3RandomBursts:
    # Note: the *dynamic* program form (path keyed on (src, dst, nexthop))
    # is only confluent when combined with aggregate-selection
    # advertising -- each neighbour then advertises exactly its final
    # best, making "latest advert wins" deterministic.  That combination
    # lives in the distributed runtime and is tested there; the
    # unrestricted centralized engine exercises the full-key form here.
    @pytest.mark.parametrize("builder", [shortest_path_safe])
    def test_random_burst_trials(self, builder):
        rng = random.Random(2024)
        nodes = ["a", "b", "c", "d", "e"]
        pairs = [(x, y) for i, x in enumerate(nodes) for y in nodes[i + 1:]]
        for _trial in range(25):
            state = {p: rng.randint(1, 9) for p in pairs
                     if rng.random() < 0.6}
            engine = fresh_fixpoint(builder, link_rows(state))
            # One burst of mixed updates, applied mid-flight.
            for _ in range(rng.randint(1, 6)):
                op = rng.choice(["del", "ins", "upd"])
                if op == "del" and state:
                    pair = rng.choice(sorted(state))
                    cost = state.pop(pair)
                    a, b = pair
                    engine.delete("link", (a, b, cost))
                    engine.delete("link", (b, a, cost))
                elif op == "ins":
                    pair = rng.choice(pairs)
                    if pair not in state:
                        cost = rng.randint(1, 9)
                        state[pair] = cost
                        a, b = pair
                        engine.insert("link", (a, b, cost))
                        engine.insert("link", (b, a, cost))
                elif op == "upd" and state:
                    pair = rng.choice(sorted(state))
                    cost = rng.randint(1, 9)
                    state[pair] = cost
                    a, b = pair
                    engine.update("link", (a, b, cost))
                    engine.update("link", (b, a, cost))
            engine.run()
            # shortestPath/spCost must match from scratch for both
            # program forms; the dynamic form's path table keeps only the
            # latest advert per (src, dst, nexthop), which from-scratch
            # reproduces as well since the advert is the final best.
            assert_matches_scratch(engine, builder, state,
                                   preds=("spCost", "shortestPath"))

    def test_interleaved_bursts_without_quiescence(self):
        """Bursts arriving before the previous burst's fixpoint completes
        (the demanding workload of Figure 14) still converge."""
        rng = random.Random(7)
        nodes = ["a", "b", "c", "d", "e", "f"]
        pairs = [(x, y) for i, x in enumerate(nodes) for y in nodes[i + 1:]]
        state = {p: rng.randint(1, 9) for p in pairs if rng.random() < 0.5}
        engine = fresh_fixpoint(shortest_path_safe, link_rows(state))
        for _burst in range(5):
            for _ in range(3):
                pair = rng.choice(pairs)
                cost = rng.randint(1, 9)
                state[pair] = cost
                a, b = pair
                engine.update("link", (a, b, cost))
                engine.update("link", (b, a, cost))
            # Process only part of the queue: the next burst lands early.
            engine.run_batch(rng.randint(1, 20))
        engine.run()
        assert_matches_scratch(engine, shortest_path_safe, state)


class TestDerivationCounts:
    def test_multiple_derivations_protect_tuple(self):
        """The count algorithm [15]: a tuple with two derivations
        survives the loss of one."""
        program = transitive_closure()
        engine = PSNEngine(program)
        # Diamond: two routes a->d.
        for edge in [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]:
            engine.insert("edge", edge)
        engine.run()
        assert ("a", "d") in engine.db.table("tc")
        engine.delete("edge", ("b", "d"))
        engine.run()
        assert ("a", "d") in engine.db.table("tc")  # still via c
        engine.delete("edge", ("c", "d"))
        engine.run()
        assert ("a", "d") not in engine.db.table("tc")

    def test_nonlinear_selfjoin_deletion(self):
        """Self-join deletion must decrement each derivation exactly once
        (the subtle case the commit discipline exists for).

        Edges are drawn as a DAG: the count algorithm [15] used by the
        paper (and by us) requires well-founded derivations, which the
        paper's path-vector programs guarantee via their path vectors.
        Cyclic transitive closure would need delete-and-rederive (DRed);
        see test_counting_limitation_on_cycles.
        """
        rng = random.Random(31)
        for _trial in range(15):
            edges = {tuple(sorted((f"n{rng.randrange(6)}",
                                   f"n{rng.randrange(6)}")))
                     for _ in range(10)}
            edges = {(a, b) for a, b in edges if a != b}
            program = transitive_closure_nonlinear()
            engine = PSNEngine(program)
            for edge in edges:
                engine.insert("edge", edge)
            engine.run()
            victims = [e for e in sorted(edges) if rng.random() < 0.4]
            for edge in victims:
                engine.delete("edge", edge)
                edges.discard(edge)
            engine.run()
            scratch = PSNEngine(transitive_closure_nonlinear())
            for edge in edges:
                scratch.insert("edge", edge)
            scratch.run()
            got = frozenset(engine.db.table("tc").rows())
            want = frozenset(scratch.db.table("tc").rows())
            assert got == want, (got ^ want)

    def test_counting_limitation_on_cycles(self):
        """Documented limitation, faithful to the paper: pure derivation
        counting cannot retract facts whose derivations are cyclic (a
        derivation cycle keeps every count positive).  The paper's
        network programs avoid this because path vectors make every
        derivation well-founded."""
        program = transitive_closure_nonlinear()
        engine = PSNEngine(program)
        for edge in [("a", "b"), ("b", "a")]:
            engine.insert("edge", edge)
        engine.run()
        assert ("a", "a") in engine.db.table("tc")
        engine.delete("edge", ("b", "a"))
        engine.run()
        # tc(a,b) survives via its base derivation... and so, wrongly but
        # knowingly, do the cycle-supported facts.  This pins the known
        # behaviour so a future DRed extension shows up as a test change.
        assert ("a", "b") in engine.db.table("tc")
        assert ("a", "a") in engine.db.table("tc")  # ghost (limitation)

    def test_delete_then_reinsert_same_fact(self):
        engine = fresh_fixpoint(shortest_path_safe, [("a", "b", 1), ("b", "a", 1)])
        engine.delete("link", ("a", "b", 1))
        engine.insert("link", ("a", "b", 1))
        engine.run()
        assert ("a", "b", ("a", "b"), 1) in frozenset(
            engine.db.table("shortestPath").rows()
        )

    def test_update_then_delete_before_processing(self):
        engine = fresh_fixpoint(shortest_path_safe, [("a", "b", 1), ("b", "a", 1)])
        engine.update("link", ("a", "b", 2))
        engine.delete("link", ("a", "b", 2))
        engine.run()
        rows = engine.db.table("link").rows()
        assert ("a", "b", 2) not in rows and ("a", "b", 1) not in rows


class TestAggregateMaintenance:
    def test_min_recovers_after_best_path_deleted(self):
        state = {("a", "b"): 5, ("a", "c"): 1, ("c", "b"): 1}
        engine = fresh_fixpoint(shortest_path_safe, link_rows(state))
        sp = frozenset(engine.db.table("shortestPath").rows())
        assert ("a", "b", ("a", "c", "b"), 2) in sp
        # Remove the good detour; the direct 5-cost link is best again.
        engine.delete("link", ("a", "c", 1))
        engine.delete("link", ("c", "a", 1))
        engine.run()
        sp = frozenset(engine.db.table("shortestPath").rows())
        assert ("a", "b", ("a", "b"), 5) in sp
        state.pop(("a", "c"))
        assert_matches_scratch(engine, shortest_path_safe, state)

    def test_count_aggregate_program(self):
        program = parse(
            """
            D1: degree(@S, count<D>) :- link(@S, @D, C).
            """
        )
        engine = PSNEngine(program)
        engine.insert("link", ("a", "b", 1))
        engine.insert("link", ("a", "c", 1))
        engine.run()
        assert ("a", 2) in engine.db.table("degree")
        engine.delete("link", ("a", "c", 1))
        engine.run()
        assert ("a", 1) in engine.db.table("degree")
